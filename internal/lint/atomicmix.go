package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix enforces the all-or-nothing atomics discipline: a field
// or package-level variable that is ever accessed through sync/atomic
// (atomic.LoadUint64(&x.f), atomic.AddInt32(&n, 1), ...) must never
// be read or written plainly anywhere else — a single plain access
// next to atomic ones is a data race the race detector only catches
// if a test happens to interleave it. Fields declared with the typed
// atomics (atomic.Uint64, atomic.Pointer[T], ...) are safe by
// construction, but copying or reassigning such a value bypasses the
// atomicity and is flagged too.
//
// Invariant lineage: the loopback fault flags, server metrics, and
// refcount-pooled call state (PR 7) all lean on "mutators lock, hot
// path loads" — that split is only sound if no site mixes the modes.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly; typed atomic values must not be copied or reassigned",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Package) []Diagnostic {
	// Pass 1: every object whose address is taken in a sync/atomic
	// call, plus the idents inside those calls (sanctioned uses).
	atomicUse := make(map[types.Object]ast.Node) // object -> first atomic call site
	sanctioned := make(map[*ast.Ident]bool)
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || recvNamed(fn) != nil {
			return true
		}
		for _, arg := range call.Args {
			unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || unary.Op.String() != "&" {
				continue
			}
			if obj := p.addressedObject(unary.X); obj != nil {
				if _, seen := atomicUse[obj]; !seen {
					atomicUse[obj] = call
				}
			}
			ast.Inspect(unary, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					sanctioned[id] = true
				}
				return true
			})
		}
		return true
	})

	var diags []Diagnostic

	// Pass 2: any unsanctioned use of an atomically-accessed object.
	p.inspect(func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || sanctioned[id] {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if site, ok := atomicUse[obj]; ok {
			diags = append(diags, p.diag(id.Pos(), "atomicmix",
				"%s is accessed atomically at %s; this plain access races with it",
				id.Name, p.Position(site.Pos())))
		}
		return true
	})

	// Pass 3: typed atomics (atomic.Uint64, atomic.Pointer[T], ...)
	// used as plain values: assigned over or copied out.
	flagTyped := func(e ast.Expr, what string) {
		e = ast.Unparen(e)
		if _, isComposite := e.(*ast.CompositeLit); isComposite {
			return // a zero-value literal is construction, not access
		}
		tv, ok := p.Info.Types[e]
		if !ok || !typeIsFrom(tv.Type, "sync/atomic") {
			return
		}
		diags = append(diags, p.diag(e.Pos(), "atomicmix",
			"%s a typed sync/atomic value bypasses its atomicity; use its methods", what))
	}
	p.inspect(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				flagTyped(lhs, "assigning over")
			}
			for _, rhs := range s.Rhs {
				flagTyped(rhs, "copying")
			}
		case *ast.CallExpr:
			for _, arg := range s.Args {
				flagTyped(arg, "passing")
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				flagTyped(r, "returning")
			}
		}
		return true
	})
	return diags
}

// addressedObject resolves the variable or struct field whose address
// is being taken, or nil for addressable temporaries we don't track
// (map/slice expressions resolve through their base identifiers).
func (p *Package) addressedObject(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[x]; sel != nil {
			return sel.Obj()
		}
		return p.Info.Uses[x.Sel]
	case *ast.IndexExpr:
		// &s[i]: track per-container, via the container's object.
		return p.addressedObject(x.X)
	case *ast.StarExpr:
		return p.addressedObject(x.X)
	}
	return nil
}
