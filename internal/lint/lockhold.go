package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHold flags blocking operations performed while holding a
// sync.Mutex or sync.RWMutex that was acquired in the same function
// with no intervening Unlock: channel sends and receives, selects
// with no default case, ctx.Done() waits, net I/O, time.Sleep,
// WaitGroup/Cond waits, (*os.File).Sync, and WAL append/fsync-class
// calls (methods named append/Append/sync/Sync/syncTo on types whose
// name mentions the WAL). A blocked holder stalls every other path
// that needs the lock — at best a latency cliff, at worst a deadlock
// when the unblocking party needs the same lock. `defer Unlock` paths
// are analyzed too: the lock stays held across everything after the
// defer.
//
// Deliberately NOT flagged: a send or receive that is a case of a
// select with a default clause (non-blocking by construction — the
// coalescing cap-1 wake channels from PR 7 depend on this pattern),
// and anything inside a nested func literal (a spawned goroutine does
// not hold the caller's lock, and defers run at exit).
//
// Invariant lineage: PR 8's WAL-append-before-apply happens under the
// register lock BY DESIGN — that one pattern carries a lint:ignore
// with the ordering argument as its reason; everything else under a
// lock must stay non-blocking.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation (channel, ctx wait, net I/O, fsync) while holding a mutex acquired in the same function",
	Run:  runLockHold,
}

type lockSet map[string]token.Pos // lock expression -> acquisition site

func (ls lockSet) clone() lockSet {
	out := make(lockSet, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

func (ls lockSet) names() string {
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func runLockHold(p *Package) []Diagnostic {
	s := &lockScanner{p: p}
	p.inspect(func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				s.stmts(fn.Body.List, lockSet{})
			}
		case *ast.FuncLit:
			s.stmts(fn.Body.List, lockSet{})
		}
		return true // func lits are scanned as their own functions
	})
	return s.diags
}

type lockScanner struct {
	p     *Package
	diags []Diagnostic
}

// mutexMethod resolves a call to a sync.Mutex/RWMutex Lock-family
// method, returning the lock's identity (the receiver expression) and
// the method name.
func (s *lockScanner) mutexMethod(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, _ := s.p.Info.Uses[sel.Sel].(*types.Func)
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// stmts scans a statement list under the given held-lock state and
// returns the state at its end, or terminated=true if every path
// through the list returns.
func (s *lockScanner) stmts(list []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, st := range list {
		var term bool
		held, term = s.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *lockScanner) stmt(st ast.Stmt, held lockSet) (lockSet, bool) {
	switch n := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if key, method, ok := s.mutexMethod(call); ok {
				switch method {
				case "Lock", "RLock":
					held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return held, false
			}
		}
		s.exprs(held, n.X)
	case *ast.SendStmt:
		if len(held) > 0 {
			s.report(n.Pos(), held, "channel send")
		}
		s.exprs(held, n.Chan, n.Value)
	case *ast.AssignStmt:
		s.exprs(held, n.Rhs...)
		s.exprs(held, n.Lhs...)
	case *ast.DeclStmt:
		ast.Inspect(n, func(m ast.Node) bool { return s.inspectHazard(held, m) })
	case *ast.IncDecStmt:
		s.exprs(held, n.X)
	case *ast.ReturnStmt:
		s.exprs(held, n.Results...)
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto: stop tracking this path rather than
		// model label targets.
		return held, true
	case *ast.DeferStmt:
		// defer mu.Unlock() does not release here — the lock stays
		// held for the rest of the function. Argument expressions are
		// evaluated now; the call body runs at exit.
		s.exprs(held, n.Call.Args...)
	case *ast.GoStmt:
		// The goroutine does not hold our locks; only the argument
		// evaluation happens here.
		s.exprs(held, n.Call.Args...)
	case *ast.BlockStmt:
		return s.stmts(n.List, held)
	case *ast.LabeledStmt:
		return s.stmt(n.Stmt, held)
	case *ast.IfStmt:
		if n.Init != nil {
			held, _ = s.stmt(n.Init, held)
		}
		s.exprs(held, n.Cond)
		thenHeld, thenTerm := s.stmts(n.Body.List, held.clone())
		elseHeld, elseTerm := held.clone(), false
		if n.Else != nil {
			elseHeld, elseTerm = s.stmt(n.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return union(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if n.Init != nil {
			held, _ = s.stmt(n.Init, held)
		}
		s.exprs(held, n.Cond)
		bodyHeld, _ := s.stmts(n.Body.List, held.clone())
		if n.Post != nil {
			s.stmt(n.Post, bodyHeld.clone())
		}
		return union(held, bodyHeld), false
	case *ast.RangeStmt:
		s.exprs(held, n.X)
		bodyHeld, _ := s.stmts(n.Body.List, held.clone())
		return union(held, bodyHeld), false
	case *ast.SwitchStmt:
		if n.Init != nil {
			held, _ = s.stmt(n.Init, held)
		}
		s.exprs(held, n.Tag)
		return s.clauses(n.Body.List, held)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			held, _ = s.stmt(n.Init, held)
		}
		return s.clauses(n.Body.List, held)
	case *ast.SelectStmt:
		return s.selectStmt(n, held)
	}
	return held, false
}

// clauses scans switch/type-switch case bodies, unioning the
// resulting lock states.
func (s *lockScanner) clauses(list []ast.Stmt, held lockSet) (lockSet, bool) {
	out := held.clone()
	allTerm := len(list) > 0
	for _, c := range list {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		s.exprs(held, cc.List...)
		h, term := s.stmts(cc.Body, held.clone())
		if !term {
			out = union(out, h)
			allTerm = false
		}
	}
	return out, allTerm && hasDefaultCase(list)
}

func hasDefaultCase(list []ast.Stmt) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// selectStmt: with a default clause the comm cases are non-blocking
// (the sanctioned wake-channel pattern); without one the select
// blocks until some case fires.
func (s *lockScanner) selectStmt(n *ast.SelectStmt, held lockSet) (lockSet, bool) {
	hasDefault := false
	for _, c := range n.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && len(held) > 0 {
		s.report(n.Pos(), held, "select with no default case")
	}
	out := make(lockSet)
	for _, c := range n.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		h := held.clone()
		if cc.Comm != nil {
			// The comm statement's nested expressions (e.g. the value
			// being sent) still get hazard-scanned, but the send or
			// receive itself was judged above.
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				s.exprs(h, comm.Chan, comm.Value)
			case *ast.AssignStmt:
				// v := <-ch: the receive IS the judged comm op; scan
				// only its operand or it double-reports.
				for _, r := range comm.Rhs {
					if recv, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && recv.Op == token.ARROW {
						s.exprs(h, recv.X)
					} else {
						s.exprs(h, r)
					}
				}
			case *ast.ExprStmt:
				if recv, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok {
					s.exprs(h, recv.X)
				}
			}
		}
		bodyHeld, term := s.stmts(cc.Body, h)
		if !term {
			out = union(out, bodyHeld)
		}
	}
	return union(held, out), false
}

// exprs hazard-scans expressions evaluated at this point in the flow.
func (s *lockScanner) exprs(held lockSet, list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(m ast.Node) bool { return s.inspectHazard(held, m) })
	}
}

// inspectHazard classifies one expression node; returns false to
// prune the walk (function literals run in another frame or at exit).
func (s *lockScanner) inspectHazard(held lockSet, m ast.Node) bool {
	if len(held) == 0 {
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	}
	switch e := m.(type) {
	case *ast.FuncLit:
		return false
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if s.isCtxDone(e.X) {
				s.report(e.Pos(), held, "wait on ctx.Done()")
			} else {
				s.report(e.Pos(), held, "blocking channel receive")
			}
		}
	case *ast.CallExpr:
		if what := s.blockingCall(e); what != "" {
			s.report(e.Pos(), held, what)
		}
	}
	return true
}

// isCtxDone reports whether e is a call to context.Context.Done.
func (s *lockScanner) isCtxDone(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := s.p.calleeFunc(call)
	return fn != nil && fn.Name() == "Done" && typeIsFrom(fn.Type().(*types.Signature).Recv().Type(), "context")
}

// blockingCall classifies calls that block or touch stable storage.
func (s *lockScanner) blockingCall(call *ast.CallExpr) string {
	fn := s.p.calleeFunc(call)
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if recv := recvNamed(fn); recv != nil {
		recvPkg := ""
		if recv.Obj().Pkg() != nil {
			recvPkg = recv.Obj().Pkg().Path()
		}
		switch {
		case recvPkg == "net":
			// Close, deadline setters, and address getters are
			// non-blocking control operations, not I/O waits: holding
			// a lock across them is fine (teardown paths routinely
			// close a conn under the state lock that owns it).
			switch fn.Name() {
			case "Close", "SetDeadline", "SetReadDeadline", "SetWriteDeadline",
				"LocalAddr", "RemoteAddr", "Addr", "CloseRead", "CloseWrite":
				return ""
			}
			return "net I/O (" + recv.Obj().Name() + "." + fn.Name() + ")"
		case recvPkg == "os" && recv.Obj().Name() == "File" && fn.Name() == "Sync":
			return "fsync ((*os.File).Sync)"
		case recvPkg == "sync" && fn.Name() == "Wait":
			return recv.Obj().Name() + ".Wait"
		case strings.Contains(strings.ToLower(recv.Obj().Name()), "wal") && isWALMutator(fn.Name()):
			return "WAL " + fn.Name() + " (append/fsync class)"
		}
		return ""
	}
	switch {
	case pkg == "net":
		return "net I/O (net." + fn.Name() + ")"
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	}
	return ""
}

func isWALMutator(name string) bool {
	switch name {
	case "append", "Append", "sync", "Sync", "syncTo", "SyncTo", "rotate", "Rotate":
		return true
	}
	return false
}

func (s *lockScanner) report(pos token.Pos, held lockSet, what string) {
	s.diags = append(s.diags, s.p.diag(pos, "lockhold",
		"%s while holding %s (acquired in this function; no intervening Unlock)", what, held.names()))
}

func union(a, b lockSet) lockSet {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}
