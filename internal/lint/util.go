package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// calleeFunc resolves the function or method a call expression
// invokes, or nil for calls through function values, built-ins, and
// type conversions.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// isFunc reports whether fn is the package-level function path.name.
func isFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// recvNamed returns the named type of a method's receiver, or nil
// for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// typeIsFrom reports whether t (through pointers) is a named type
// declared in package path, optionally with one of the given names.
func typeIsFrom(t types.Type, path string, names ...string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != path {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, name := range names {
		if n.Obj().Name() == name {
			return true
		}
	}
	return false
}

// fileBase returns the base filename a position lives in.
func (p *Package) fileBase(n ast.Node) string {
	return filepath.Base(p.Position(n.Pos()).Filename)
}

// isTestFile reports whether the node's file is an in-package test
// file.
func (p *Package) isTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.fileBase(n), "_test.go")
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t or *t implements error.
func implementsError(t types.Type) bool {
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}
