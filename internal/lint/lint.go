// Package lint is sodavet's analyzer driver: a stdlib-only
// (go/parser, go/ast, go/types — no golang.org/x/tools) static
// analysis framework that loads and typechecks every package in the
// module and runs project-specific analyzers over them.
//
// Each analyzer encodes one invariant the SODA reproduction relies on
// for its atomicity/durability arguments but that the compiler cannot
// check: atomic-vs-plain field access discipline (atomicmix), no
// blocking operations under a held mutex (lockhold), %w-wrapping and
// errors.Is testability of typed sentinels (errwrap), epoch threading
// through wire-frame encoders (epochframe), and no use of a value
// after it was returned to a pool (poolsafe).
//
// Diagnostics can be suppressed per-site with
//
//	//lint:ignore <rule> <reason>
//
// where <rule> must name a registered analyzer and <reason> must be
// non-empty; the directive covers its own source line and the line
// immediately below it. Malformed directives are themselves
// diagnostics (rule "lint") and cannot be suppressed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, positioned for file:line:col printing
// and for the -json mode.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects a typechecked package and
// returns its findings; it must not mutate the package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// All is the registered analyzer suite, in reporting order.
var All = []*Analyzer{
	AtomicMix,
	LockHold,
	ErrWrap,
	EpochFrame,
	PoolSafe,
}

// Rules returns the registered rule names (the valid targets of a
// lint:ignore directive).
func Rules() []string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return names
}

// Package is one loaded, typechecked package: the unit every
// analyzer operates on.
type Package struct {
	Path     string // import path ("repro/internal/soda")
	Dir      string // absolute directory
	Fset     *token.FileSet
	Files    []*ast.File        // non-test files first, then in-package _test.go files
	TestFile map[*ast.File]bool // which Files entries are _test.go files
	Pkg      *types.Package
	Info     *types.Info
}

// Position resolves a token.Pos against the package's FileSet.
func (p *Package) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// diag builds a Diagnostic at pos.
func (p *Package) diag(pos token.Pos, rule, format string, args ...any) Diagnostic {
	tp := p.Fset.Position(pos)
	return Diagnostic{
		File:    tp.Filename,
		Line:    tp.Line,
		Col:     tp.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}

// Run executes the analyzers over every package, applies lint:ignore
// suppression, validates the directives themselves, and returns the
// surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, p := range pkgs {
		var pd []Diagnostic
		for _, a := range analyzers {
			pd = append(pd, a.Run(p)...)
		}
		dirs, bad := suppressions(p, known)
		pd = append(filterSuppressed(pd, dirs), bad...)
		out = append(out, pd...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}
