package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolSafe flags use-after-put: once a value has been handed back to
// a sync.Pool (pool.Put(x)), a put*-named pool helper (putFrame(bp)),
// or a release/unref-class refcount method (sc.release(pool)), the
// pool owns it — any later reference on the same path reads or
// mutates memory that a concurrent Get may already have handed to
// another goroutine. These races are invisible to the race detector
// unless a test actually interleaves a reuse, which is exactly why
// the refcount-pooled call state from PR 7 needs a machine-checked
// rule.
//
// The analysis is lexical and intraprocedural: after the put
// statement, every following statement in its block and in the
// enclosing blocks (up to the function's end) is checked for a
// reference to the pooled variable. Reassigning the variable
// (x = ..., x := ...) ends tracking — the name no longer aliases the
// pooled value. A put inside a defer is exempt: it runs at function
// exit, after every lexical use.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "a value returned to a sync.Pool or refcount pool must not be referenced afterwards",
	Run:  runPoolSafe,
}

func runPoolSafe(p *Package) []Diagnostic {
	s := &poolScanner{p: p}
	p.inspect(func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				s.scanList(fn.Body.List, nil)
			}
		case *ast.FuncLit:
			s.scanList(fn.Body.List, nil)
		}
		return true
	})
	return s.diags
}

type pooledPut struct {
	obj      types.Object // the variable holding the pooled value
	call     string       // what consumed it, for the message
	pos      token.Pos
	reported bool
}

type poolScanner struct {
	p     *Package
	diags []Diagnostic
}

// scanList walks one statement list. live carries puts from enclosing
// scopes that are still in effect on entry; the return value is the
// set still live at the end of the list (for propagation into the
// statements after the enclosing block).
func (s *poolScanner) scanList(list []ast.Stmt, live []*pooledPut) []*pooledPut {
	for _, st := range list {
		// 1. Uses of already-pooled values in this statement.
		for _, put := range live {
			if put.reported {
				continue
			}
			if pos, ok := s.usesObject(st, put.obj); ok {
				put.reported = true
				s.diags = append(s.diags, s.p.diag(pos, "poolsafe",
					"%s is used here but was returned to the pool at %s (%s); the pool may already have recycled it",
					put.obj.Name(), s.p.Position(put.pos), put.call))
			}
		}
		// 2. A statement flow cannot fall through ends this path: puts
		// before a return/panic/Fatal never reach the statements after
		// the enclosing block on THIS path. (break/continue/goto keep
		// their puts: control continues at code that is still lexically
		// after the put.)
		if s.terminates(st) {
			return nil
		}
		// 3. Reassignment kills tracking: the name aliases a fresh value.
		live = s.filterKilled(st, live)
		// 4. New puts in this statement (directly or in nested blocks).
		live = s.scanStmt(st, live)
	}
	return live
}

// terminates reports whether flow cannot continue past the statement:
// return, panic, os.Exit, runtime.Goexit, or a testing Fatal/Skip.
func (s *poolScanner) terminates(st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		_, isRet := st.(*ast.ReturnStmt)
		return isRet
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := s.p.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
			return true
		}
	}
	fn := s.p.calleeFunc(call)
	if fn == nil {
		return false
	}
	if isFunc(fn, "os", "Exit") || isFunc(fn, "runtime", "Goexit") {
		return true
	}
	if recv := recvNamed(fn); recv != nil && recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "testing" {
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// scanStmt handles one statement's own put detection and recurses
// into nested blocks, merging the puts that escape them.
func (s *poolScanner) scanStmt(st ast.Stmt, live []*pooledPut) []*pooledPut {
	switch n := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if put := s.putCall(call); put != nil {
				live = append(live, put)
			}
		}
	case *ast.DeferStmt:
		// A deferred put runs at function exit: every lexical use
		// precedes it. Exempt by design.
	case *ast.BlockStmt:
		live = s.scanList(n.List, live)
	case *ast.LabeledStmt:
		live = s.scanStmt(n.Stmt, live)
	case *ast.IfStmt:
		out := s.branchJoin(live,
			func(in []*pooledPut) []*pooledPut { return s.scanList(n.Body.List, in) },
			func(in []*pooledPut) []*pooledPut {
				if n.Else != nil {
					return s.scanStmt(n.Else, in)
				}
				return in
			})
		// A branch that cannot fall through (put-then-return) keeps
		// its puts out of the join: scanList already checked the
		// statements inside the branch.
		live = out
	case *ast.ForStmt:
		live = s.scanList(n.Body.List, live)
	case *ast.RangeStmt:
		live = s.scanList(n.Body.List, live)
	case *ast.SwitchStmt:
		live = s.caseBodies(n.Body.List, live)
	case *ast.TypeSwitchStmt:
		live = s.caseBodies(n.Body.List, live)
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				live = s.branchJoin(live, func(in []*pooledPut) []*pooledPut { return s.scanList(cc.Body, in) })
			}
		}
	}
	return live
}

// branchJoin runs each branch over a copy of the incoming live set
// and unions the survivors. A branch ending in return/panic reports
// its interior uses during scanList; whatever it returns is still
// unioned (over-approximation is fine: a reported put reports once).
func (s *poolScanner) branchJoin(live []*pooledPut, branches ...func([]*pooledPut) []*pooledPut) []*pooledPut {
	seen := make(map[*pooledPut]bool, len(live))
	var out []*pooledPut
	add := func(puts []*pooledPut) {
		for _, p := range puts {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	for _, br := range branches {
		in := make([]*pooledPut, len(live))
		copy(in, live)
		add(br(in))
	}
	return out
}

func (s *poolScanner) caseBodies(list []ast.Stmt, live []*pooledPut) []*pooledPut {
	var branches []func([]*pooledPut) []*pooledPut
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok {
			body := cc.Body
			branches = append(branches, func(in []*pooledPut) []*pooledPut { return s.scanList(body, in) })
		}
	}
	if len(branches) == 0 {
		return live
	}
	return s.branchJoin(live, branches...)
}

// putCall recognizes the pool-consuming calls and returns the pooled
// variable, if it is a plain identifier we can track.
func (s *poolScanner) putCall(call *ast.CallExpr) *pooledPut {
	fn := s.p.calleeFunc(call)
	if fn == nil {
		return nil
	}
	var valueExpr ast.Expr
	var what string
	recv := recvNamed(fn)
	switch {
	case recv != nil && recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "sync" &&
		recv.Obj().Name() == "Pool" && fn.Name() == "Put" && len(call.Args) == 1:
		valueExpr = call.Args[0]
		what = "sync.Pool.Put"
	case recv != nil && fn.Pkg() == s.p.Pkg && isReleaseName(fn.Name()):
		// sc.release(pool): the receiver is the pooled value.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			valueExpr = sel.X
			what = recv.Obj().Name() + "." + fn.Name()
		}
	case recv == nil && fn.Pkg() == s.p.Pkg && strings.HasPrefix(fn.Name(), "put") && len(call.Args) >= 1:
		valueExpr = call.Args[0]
		what = fn.Name()
	default:
		return nil
	}
	id, ok := ast.Unparen(valueExpr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := s.p.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return nil
	}
	return &pooledPut{obj: obj, call: what, pos: call.Pos()}
}

func isReleaseName(name string) bool {
	switch name {
	case "release", "unref", "decref", "decRef", "recycle", "free":
		return true
	}
	return false
}

// usesObject reports whether the statement references obj, without
// descending into statements of nested blocks (those are scanned by
// the recursion with correct ordering) — but descending into
// expressions, func literals included: a closure capturing a pooled
// value runs no earlier than its creation, which is already after
// the put.
func (s *poolScanner) usesObject(st ast.Stmt, obj types.Object) (token.Pos, bool) {
	var found token.Pos
	ok := false
	check := func(n ast.Node) {
		if n == nil || ok {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if ok {
				return false
			}
			if id, isIdent := m.(*ast.Ident); isIdent && s.p.Info.Uses[id] == obj {
				found, ok = id.Pos(), true
				return false
			}
			return true
		})
	}
	// A plain `x = fresh` overwrites the name without reading the
	// pooled value: its bare-identifier LHS is a kill, not a use.
	// Everything else in the assignment (the RHS, and any LHS like
	// m[x] or x.f that evaluates x) still counts.
	if as, isAssign := st.(*ast.AssignStmt); isAssign {
		for _, rhs := range as.Rhs {
			check(rhs)
		}
		for _, lhs := range as.Lhs {
			if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain {
				check(lhs)
			}
		}
		return found, ok
	}
	check(st)
	return found, ok
}

// filterKilled drops puts whose variable this statement reassigns.
func (s *poolScanner) filterKilled(st ast.Stmt, live []*pooledPut) []*pooledPut {
	if len(live) == 0 {
		return live
	}
	killed := make(map[types.Object]bool)
	switch n := st.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := s.p.Info.Uses[id]; obj != nil {
					killed[obj] = true
				}
				if obj := s.p.Info.Defs[id]; obj != nil {
					killed[obj] = true
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id != nil {
				if obj := s.p.Info.Uses[id]; obj != nil {
					killed[obj] = true
				}
			}
		}
	}
	if len(killed) == 0 {
		return live
	}
	out := live[:0]
	for _, p := range live {
		if !killed[p.obj] {
			out = append(out, p)
		}
	}
	return out
}
