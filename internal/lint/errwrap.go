package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap enforces the error-discipline invariants:
//
//  1. A fmt.Errorf call whose arguments include a typed sentinel (a
//     package-level Err* variable or a value of a named *Error type)
//     must format it with %w — anything else (%v, %s, %d) flattens
//     the sentinel to text and silently breaks every errors.Is /
//     errors.As caller downstream (the quarantine, retry, and epoch
//     re-park paths all dispatch on errors.Is).
//  2. Every exported sentinel (Err* variable) and exported error type
//     (named *Error implementing error) must have an errors.Is /
//     errors.As target test: some function in the package's _test.go
//     files must both reference it and call errors.Is or errors.As.
//     Without that test, an accidental rewrap (or a dropped custom
//     Is method) goes unnoticed until a production dispatch misses.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf over typed sentinels must use %w; exported sentinels need an errors.Is target test",
	Run:  runErrWrap,
}

func runErrWrap(p *Package) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, errwrapVerbs(p)...)
	diags = append(diags, errwrapIsTests(p)...)
	return diags
}

// errwrapVerbs checks every fmt.Errorf call: each argument that is a
// sentinel reference or typed-error value must be consumed by a %w
// verb.
func errwrapVerbs(p *Package) []Diagnostic {
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if !isFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
			return true
		}
		format, ok := constString(p, call.Args[0])
		if !ok {
			return true
		}
		verbs := formatVerbs(format)
		for i, arg := range call.Args[1:] {
			if !p.isSentinelExpr(arg) {
				continue
			}
			verb := byte(0)
			if i < len(verbs) {
				verb = verbs[i]
			}
			if verb != 'w' {
				name := types.ExprString(arg)
				if verb == 0 {
					diags = append(diags, p.diag(arg.Pos(), "errwrap",
						"sentinel %s has no matching verb in %q; wrap it with %%w", name, format))
				} else {
					diags = append(diags, p.diag(arg.Pos(), "errwrap",
						"sentinel %s formatted with %%%c in %q; use %%w so errors.Is still matches it", name, verb, format))
				}
			}
		}
		return true
	})
	return diags
}

// isSentinelExpr reports whether e is a typed sentinel: a reference
// to a package-level error variable named Err*, or any value whose
// named type ends in "Error" and implements error.
func (p *Package) isSentinelExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[x.Sel]
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		// Package-level Err*/err* variables are sentinels; function
		// locals named err are ordinary wrapped causes and stay out
		// of scope for this rule.
		if (strings.HasPrefix(v.Name(), "Err") || strings.HasPrefix(v.Name(), "err")) && implementsError(v.Type()) {
			return true
		}
	}
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	named := namedOf(tv.Type)
	if named == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Name(), "Error") && implementsError(tv.Type)
}

// constString resolves a constant string expression.
func constString(p *Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter consuming each successive
// argument of a Printf-style format string. Width/precision stars
// consume an argument too (recorded as '*'); "%%" consumes none.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // %% literal
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				verbs = append(verbs, c)
				break
			}
			// flags, digits, '.', '#', ' ', '+', '-', '[' indexes
			i++
		}
	}
	return verbs
}

// errwrapIsTests requires an errors.Is/errors.As target test for
// every exported sentinel declared in the package's non-test files.
func errwrapIsTests(p *Package) []Diagnostic {
	type sentinel struct {
		obj types.Object
		pos ast.Node
		std string // "errors.Is" or "errors.Is/errors.As"
	}
	var sentinels []sentinel

	for _, f := range p.Files {
		if p.TestFile[f] {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.ValueSpec:
					for _, name := range sp.Names {
						obj := p.Info.Defs[name]
						if obj == nil || !obj.Exported() || !strings.HasPrefix(obj.Name(), "Err") {
							continue
						}
						if implementsError(obj.Type()) {
							sentinels = append(sentinels, sentinel{obj, name, "errors.Is"})
						}
					}
				case *ast.TypeSpec:
					obj := p.Info.Defs[sp.Name]
					if obj == nil || !obj.Exported() || !strings.HasSuffix(obj.Name(), "Error") {
						continue
					}
					if implementsError(obj.Type()) {
						sentinels = append(sentinels, sentinel{obj, sp.Name, "errors.Is/errors.As"})
					}
				}
			}
		}
	}
	if len(sentinels) == 0 {
		return nil
	}

	// A sentinel is covered when some function in a test file both
	// references it and calls errors.Is or errors.As.
	covered := make(map[types.Object]bool)
	for _, f := range p.Files {
		if !p.TestFile[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			callsIs := false
			refs := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					fn := p.calleeFunc(x)
					if isFunc(fn, "errors", "Is") || isFunc(fn, "errors", "As") {
						callsIs = true
					}
				case *ast.Ident:
					if obj := p.Info.Uses[x]; obj != nil {
						refs[obj] = true
					}
				}
				return true
			})
			if callsIs {
				for obj := range refs {
					covered[obj] = true
				}
			}
		}
	}

	var diags []Diagnostic
	for _, s := range sentinels {
		if covered[s.obj] {
			continue
		}
		diags = append(diags, p.diag(s.pos.Pos(), "errwrap",
			"exported sentinel %s has no %s target test in this package's _test.go files", s.obj.Name(), s.std))
	}
	return diags
}
