package lint

import (
	"go/ast"
	"strings"
)

// A lint:ignore directive:
//
//	//lint:ignore <rule> <reason>
//
// suppresses diagnostics of <rule> on the directive's own line (a
// trailing comment) and on the line directly below it (a comment on
// its own line above the flagged statement). The rule name must be a
// registered analyzer and the reason must be non-empty: a suppression
// is a reviewed decision, and the reason is where the review lives.
// Malformed directives are reported under rule "lint" and cannot
// themselves be suppressed.
type suppression struct {
	rule string
	file string
	line int // the directive's line; also covers line+1
}

// suppressions scans a package's comments for lint:ignore directives,
// returning the valid ones plus diagnostics for the malformed ones.
func suppressions(p *Package, known map[string]bool) ([]suppression, []Diagnostic) {
	var sups []suppression
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, p.diag(c.Pos(), "lint",
						"lint:ignore needs a rule name and a reason: //lint:ignore <rule> <reason>"))
					continue
				}
				rule := fields[0]
				if !known[rule] {
					bad = append(bad, p.diag(c.Pos(), "lint",
						"lint:ignore names unknown rule %q (known: %s)", rule, strings.Join(Rules(), ", ")))
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, p.diag(c.Pos(), "lint",
						"lint:ignore %s needs a non-empty reason", rule))
					continue
				}
				sups = append(sups, suppression{rule: rule, file: pos.Filename, line: pos.Line})
			}
		}
	}
	return sups, bad
}

// filterSuppressed drops diagnostics covered by a directive. The
// "lint" rule (directive validation) is never suppressible.
func filterSuppressed(diags []Diagnostic, sups []suppression) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	covered := func(d Diagnostic) bool {
		for _, s := range sups {
			if s.rule == d.Rule && s.file == d.File && (s.line == d.Line || s.line+1 == d.Line) {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Rule != "lint" && covered(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// inspect walks every file of the package with fn; fn returning false
// prunes the subtree (ast.Inspect semantics).
func (p *Package) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
