package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedDirectivesAreNotSuppressions pins the directive
// contract from the suppressbad fixture: a lint:ignore with a missing
// reason, an unknown rule name, or no fields at all is (a) reported
// under rule "lint" and (b) does NOT suppress the finding it sits on.
// Because sodavet exits nonzero on any diagnostic, this is what makes
// a malformed directive fail `make lint`.
func TestMalformedDirectivesAreNotSuppressions(t *testing.T) {
	pkg, err := LoadFixture(filepath.Join("testdata", "src", "suppressbad"))
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	diags := Run([]*Package{pkg}, All)

	byRule := make(map[string]int)
	var lintMsgs []string
	for _, d := range diags {
		byRule[d.Rule]++
		if d.Rule == "lint" {
			lintMsgs = append(lintMsgs, d.Message)
		}
	}
	if byRule["lint"] != 3 {
		t.Errorf("lint (directive validation) diagnostics = %d, want 3:\n%s",
			byRule["lint"], strings.Join(lintMsgs, "\n"))
	}
	if byRule["errwrap"] != 3 {
		t.Errorf("errwrap diagnostics = %d, want 3: a malformed directive must not suppress", byRule["errwrap"])
	}

	joined := strings.Join(lintMsgs, "\n")
	for _, want := range []string{
		"needs a non-empty reason",
		`unknown rule "nosuchrule"`,
		"needs a rule name and a reason",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("no directive diagnostic mentions %q in:\n%s", want, joined)
		}
	}
}

// TestRulesRegistry pins the suite surface the issue requires: at
// least five analyzers, with stable names the suppression syntax and
// -rules flag address.
func TestRulesRegistry(t *testing.T) {
	rules := Rules()
	if len(rules) < 5 {
		t.Fatalf("registered analyzers = %d, want >= 5 (%v)", len(rules), rules)
	}
	for _, want := range []string{"atomicmix", "lockhold", "errwrap", "epochframe", "poolsafe"} {
		found := false
		for _, r := range rules {
			if r == want {
				found = true
			}
		}
		if !found {
			t.Errorf("analyzer %q is not registered (have %v)", want, rules)
		}
	}
}
