package suppressbad

import (
	"errors"
	"fmt"
)

var errThing = errors.New("thing")

func missingReason() error {
	//lint:ignore errwrap
	return fmt.Errorf("op: %v", errThing)
}

func unknownRule() error {
	//lint:ignore nosuchrule the rule name is wrong so this must not suppress
	return fmt.Errorf("op: %v", errThing)
}

func bareDirective() error {
	//lint:ignore
	return fmt.Errorf("op: %v", errThing)
}
