package errwrap

import (
	"errors"
	"fmt"
)

var ErrTested = errors.New("tested")     // ok: pinned by TestErrTestedIsTarget
var ErrUntested = errors.New("untested") // want `exported sentinel ErrUntested has no errors.Is target test`
var errInternal = errors.New("internal") // ok: unexported sentinels need no target test

type FrameError struct{ Seq uint64 } // want `exported sentinel FrameError has no errors.Is/errors.As target test`

func (e *FrameError) Error() string { return fmt.Sprintf("frame %d", e.Seq) }

func wrapWell(err error) error {
	return fmt.Errorf("decode: %w", ErrTested) // ok: %w keeps errors.Is working
}

func wrapFlattened() error {
	return fmt.Errorf("decode: %v", ErrTested) // want `formatted with %v`
}

func wrapStringed() error {
	return fmt.Errorf("decode: %s", errInternal) // want `formatted with %s`
}

func wrapMissingVerb() error {
	return fmt.Errorf("decode failed: %d", 42, errInternal) // want `has no matching verb`
}

func wrapTypedValue(e *FrameError) error {
	return fmt.Errorf("frame: %v", e) // want `formatted with %v`
}

func wrapLocalIsFine(err error) error {
	return fmt.Errorf("op: %v", err) // ok: locals are causes under the caller's control, not sentinels
}

func notErrorf() string {
	return fmt.Sprintf("state: %v", errInternal) // ok: Sprintf output is for humans, not errors.Is
}
