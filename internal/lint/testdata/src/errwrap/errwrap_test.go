package errwrap

import (
	"errors"
	"testing"
)

func TestErrTestedIsTarget(t *testing.T) {
	if !errors.Is(wrapWell(nil), ErrTested) {
		t.Fatal("wrapWell must keep ErrTested Is-matchable")
	}
}
