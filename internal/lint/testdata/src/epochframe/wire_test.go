package epochframe

import "testing"

func TestFrameShape(t *testing.T) {
	// ok: wire_test.go pins the frame encoding at literal epoch zero on
	// purpose — the epochframe rule exempts this file by name.
	if got := appendHeader(nil, 1, 7, 0); len(got) != 3 {
		t.Fatalf("frame length %d, want 3", len(got))
	}
}
