package epochframe

const seedEpoch uint64 = 0

func appendHeader(dst []byte, msgType byte, reqID, epoch uint64) []byte {
	return append(dst, msgType, byte(reqID), byte(epoch))
}

func admit(epoch uint64) bool { return epoch > 0 }

func mintZero() []byte {
	return appendHeader(nil, 1, 7, 0) // want `literal-zero epoch passed to appendHeader`
}

func admitZero() bool {
	return admit(0) // want `literal-zero epoch passed to admit`
}

func mintSeed() []byte {
	return appendHeader(nil, 1, 7, seedEpoch) // ok: a named constant documents the seed context
}

func mintThreaded(epoch uint64) []byte {
	return appendHeader(nil, 1, 7, epoch) // ok: the real epoch is threaded through
}

func zerosElsewhere() []byte {
	return appendHeader(nil, 0, 0, 1) // ok: zeros in non-epoch positions
}
