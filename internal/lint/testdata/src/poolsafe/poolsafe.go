package poolsafe

import "sync"

var pool sync.Pool

type frame struct{ b []byte }

func putFrame(f *frame) { pool.Put(f) }

type scratch struct{ n int }

func (s *scratch) release(p *sync.Pool) { p.Put(s) }

func useAfterPut(f *frame) int {
	pool.Put(f)
	return len(f.b) // want `returned to the pool`
}

func doublePut(f *frame) {
	pool.Put(f)
	pool.Put(f) // want `returned to the pool`
}

func helperPut(f *frame) {
	putFrame(f)
	f.b = nil // want `returned to the pool`
}

func releaseMethod(s *scratch) int {
	s.release(&pool)
	return s.n // want `returned to the pool`
}

func putThenReturn(f *frame) {
	if f.b == nil {
		pool.Put(f)
		return
	}
	f.b = f.b[:0] // ok: the put path returned before reaching here
}

func reassignKills(f *frame) int {
	pool.Put(f)
	f = &frame{}
	return len(f.b) // ok: f was rebound to a fresh value
}

func deferPut(f *frame) int {
	defer pool.Put(f)
	return len(f.b) // ok: a deferred put runs after every lexical use
}

func branchPutThenUse(f *frame, cold bool) int {
	if cold {
		pool.Put(f)
	}
	return len(f.b) // want `returned to the pool`
}
