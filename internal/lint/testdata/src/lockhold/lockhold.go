package lockhold

import (
	"context"
	"net"
	"sync"
	"time"
)

type wal struct{}

func (w *wal) Append(b []byte) error { return nil }
func (w *wal) Size() int             { return 0 }

type state struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	wake chan struct{}
	ch   chan int
	log  *wal
	conn net.Conn
	wg   sync.WaitGroup
}

func sendUnderLock(s *state) {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding s.mu`
	s.mu.Unlock()
}

func sendAfterUnlock(s *state) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1 // ok: the lock was released
}

func sendUnderDeferredUnlock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while holding s.mu`
}

func nonBlockingWake(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // ok: a default case makes the send non-blocking
	case s.wake <- struct{}{}:
	default:
	}
}

func blockingSelect(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default case while holding s.mu`
	case s.wake <- struct{}{}:
	case v := <-s.ch:
		_ = v
	}
}

func ctxWait(ctx context.Context, s *state) {
	s.mu.Lock()
	<-ctx.Done() // want `wait on ctx.Done\(\) while holding s.mu`
	s.mu.Unlock()
}

func receiveUnderRLock(s *state) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want `blocking channel receive while holding s.rw`
}

func netWriteUnderLock(s *state, p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(p) // want `net I/O \(Conn.Write\) while holding s.mu`
}

func netCloseUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Close() // ok: Close is a non-blocking control op
}

func walAppendUnderLock(s *state, rec []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Append(rec) // want `WAL Append \(append/fsync class\) while holding s.mu`
}

func walReadUnderLock(s *state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Size() // ok: reads of WAL state are not the fsync class
}

func sleepUnderLock(s *state) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding s.mu`
	s.mu.Unlock()
}

func waitGroupUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `WaitGroup.Wait while holding s.mu`
}

func goroutineDoesNotHold(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // ok: the spawned goroutine does not hold the caller's lock
	}()
}

func unlockedBranchMerge(s *state, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		s.ch <- 1 // ok: this branch released the lock
		return
	}
	s.mu.Unlock()
}

func otherFunctionsLockIsNotOurs(s *state) {
	// ok: no lock acquired in THIS function; interprocedural holds are
	// out of scope by design.
	s.ch <- 1
}
