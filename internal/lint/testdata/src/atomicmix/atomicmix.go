package atomicmix

import "sync/atomic"

type counter struct {
	n    uint64
	m    uint64
	safe atomic.Uint64
}

func bump(c *counter) {
	atomic.AddUint64(&c.n, 1) // ok: this is the sanctioned access mode
}

func readPlain(c *counter) uint64 {
	return c.n // want `n is accessed atomically`
}

func writePlain(c *counter) {
	c.n = 7 // want `n is accessed atomically`
}

func readAtomic(c *counter) uint64 {
	return atomic.LoadUint64(&c.n) // ok: atomic access of an atomic field
}

func plainOnlyField(c *counter) uint64 {
	c.m = 2 // ok: m is never accessed atomically
	return c.m
}

func typedMethods(c *counter) uint64 {
	c.safe.Add(1) // ok: typed atomics used through methods
	return c.safe.Load()
}

func typedCopyOut(c *counter) atomic.Uint64 {
	return c.safe // want `returning a typed sync/atomic value`
}

func typedCopyLocal(c *counter) {
	x := c.safe // want `copying a typed sync/atomic value`
	x.Store(1)  // the copy races with c.safe even though x itself is method-accessed
}

var hits int64

func globalAtomic() {
	atomic.AddInt64(&hits, 1)
}

func globalPlain() int64 {
	return hits // want `hits is accessed atomically`
}
