package suppress

import (
	"errors"
	"fmt"
)

var errThing = errors.New("thing")

func suppressedTrailing() error {
	return fmt.Errorf("op: %v", errThing) //lint:ignore errwrap this error crosses a JSON boundary and is flattened on purpose
}

func suppressedAbove() error {
	//lint:ignore errwrap this error crosses a JSON boundary and is flattened on purpose
	return fmt.Errorf("op: %v", errThing)
}

func unsuppressed() error {
	return fmt.Errorf("op: %v", errThing) // want `formatted with %v`
}

func wrongRuleDoesNotCover() error {
	//lint:ignore epochframe suppressing a different rule must not hide errwrap findings
	return fmt.Errorf("op: %v", errThing) // want `formatted with %v`
}
