package lint

import (
	"go/ast"
	"go/types"
)

// EpochFrame enforces the epoch-threading invariant from the online
// reconfiguration work (PR 9): every wire frame carries the
// configuration epoch, and quorums are assembled within ONE epoch by
// construction because the epoch is stamped where the conn is built
// and threaded through every encoder. A literal-zero epoch argument
// silently mints a frame from the pre-reconfiguration world: servers
// past epoch 0 NACK it, and worse, a zero-epoch frame accepted by a
// lagging server could let a quorum span a configuration flip — the
// exact situation the epoch machinery exists to make impossible.
//
// The rule: any call to a function that declares a parameter named
// "epoch" must not pass the literal constant 0 for it. wire_test.go
// is exempt (frame-shape tests pin the encoding at epoch zero on
// purpose); anywhere else a genuine epoch-zero context (the seed
// configuration) should name it via a constant or thread the real
// value, or carry a lint:ignore with the argument.
var EpochFrame = &Analyzer{
	Name: "epochframe",
	Doc:  "no literal-zero epoch arguments outside wire_test.go: thread the configuration epoch",
	Run:  runEpochFrame,
}

func runEpochFrame(p *Package) []Diagnostic {
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if sig.Params().At(i).Name() != "epoch" {
				continue
			}
			arg := ast.Unparen(call.Args[i])
			lit, ok := arg.(*ast.BasicLit)
			if !ok || lit.Value != "0" {
				continue
			}
			if p.fileBase(call) == "wire_test.go" {
				continue
			}
			diags = append(diags, p.diag(arg.Pos(), "epochframe",
				"literal-zero epoch passed to %s; thread the configuration epoch (frames minted at epoch 0 cannot survive a reconfiguration)", fn.Name()))
		}
		return true
	})
	return diags
}
