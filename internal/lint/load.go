package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader is stdlib-only by construction: module packages are
// parsed with go/parser and typechecked with go/types, module-internal
// imports are resolved against the packages we already typechecked,
// and standard-library imports are typechecked from $GOROOT/src via
// go/importer's source importer — no export data, no network, no
// golang.org/x/tools.

// disableCgo forces the pure-Go variants of stdlib packages (net, os)
// so the source importer never needs to invoke the cgo tool. Done
// once, process-wide: build.Default is the context both ImportDir and
// the source importer consult.
var disableCgo = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

// pkgNode is one module package before typechecking.
type pkgNode struct {
	importPath string
	dir        string
	goFiles    []string // non-test, build-constraint-filtered
	testFiles  []string // in-package _test.go files
	imports    []string // non-test imports
}

// LoadModule loads every package of the module rooted at root (the
// directory containing go.mod) and returns typechecked Packages for
// the ones selected by patterns. Patterns are "./..." (everything,
// also the default), "./dir/..." (subtree), or "./dir" (one package);
// dependencies of selected packages are always loaded so typechecking
// is complete, but only selected packages are returned for analysis.
// External test packages (package foo_test) are not loaded; the repo
// keeps its tests in-package.
func LoadModule(root string, patterns []string) ([]*Package, error) {
	disableCgo()
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	nodes := make(map[string]*pkgNode) // import path -> node
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return fmt.Errorf("lint: scanning %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		nodes[ip] = &pkgNode{
			importPath: ip,
			dir:        path,
			goFiles:    bp.GoFiles,
			testFiles:  bp.TestGoFiles,
			imports:    bp.Imports,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", root)
	}

	selected, err := selectPackages(nodes, modPath, root, patterns)
	if err != nil {
		return nil, err
	}

	order, err := topoOrder(nodes, modPath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	src := importer.ForCompiler(fset, "source", nil)

	// Parse every file once; both typecheck passes reuse the ASTs.
	asts := make(map[string]*ast.File)
	parseAll := func(n *pkgNode, names []string) ([]*ast.File, error) {
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			full := filepath.Join(n.dir, name)
			f, ok := asts[full]
			if !ok {
				var err error
				f, err = parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					return nil, err
				}
				asts[full] = f
			}
			files = append(files, f)
		}
		return files, nil
	}

	// Pass 1: typecheck non-test files in dependency order, building
	// the registry module-internal imports resolve against.
	reg := make(map[string]*types.Package)
	imp := &moduleImporter{reg: reg, src: src}
	for _, ip := range order {
		n := nodes[ip]
		files, err := parseAll(n, n.goFiles)
		if err != nil {
			return nil, err
		}
		tpkg, err := check(ip, fset, files, imp, nil)
		if err != nil {
			return nil, err
		}
		reg[ip] = tpkg
	}

	// Pass 2: re-typecheck each selected package with its in-package
	// test files included, capturing full type info for analysis.
	var pkgs []*Package
	for _, ip := range order {
		if !selected[ip] {
			continue
		}
		n := nodes[ip]
		files, err := parseAll(n, append(append([]string{}, n.goFiles...), n.testFiles...))
		if err != nil {
			return nil, err
		}
		info := newInfo()
		tpkg, err := check(ip, fset, files, imp, info)
		if err != nil {
			return nil, err
		}
		testFile := make(map[*ast.File]bool, len(n.testFiles))
		for i, f := range files {
			if i >= len(n.goFiles) {
				testFile[f] = true
			}
		}
		pkgs = append(pkgs, &Package{
			Path:     ip,
			Dir:      n.dir,
			Fset:     fset,
			Files:    files,
			TestFile: testFile,
			Pkg:      tpkg,
			Info:     info,
		})
	}
	return pkgs, nil
}

// LoadFixture typechecks a single directory as a standalone package
// (stdlib imports only) — the loader the golden-fixture tests use.
func LoadFixture(dir string) (*Package, error) {
	disableCgo()
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	testFile := make(map[*ast.File]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		if strings.HasSuffix(e.Name(), "_test.go") {
			testFile[f] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := newInfo()
	src := importer.ForCompiler(fset, "source", nil)
	tpkg, err := check("fixture/"+filepath.Base(dir), fset, files, src, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:     "fixture/" + filepath.Base(dir),
		Dir:      dir,
		Fset:     fset,
		Files:    files,
		TestFile: testFile,
		Pkg:      tpkg,
		Info:     info,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// check typechecks one package, collecting every type error rather
// than stopping at the first, and failing if any occurred: analyzers
// must only ever see packages whose type information is complete.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer, info *types.Info) (*types.Package, error) {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		if len(errs) > 5 {
			errs = errs[:5]
		}
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("lint: typechecking %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	return tpkg, nil
}

// moduleImporter resolves module-internal imports from the pass-1
// registry and everything else from the stdlib source importer.
type moduleImporter struct {
	reg map[string]*types.Package
	src types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.reg[path]; ok {
		return p, nil
	}
	return m.src.Import(path)
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			mp = strings.Trim(mp, `"`)
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// selectPackages resolves CLI patterns to a set of import paths.
func selectPackages(nodes map[string]*pkgNode, modPath, root string, patterns []string) (map[string]bool, error) {
	sel := make(map[string]bool, len(nodes))
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		ellipsis := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			ellipsis = true
			pat = rest
		}
		if pat == "." || pat == "./" || pat == "" {
			pat = "."
		}
		pat = strings.TrimPrefix(pat, "./")
		ip := modPath
		if pat != "." && pat != modPath {
			if strings.HasPrefix(pat, modPath+"/") {
				ip = pat
			} else {
				ip = modPath + "/" + filepath.ToSlash(pat)
			}
		}
		matched := false
		for candidate := range nodes {
			if candidate == ip || (ellipsis && (ip == modPath || strings.HasPrefix(candidate, ip+"/"))) {
				sel[candidate] = true
				matched = true
			}
		}
		if !matched && !ellipsis {
			return nil, fmt.Errorf("lint: pattern %q matches no package", pat)
		}
	}
	return sel, nil
}

// topoOrder returns every node in dependency-before-dependent order,
// considering only module-internal (non-test) imports.
func topoOrder(nodes map[string]*pkgNode, modPath string) ([]string, error) {
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string, chain []string) error
	visit = func(ip string, chain []string) error {
		switch state[ip] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, ip), " -> "))
		}
		state[ip] = 1
		n := nodes[ip]
		deps := append([]string{}, n.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if dep == modPath || strings.HasPrefix(dep, modPath+"/") {
				if nodes[dep] == nil {
					return fmt.Errorf("lint: %s imports %s, which is not in the module", ip, dep)
				}
				if err := visit(dep, append(chain, ip)); err != nil {
					return err
				}
			}
		}
		state[ip] = 2
		order = append(order, ip)
		return nil
	}
	paths := make([]string, 0, len(nodes))
	for ip := range nodes {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		if err := visit(ip, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
