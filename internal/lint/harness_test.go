package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// The golden-fixture harness: each analyzer has a package under
// testdata/src/<rule>/ whose comments carry expectations in the form
//
//	// want `regexp`
//
// A want comment must be matched by at least one diagnostic on its own
// line (the regexp is applied to "rule: message"), and every
// diagnostic must be claimed by some want — so a fixture pins both the
// fired and the non-fired cases. Gutting an analyzer's implementation
// leaves its wants unmatched and fails the test.

var wantRe = regexp.MustCompile("// want `([^`]*)`")

type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
	hits int
}

func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("LoadFixture(%s): %v", fixture, err)
	}

	var wants []*wantComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fixture, m[1], err)
				}
				pos := pkg.Position(c.Pos())
				wants = append(wants, &wantComment{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments; it cannot pin its analyzer", fixture)
	}

	for _, d := range Run([]*Package{pkg}, analyzers) {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Rule+": "+d.Message) {
				w.hits++
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: want %q, but no diagnostic fired", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func TestAtomicMixFixture(t *testing.T)  { runFixture(t, "atomicmix", AtomicMix) }
func TestLockHoldFixture(t *testing.T)   { runFixture(t, "lockhold", LockHold) }
func TestErrWrapFixture(t *testing.T)    { runFixture(t, "errwrap", ErrWrap) }
func TestEpochFrameFixture(t *testing.T) { runFixture(t, "epochframe", EpochFrame) }
func TestPoolSafeFixture(t *testing.T)   { runFixture(t, "poolsafe", PoolSafe) }

// TestSuppressFixture runs the full suite over a fixture whose
// directives suppress two of four identical findings: the two
// suppressed lines must stay silent, the uncovered and
// wrong-rule-covered lines must still fire.
func TestSuppressFixture(t *testing.T) { runFixture(t, "suppress", All...) }
