package soda

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The write-ahead log. Every mutation a server accepts — a put-data
// that advanced the tag, a repair-put that installed, a wipe — is
// appended as one checksummed record before the in-memory register
// changes, so the durable history is always at least as new as
// anything the server has acknowledged (under FsyncAlways) and replays
// to exactly the state the mutations built.
//
// A record reuses the wire framing discipline (length prefix, then a
// payload built from the same append-encoders and parsed by the same
// bounds-checked cursor), with a CRC32 between them for torn-write
// detection:
//
//	uint32 length | uint32 CRC32-IEEE(payload) | payload
//	payload: uint64 lsn | byte op | key | [tag | uint32 vlen | elem]
//
// The lsn (log sequence number) is per-server monotone; snapshots
// record the lsn they cover so replay can skip records already folded
// in. The log is a directory of numbered segment files (wal-<seq>.log);
// a snapshot rotates to a fresh segment and deletes the ones it covers,
// which is the log-truncation story. Only the active segment can hold a
// torn tail: finished segments are fsynced before rotation regardless
// of the fsync mode.

// FsyncMode is the WAL's durability/latency trade-off for records the
// server has acknowledged.
type FsyncMode int

const (
	// FsyncAlways syncs every record before the mutation is applied:
	// an acked write is on the disk, so a power cut never loses
	// anything the cluster was told about. This is the mode under
	// which a recovered server may rejoin without donor repair.
	FsyncAlways FsyncMode = iota
	// FsyncInterval syncs on a timer: a power cut loses at most the
	// last interval of acked mutations, and the recovered server must
	// be healed by the Repairer before rejoining.
	FsyncInterval
	// FsyncNone never syncs explicitly (the OS flushes when it
	// pleases); cheapest, weakest.
	FsyncNone
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	}
	return "unknown"
}

// WAL record operations. Replay applies each with the same acceptance
// rule as the live path, so a replayed server re-establishes the
// tag-floor invariant instead of trusting record order blindly.
const (
	walOpPut    byte = 1 // put-data: apply iff tag > current
	walOpRepair byte = 2 // repair-put: apply iff tag >= current
	walOpWipe   byte = 3 // wipe: clear the key
	walOpEpoch  byte = 4 // configuration-epoch transition (seal or activate); keyless
)

// walHeaderLen is the fixed record prefix: uint32 length + uint32 CRC.
const walHeaderLen = 8

var (
	// errWALPartial marks an incomplete record at the end of a segment:
	// a torn write, truncated at recovery and never replayed.
	errWALPartial = errors.New("soda: torn wal record")
	// errWALCorrupt marks a record whose checksum or shape is wrong.
	errWALCorrupt = errors.New("soda: corrupt wal record")
	// errWALClosed is returned for appends after Close or a power cut.
	errWALClosed = errors.New("soda: wal closed")
)

// walRecord is one decoded log record. Epoch transitions are keyless:
// est holds the full post-transition state (active epoch + geometry,
// pending epoch + geometry while sealed) so replaying the record alone
// restores the server's configuration view.
type walRecord struct {
	lsn  uint64
	op   byte
	key  string
	tag  Tag
	elem []byte
	vlen int
	est  epochState // walOpEpoch only
}

// appendWALRecord appends rec's framed encoding to b.
func appendWALRecord(b []byte, rec walRecord) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc, patched below
	b = binary.BigEndian.AppendUint64(b, rec.lsn)
	b = append(b, rec.op)
	switch rec.op {
	case walOpEpoch:
		b = binary.BigEndian.AppendUint64(b, rec.est.epoch)
		b = binary.BigEndian.AppendUint64(b, rec.est.pending)
		var sealed byte
		if rec.est.sealed {
			sealed = 1
		}
		b = append(b, sealed)
		b = binary.BigEndian.AppendUint16(b, uint16(rec.est.n))
		b = binary.BigEndian.AppendUint16(b, uint16(rec.est.k))
		b = binary.BigEndian.AppendUint16(b, uint16(rec.est.pn))
		b = binary.BigEndian.AppendUint16(b, uint16(rec.est.pk))
	case walOpWipe:
		b = appendKey(b, rec.key)
	default:
		b = appendKey(b, rec.key)
		b = appendTag(b, rec.tag)
		b = binary.BigEndian.AppendUint32(b, uint32(rec.vlen))
		b = appendBytes(b, rec.elem)
	}
	payload := b[start+walHeaderLen:]
	binary.BigEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b
}

// parseWALRecord decodes the first record in data, returning the bytes
// consumed. errWALPartial means data ends mid-record (a torn tail);
// errWALCorrupt means the bytes are there but lie (checksum or shape).
// Either way the record must not be replayed.
func parseWALRecord(data []byte) (walRecord, int, error) {
	if len(data) < walHeaderLen {
		return walRecord{}, 0, errWALPartial
	}
	n := binary.BigEndian.Uint32(data)
	if n == 0 || n > maxFrame {
		return walRecord{}, 0, fmt.Errorf("%w: record length %d", errWALCorrupt, n)
	}
	if len(data) < walHeaderLen+int(n) {
		return walRecord{}, 0, errWALPartial
	}
	payload := data[walHeaderLen : walHeaderLen+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[4:]) {
		return walRecord{}, 0, fmt.Errorf("%w: checksum mismatch", errWALCorrupt)
	}
	c := &cursor{b: payload}
	var rec walRecord
	rec.lsn = c.u64()
	rec.op = c.u8()
	switch rec.op {
	case walOpPut, walOpRepair:
		rec.key = c.key()
		rec.tag = c.tag()
		vlen := c.u32()
		rec.elem = c.bytes()
		if vlen > math.MaxInt32 {
			c.failed = true
		}
		rec.vlen = int(vlen)
	case walOpWipe:
		rec.key = c.key()
	case walOpEpoch:
		rec.est.epoch = c.u64()
		rec.est.pending = c.u64()
		rec.est.sealed = c.u8() == 1
		rec.est.n = int(c.u16())
		rec.est.k = int(c.u16())
		rec.est.pn = int(c.u16())
		rec.est.pk = int(c.u16())
	default:
		c.failed = true
	}
	if err := c.err("wal-record"); err != nil {
		return walRecord{}, 0, fmt.Errorf("%w: %v", errWALCorrupt, err)
	}
	return rec, walHeaderLen + int(n), nil
}

const (
	walSegmentPrefix = "wal-"
	walSegmentSuffix = ".log"
)

func walSegmentName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", walSegmentPrefix, seq, walSegmentSuffix)
}

// walSegment names one log segment file on disk.
type walSegment struct {
	seq  uint64
	path string
}

// walSegments lists dir's segments in ascending sequence order,
// ignoring files that merely look similar.
func walSegments(dir string) ([]walSegment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, walSegmentPrefix) || !strings.HasSuffix(name, walSegmentSuffix) {
			continue
		}
		hexSeq := strings.TrimSuffix(strings.TrimPrefix(name, walSegmentPrefix), walSegmentSuffix)
		seq, err := strconv.ParseUint(hexSeq, 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, walSegment{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// wal is the append side of the log: one active segment file, an lsn
// counter, and the fsync policy. A write failure latches into err and
// degrades the wal (appends report the error, state keeps serving from
// memory) rather than wedging the server.
//
// Under FsyncAlways, appends group-commit: the record is written under
// mu, mu is released, and the fsync happens under syncMu — one leader
// syncs while followers queue behind it, and a follower whose bytes
// the leader's sync already covered (synced >= its target) skips its
// own fsync entirely. N concurrent appends cost at most two fsyncs
// instead of N.
type wal struct {
	mu     sync.Mutex
	dir    string
	mode   FsyncMode
	f      *os.File
	seq    uint64 // active segment sequence
	lsn    uint64 // last assigned log sequence number
	size   int64  // bytes written to the active segment
	synced int64  // active-segment bytes known to be on the disk
	dirty  bool
	buf    []byte
	err    error

	// syncMu serializes FsyncAlways group commits; held while the
	// leader's fsync runs so followers coalesce behind it.
	syncMu sync.Mutex

	// failAfter, when positive, injects a disk fault: the append that
	// would push the segment past failAfter bytes fails (and latches)
	// instead of writing — the disk-full / IO-error soak's hook.
	failAfter int64

	metrics *Metrics // optional; counts coalesced group-commit syncs
}

// errDiskFull is the injected append failure for the disk-fault soak.
var errDiskFull = errors.New("soda: wal: no space left on device (injected)")

// openSegment makes segment seq the active file, appending to whatever
// it already holds (recovery reopens the tail segment). Existing bytes
// survived, so they count as synced.
func (w *wal) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, walSegmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.seq = f, seq
	w.size, w.synced, w.dirty = st.Size(), st.Size(), false
	return nil
}

// append assigns the next lsn and logs one mutation, honoring the
// fsync mode. It returns the active segment's size so the caller can
// decide whether a snapshot is due. forceSync syncs the record
// regardless of mode (epoch transitions are too rare and too important
// to lose to an fsync policy).
func (w *wal) append(rec walRecord, forceSync bool) (int64, error) {
	w.mu.Lock()
	if w.err != nil {
		defer w.mu.Unlock()
		return w.size, w.err
	}
	w.lsn++
	rec.lsn = w.lsn
	w.buf = appendWALRecord(w.buf[:0], rec)
	recLen := int64(len(w.buf))
	if w.failAfter > 0 && w.size+recLen > w.failAfter {
		w.err = errDiskFull
		defer w.mu.Unlock()
		return w.size, w.err
	}
	_, err := w.f.Write(w.buf)
	if cap(w.buf) > maxPooledFrame {
		w.buf = nil // a huge value passed through; don't pin its buffer
	}
	if err != nil {
		w.err = err
		defer w.mu.Unlock()
		return w.size, err
	}
	w.size += recLen
	w.dirty = true
	size, seq := w.size, w.seq
	w.mu.Unlock()
	if w.mode == FsyncAlways || forceSync {
		if err := w.syncTo(seq, size); err != nil {
			return size, err
		}
	}
	return size, nil
}

// syncTo ensures the first target bytes of segment seq are durable,
// group-committing with concurrent appenders: whoever holds syncMu
// syncs for everyone queued behind it, and a caller whose target was
// covered while it waited returns without touching the disk. A rotated
// segment is already durable (rotation syncs before closing), so a seq
// mismatch is success.
func (w *wal) syncTo(seq uint64, target int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.seq != seq || w.synced >= target {
		w.mu.Unlock()
		if w.metrics != nil {
			w.metrics.walGroupSyncs.Add(1)
		}
		return nil
	}
	f, size := w.f, w.size
	w.mu.Unlock()
	// The fsync runs outside mu so appenders keep writing while it
	// spins; everything written before this call is covered, and the
	// conservative watermark (size captured above) only under-reports.
	//lint:ignore lockhold syncMu is the group-commit leader lock (PR 9): whoever holds it fsyncs for everyone queued behind it — blocking on it IS the coalescing
	err := f.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		if w.seq != seq {
			// The segment rotated away mid-sync (rotation synced and
			// closed it); our bytes are durable and the error is the
			// closed file, not the disk.
			return nil
		}
		if w.err == nil {
			w.err = err
		}
		return w.err
	}
	if w.seq == seq && size > w.synced {
		w.synced = size
		w.dirty = w.synced < w.size
	}
	return nil
}

func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *wal) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	w.synced = w.size
	w.dirty = false
	return nil
}

// rotate finishes the active segment (fsynced regardless of mode — a
// finished segment is always durable) and opens the next one. It
// returns the last lsn the finished segments hold, which is what a
// snapshot taken after the rotation covers.
func (w *wal) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.dirty {
		//lint:ignore lockhold rotation must sync the outgoing segment before the swap, atomically with respect to appenders; it is rare (snapshot-driven) and mu is the only lock that can order it
		if err := w.f.Sync(); err != nil {
			w.err = err
			return 0, err
		}
		w.synced, w.dirty = w.size, false
	}
	covered := w.lsn
	if w.size == 0 {
		return covered, nil // nothing in the active segment; keep it
	}
	if err := w.f.Close(); err != nil {
		w.err = err
		return 0, err
	}
	if err := w.openSegment(w.seq + 1); err != nil {
		w.err = err
		return 0, err
	}
	return covered, nil
}

// removeBefore deletes every segment older than seq — the truncation
// step after a snapshot made them redundant.
func (w *wal) removeBefore(seq uint64) error {
	segs, err := walSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.seq < seq {
			if err := os.Remove(s.path); err != nil {
				return err
			}
		}
	}
	return nil
}

// activeSeq returns the active segment's sequence number.
func (w *wal) activeSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// close flushes and closes the log; later appends fail.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	if w.err == nil || w.err == errWALClosed {
		w.err = errWALClosed
		return err
	}
	return w.err
}

// powerCut simulates losing power mid-flight: bytes that never reached
// the disk are gone. Anything past the synced watermark is truncated
// away, which is exactly what the machine would find after a real cut
// (finished segments and snapshots are always synced; only the active
// tail is at risk).
func (w *wal) powerCut() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Truncate(w.synced)
		w.f.Close()
		w.f = nil
	}
	if w.err == nil {
		w.err = errWALClosed
	}
}

// tearWALTail chops n bytes off the end of the last nonempty segment —
// the torn-final-record injection: a record the server believed written
// but the disk only half-kept. Recovery must detect it by checksum,
// truncate it, and never replay it.
func tearWALTail(dir string, n int64) error {
	segs, err := walSegments(dir)
	if err != nil {
		return err
	}
	for i := len(segs) - 1; i >= 0; i-- {
		st, err := os.Stat(segs[i].path)
		if err != nil {
			return err
		}
		if st.Size() == 0 {
			continue
		}
		return os.Truncate(segs[i].path, max(st.Size()-n, 0))
	}
	return fmt.Errorf("soda: no wal bytes to tear in %s", dir)
}
