package soda

import "sync"

// Delivery is one (tag, coded element) message from a server to a
// reader: either the server's current state at registration time
// (Initial) or the relay of a put-data that arrived while the reader
// was registered. A server that has never been written delivers the
// zero Tag with a nil element.
type Delivery struct {
	Server  int
	Tag     Tag
	Elem    []byte
	VLen    int
	Initial bool
}

// registration is one registered reader: the relay sink plus the tag
// the server held when the reader arrived. Only puts with tag >= treq
// are relayed — older writes cannot be what this reader is waiting
// for, because its target tag is the maximum over a quorum of such
// registration tags.
type registration struct {
	treq Tag
	sink func(Delivery)
}

// Server is the SODA server state machine, independent of any
// transport. It stores exactly one coded element — the one belonging
// to the highest tag it has seen — plus the registered-reader set,
// which is the entire per-server cost of the relay-based read
// protocol. All methods are safe for concurrent use; relay sinks are
// invoked outside the state lock.
type Server struct {
	idx int

	mu      sync.Mutex
	tag     Tag
	elem    []byte
	vlen    int
	readers map[string]*registration
}

// NewServer returns the state machine for the server holding codeword
// shard idx.
func NewServer(idx int) *Server {
	return &Server{idx: idx, readers: make(map[string]*registration)}
}

// Index returns the server's shard index.
func (s *Server) Index() int { return s.idx }

// GetTag answers the writer's first phase: the highest tag stored.
func (s *Server) GetTag() Tag {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tag
}

// PutData answers the writer's second phase: store (t, elem) if t is
// new, and relay it to every registered reader whose registration tag
// it satisfies — including readers that arrived after a newer write,
// since a concurrent reader may be collecting exactly this tag. The
// server takes ownership of elem.
func (s *Server) PutData(t Tag, elem []byte, vlen int) {
	s.mu.Lock()
	if s.tag.Less(t) {
		s.tag, s.elem, s.vlen = t, elem, vlen
	}
	var sinks []func(Delivery)
	for _, r := range s.readers {
		if !t.Less(r.treq) {
			sinks = append(sinks, r.sink)
		}
	}
	s.mu.Unlock()
	d := Delivery{Server: s.idx, Tag: t, Elem: elem, VLen: vlen}
	for _, sink := range sinks {
		sink(d)
	}
}

// RepairPut answers the Repairer's install: accept (t, elem, vlen) iff
// t >= the current tag, reporting whether it was installed. The >= (vs
// PutData's strict >) is the point of the message: repair may lay down
// a fresh copy of the element the server already claims to hold,
// overwriting rotten storage, but it can never roll the server's tag
// backwards — that invariant is what keeps a previously returned tag's
// holder count from shrinking, which the reader's f < k atomicity
// argument depends on. An accepted repair relays to registered readers
// exactly like a put-data, so a reader that registered while the
// server was catching up still sees the element it is waiting for. The
// server takes ownership of elem.
func (s *Server) RepairPut(t Tag, elem []byte, vlen int) bool {
	s.mu.Lock()
	if t.Less(s.tag) {
		s.mu.Unlock()
		return false
	}
	s.tag, s.elem, s.vlen = t, elem, vlen
	var sinks []func(Delivery)
	for _, r := range s.readers {
		if !t.Less(r.treq) {
			sinks = append(sinks, r.sink)
		}
	}
	s.mu.Unlock()
	d := Delivery{Server: s.idx, Tag: t, Elem: elem, VLen: vlen}
	for _, sink := range sinks {
		sink(d)
	}
	return true
}

// Wipe clears the stored element, modeling a server that restarts
// after losing its disk: it rejoins with the initial (zero-tag, empty)
// state and relies on repair to regenerate its coded element.
// Registrations are untouched — fail-stop transports already dropped
// them at crash time.
func (s *Server) Wipe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tag, s.elem, s.vlen = Tag{}, nil, 0
}

// Register answers a reader's get-data: record (reader, current tag)
// in the registration set and return the current state as the initial
// delivery. The caller (transport) delivers the returned snapshot and
// every subsequent sink invocation until Unregister.
func (s *Server) Register(readerID string, sink func(Delivery)) Delivery {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readers[readerID] = &registration{treq: s.tag, sink: sink}
	return Delivery{Server: s.idx, Tag: s.tag, Elem: s.elem, VLen: s.vlen, Initial: true}
}

// Unregister drops a reader's registration (reader-done, or its
// connection closing).
func (s *Server) Unregister(readerID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.readers, readerID)
}

// UnregisterAll drops every registration; a crashing server relays to
// nobody.
func (s *Server) UnregisterAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.readers)
}

// Readers returns the number of registered readers (test/metrics
// visibility).
func (s *Server) Readers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.readers)
}

// Snapshot returns the stored tag, coded element, and value length.
// The element is the server's live buffer; callers must not mutate
// it.
func (s *Server) Snapshot() (Tag, []byte, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tag, s.elem, s.vlen
}
