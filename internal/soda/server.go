package soda

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Delivery is one (tag, coded element) message from a server to a
// reader: either the server's current state at registration time
// (Initial) or the relay of a put-data that arrived while the reader
// was registered. A server that has never been written delivers the
// zero Tag with a nil element. Epoch is the configuration epoch the
// server held the element under when it relayed it.
type Delivery struct {
	Server  int
	Tag     Tag
	Elem    []byte
	VLen    int
	Initial bool
	Epoch   uint64
}

// registration is one registered reader: the relay sink plus the tag
// the server held when the reader arrived. Only puts with tag >= treq
// are relayed — older writes cannot be what this reader is waiting
// for, because its target tag is the maximum over a quorum of such
// registration tags.
type registration struct {
	reader string
	treq   Tag
	sink   func(Delivery)
}

// register is one named SODA register on a server: the coded element
// belonging to the highest tag seen for this key, plus the key's
// registered-reader set. The per-register mutex keeps unrelated keys
// off each other's critical sections. The reader set is a small slice,
// not a map: a key rarely has more than a handful of concurrent
// readers, every read registers and unregisters on every server, and
// at that cardinality a linear scan beats two string-map mutations per
// subscription — the slice's backing array recycles across reads where
// map buckets would churn.
type register struct {
	mu      sync.Mutex
	tag     Tag
	elem    []byte
	vlen    int
	readers []registration
}

// serverShardCount stripes the namespace map; must be a power of two.
const serverShardCount = 16

type serverShard struct {
	mu   sync.RWMutex
	regs map[string]*register
}

// Server is the SODA server state machine, independent of any
// transport. It stores a namespace of named registers — each exactly
// one coded element, the one belonging to the highest tag it has seen
// for that key, plus the key's registered-reader set, which is the
// entire per-server cost of the relay-based read protocol. The
// namespace is a sharded key→register map with striped locks and lazy
// register creation; registers that hold nothing and serve nobody are
// garbage-collected back out of it. All methods are safe for
// concurrent use; relay sinks are invoked outside all locks.
type Server struct {
	idx     int
	metrics Metrics
	dur     *durability // nil for a memory-only server
	shards  [serverShardCount]serverShard

	// Configuration-epoch state. epochSt is read lock-free on every
	// admission check; transitions serialize on epochMu and broadcast by
	// closing-and-replacing epochCh (the Membership.Changed pattern), so
	// transports can tear down relay streams the moment the geometry
	// moves.
	epochSt atomic.Pointer[epochState]
	epochMu sync.Mutex
	epochCh chan struct{}
}

// epochState is the server's view of the cluster configuration: the
// active epoch and its [n,k] geometry, plus — while sealed for a
// two-phase flip — the pending epoch and geometry being migrated to.
type epochState struct {
	epoch   uint64
	n, k    int // active geometry (0,0 until the first flip names one)
	sealed  bool
	pending uint64
	pn, pk  int // pending geometry, meaningful only while sealed
}

// opClass buckets wire operations for epoch admission.
type opClass int

const (
	opClient opClass = iota // get-tag, put-data, get-data: full service only
	opDonor                 // get-elem, keys: served while sealed (migration donors)
	opRepair                // repair-put: active epoch, or pending epoch while sealed
)

// NewServer returns the state machine for the server holding codeword
// shard idx.
func NewServer(idx int) *Server {
	s := &Server{idx: idx, epochCh: make(chan struct{})}
	s.epochSt.Store(&epochState{})
	for i := range s.shards {
		s.shards[i].regs = make(map[string]*register)
	}
	return s
}

// Index returns the server's shard index in the code geometry.
func (s *Server) Index() int { return s.idx }

// Metrics returns the server's live counters (for transports that
// need to count, e.g. relay-queue drops).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// MetricsSnapshot returns the counters plus current namespace gauges.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	snap := s.metrics.Snapshot()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		snap.Registers += uint64(len(sh.regs))
		for _, r := range sh.regs {
			r.mu.Lock()
			snap.Registrations += uint64(len(r.readers))
			r.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	return snap
}

// EpochStatus reports the server's configuration-epoch state.
func (s *Server) EpochStatus() EpochStatus {
	st := s.epochSt.Load()
	return EpochStatus{Epoch: st.epoch, Pending: st.pending, Sealed: st.sealed, N: st.n, K: st.k}
}

// EpochChanged returns a channel closed at the server's next epoch
// transition (seal or activate). Callers re-arm by calling again.
func (s *Server) EpochChanged() <-chan struct{} {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epochCh
}

// Admit checks a frame's configuration epoch against the server's
// state for the given operation class, returning the typed NACK the
// transport must send when they disagree. Client operations require
// the active epoch unsealed; donor reads (get-elem, keys) are served
// while sealed so migration can drain the frozen state; repair
// installs are accepted at the active epoch or, while sealed, at the
// pending epoch — that is the migration path laying down re-encoded
// elements before activation.
func (s *Server) Admit(class opClass, epoch uint64) *StaleEpochError {
	st := s.epochSt.Load()
	switch class {
	case opClient:
		if epoch == st.epoch && !st.sealed {
			return nil
		}
	case opDonor:
		if epoch == st.epoch {
			return nil
		}
	case opRepair:
		if (epoch == st.epoch && !st.sealed) || (st.sealed && epoch == st.pending) {
			return nil
		}
	}
	s.metrics.epochNacks.Add(1)
	want := st.epoch
	if st.sealed {
		want = st.pending
	}
	if epoch > want {
		// The client is ahead of us (it saw an activation we have not):
		// it should keep its epoch and retry once we catch up.
		want = epoch
	}
	return &StaleEpochError{Server: s.idx, ServerEpoch: st.epoch, Want: want, Sealed: st.sealed}
}

// Reconfig is the coordinator's entry point for the two-phase flip:
// seal the active epoch pending a target, then activate the target.
// Both transitions are idempotent (a coordinator retrying after a
// timeout or a node power-cut must be able to re-issue them), logged
// as WAL epoch records before they apply (synced regardless of fsync
// mode — a geometry change is too rare and too important to lose), and
// drop every reader registration so relay streams die with the old
// epoch instead of leaking cross-epoch deliveries.
func (s *Server) Reconfig(op ReconfigOp, target uint64, n, k int) (EpochStatus, error) {
	if op == ReconfigStatus {
		return s.EpochStatus(), nil
	}
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	st := s.epochSt.Load()
	switch op {
	case ReconfigSeal:
		if st.epoch >= target || (st.sealed && st.pending == target) {
			// Already sealed for (or past) the target: a retry, not a
			// conflict.
			return s.statusLocked(), nil
		}
		if st.sealed {
			return s.statusLocked(), fmt.Errorf("soda: server %d: seal for epoch %d conflicts with pending flip to %d", s.idx, target, st.pending)
		}
		next := &epochState{epoch: st.epoch, n: st.n, k: st.k, sealed: true, pending: target, pn: n, pk: k}
		s.transitionLocked(next)
	case ReconfigActivate:
		if st.epoch >= target {
			return s.statusLocked(), nil
		}
		if !st.sealed || st.pending != target {
			return s.statusLocked(), fmt.Errorf("soda: server %d: activate epoch %d without matching seal (sealed=%v pending=%d)", s.idx, target, st.sealed, st.pending)
		}
		next := &epochState{epoch: target, n: n, k: k}
		s.transitionLocked(next)
	default:
		return s.statusLocked(), fmt.Errorf("soda: server %d: unknown reconfig op %d", s.idx, op)
	}
	return s.statusLocked(), nil
}

func (s *Server) statusLocked() EpochStatus {
	st := s.epochSt.Load()
	return EpochStatus{Epoch: st.epoch, Pending: st.pending, Sealed: st.sealed, N: st.n, K: st.k}
}

// transitionLocked logs, applies, and broadcasts one epoch transition.
// Caller holds epochMu.
func (s *Server) transitionLocked(next *epochState) {
	if s.dur != nil {
		s.dur.logEpoch(next)
	}
	s.epochSt.Store(next)
	s.metrics.epochFlips.Add(1)
	ch := s.epochCh
	s.epochCh = make(chan struct{})
	close(ch)
	// Registered readers belong to the configuration they registered
	// under; the flip hands them off by dropping them here so their
	// streams end and they re-register (min(treq, tag) semantics) under
	// the new epoch.
	s.UnregisterAll()
}

// installEpochState restores epoch state during recovery replay,
// without logging (the record being replayed is the log).
func (s *Server) installEpochState(next *epochState) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.epochSt.Store(next)
}

// shardOf hashes a key onto its stripe (FNV-1a, inlined to keep the
// lookup allocation-free).
func (s *Server) shardOf(key string) *serverShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h&(serverShardCount-1)]
}

// lookup returns the key's register, or nil when absent and create is
// false. Creation is lazy: a key costs nothing until first touched.
func (s *Server) lookup(key string, create bool) *register {
	sh := s.shardOf(key)
	sh.mu.RLock()
	r := sh.regs[key]
	sh.mu.RUnlock()
	if r != nil || !create {
		return r
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r = sh.regs[key]; r == nil {
		r = &register{}
		sh.regs[key] = r
	}
	return r
}

// collect removes the register if it still holds nothing and serves
// nobody — the namespace GC that keeps touched-but-empty keys from
// accumulating. Lock order is shard then register, same as every
// other path.
func (s *Server) collect(key string) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := sh.regs[key]
	if r == nil {
		return
	}
	r.mu.Lock()
	dead := r.tag == (Tag{}) && len(r.readers) == 0
	r.mu.Unlock()
	if dead {
		delete(sh.regs, key)
		s.metrics.registerGCs.Add(1)
	}
}

// GetTag answers the writer's first phase: the highest tag stored
// under key. A never-written key is the zero tag and does not cost a
// register.
func (s *Server) GetTag(key string) Tag {
	s.metrics.getTags.Add(1)
	r := s.lookup(key, false)
	if r == nil {
		return Tag{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tag
}

// relayLocked collects the sinks a put under tag t must reach. Caller
// holds r.mu; the returned sinks are invoked after it is released.
func relayLocked(r *register, t Tag) []func(Delivery) {
	var sinks []func(Delivery)
	for i := range r.readers {
		if !t.Less(r.readers[i].treq) {
			sinks = append(sinks, r.readers[i].sink)
		}
	}
	return sinks
}

// PutData answers the writer's second phase: store (t, elem) under key
// if t is new, and relay it to every reader registered on the key
// whose registration tag it satisfies — including readers that arrived
// after a newer write, since a concurrent reader may be collecting
// exactly this tag. The server takes ownership of elem.
func (s *Server) PutData(key string, t Tag, elem []byte, vlen int) {
	s.metrics.putDatas.Add(1)
	r := s.lookup(key, true)
	r.mu.Lock()
	if r.tag.Less(t) {
		// Log before apply, under the register lock: the WAL's per-key
		// record order is the apply order, and with FsyncAlways the
		// mutation is on disk before anyone can observe it applied.
		if s.dur != nil {
			s.dur.logMutation(walOpPut, key, t, elem, vlen)
		}
		r.tag, r.elem, r.vlen = t, elem, vlen
	}
	sinks := relayLocked(r, t)
	r.mu.Unlock()
	if len(sinks) > 0 {
		s.metrics.relays.Add(uint64(len(sinks)))
		d := Delivery{Server: s.idx, Tag: t, Elem: elem, VLen: vlen, Epoch: s.epochSt.Load().epoch}
		for _, sink := range sinks {
			sink(d)
		}
	}
}

// RepairPut answers the Repairer's install: accept (t, elem, vlen)
// under key iff t >= the key's current tag, reporting whether it was
// installed. The >= (vs PutData's strict >) is the point of the
// message: repair may lay down a fresh copy of the element the server
// already claims to hold, overwriting rotten storage, but it can never
// roll the server's tag backwards — that invariant is what keeps a
// previously returned tag's holder count from shrinking, which the
// reader's f < k atomicity argument depends on. An accepted repair
// relays to the key's registered readers exactly like a put-data, so a
// reader that registered while the server was catching up still sees
// the element it is waiting for. The server takes ownership of elem.
func (s *Server) RepairPut(key string, t Tag, elem []byte, vlen int) bool {
	s.metrics.repairPuts.Add(1)
	// A zero-tag repair of an absent key installs the state the key
	// already has; succeed without materializing a register.
	if t == (Tag{}) && s.lookup(key, false) == nil {
		s.metrics.repairInstalls.Add(1)
		return true
	}
	r := s.lookup(key, true)
	r.mu.Lock()
	if t.Less(r.tag) {
		r.mu.Unlock()
		return false
	}
	if s.dur != nil {
		s.dur.logMutation(walOpRepair, key, t, elem, vlen)
	}
	r.tag, r.elem, r.vlen = t, elem, vlen
	sinks := relayLocked(r, t)
	r.mu.Unlock()
	s.metrics.repairInstalls.Add(1)
	if len(sinks) > 0 {
		s.metrics.relays.Add(uint64(len(sinks)))
		d := Delivery{Server: s.idx, Tag: t, Elem: elem, VLen: vlen, Epoch: s.epochSt.Load().epoch}
		for _, sink := range sinks {
			sink(d)
		}
	}
	return true
}

// Wipe clears key's stored element, modeling a server that restarts
// after losing its disk: the key rejoins with the initial (zero-tag,
// empty) state and relies on repair to regenerate its coded element.
// Registrations are untouched — fail-stop transports already dropped
// them at crash time — and a register left with neither state nor
// readers is collected.
func (s *Server) Wipe(key string) {
	r := s.lookup(key, false)
	if r == nil {
		return
	}
	r.mu.Lock()
	if s.dur != nil && r.tag != (Tag{}) {
		s.dur.logMutation(walOpWipe, key, Tag{}, nil, 0)
	}
	r.tag, r.elem, r.vlen = Tag{}, nil, 0
	r.mu.Unlock()
	s.collect(key)
}

// WipeAll clears the whole disk: every register goes, including the
// zero-tag ones Keys() never reports, and every registration with
// them — a wholesale-replaced server holds nothing and relays to
// nobody. (Iterating Keys() here would sweep only written keys,
// leaving unwritten registers pinned by stale registrations; the
// sweep walks the shards directly instead.)
func (s *Server) WipeAll() {
	var dropped uint64
	var removed uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, r := range sh.regs {
			r.mu.Lock()
			if s.dur != nil && r.tag != (Tag{}) {
				s.dur.logMutation(walOpWipe, key, Tag{}, nil, 0)
			}
			r.tag, r.elem, r.vlen = Tag{}, nil, 0
			dropped += uint64(len(r.readers))
			clear(r.readers) // zero the entries so sink references drop
			r.readers = r.readers[:0]
			r.mu.Unlock()
			delete(sh.regs, key)
			removed++
		}
		sh.mu.Unlock()
	}
	s.metrics.regGCs.Add(dropped)
	s.metrics.registerGCs.Add(removed)
}

// Keys returns the ascending keys that currently hold a written
// (nonzero-tag) element — the namespace a Repairer must heal.
func (s *Server) Keys() []string {
	var keys []string
	s.metrics.keyLists.Add(1)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, r := range sh.regs {
			r.mu.Lock()
			written := r.tag != Tag{}
			r.mu.Unlock()
			if written {
				keys = append(keys, key)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Register answers a reader's get-data on key: record (reader, current
// tag) in the key's registration set and return the current state as
// the initial delivery. The caller (transport) delivers the returned
// snapshot and every subsequent sink invocation until Unregister.
func (s *Server) Register(key, readerID string, sink func(Delivery)) Delivery {
	s.metrics.getDatas.Add(1)
	r := s.lookup(key, true)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.readers {
		if r.readers[i].reader == readerID {
			// Re-registration (a read retrying after a transient failure)
			// must not raise treq: the server's tag may have moved past
			// the read's target since the first registration, and a treq
			// above the target would filter out exactly the relay the
			// read is waiting for. Keep min(existing treq, current tag) —
			// the tag only drops below an old treq after a wipe, where
			// the current tag is the honest floor.
			treq := r.readers[i].treq
			if r.tag.Less(treq) {
				treq = r.tag
			}
			r.readers[i] = registration{reader: readerID, treq: treq, sink: sink}
			return Delivery{Server: s.idx, Tag: r.tag, Elem: r.elem, VLen: r.vlen, Initial: true, Epoch: s.epochSt.Load().epoch}
		}
	}
	r.readers = append(r.readers, registration{reader: readerID, treq: r.tag, sink: sink})
	return Delivery{Server: s.idx, Tag: r.tag, Elem: r.elem, VLen: r.vlen, Initial: true, Epoch: s.epochSt.Load().epoch}
}

// Unregister drops a reader's registration on key (reader-done, or its
// connection closing), collecting the register if nothing is left. The
// collect is attempted only when the register looked dead under its
// own lock — the common unregister, on a written key, never touches
// the shard-exclusive lock.
func (s *Server) Unregister(key, readerID string) {
	r := s.lookup(key, false)
	if r == nil {
		return
	}
	had, dead := false, false
	r.mu.Lock()
	for i := range r.readers {
		if r.readers[i].reader == readerID {
			last := len(r.readers) - 1
			r.readers[i] = r.readers[last]
			r.readers[last] = registration{} // drop the sink reference
			r.readers = r.readers[:last]
			had = true
			break
		}
	}
	dead = r.tag == (Tag{}) && len(r.readers) == 0
	r.mu.Unlock()
	if had {
		s.metrics.regGCs.Add(1)
		if dead {
			s.collect(key)
		}
	}
}

// UnregisterAll drops every registration on every key; a crashing
// server relays to nobody.
func (s *Server) UnregisterAll() {
	var emptied []string
	var dropped uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, r := range sh.regs {
			r.mu.Lock()
			dropped += uint64(len(r.readers))
			clear(r.readers) // zero the entries so sink references drop
			r.readers = r.readers[:0]
			if r.tag == (Tag{}) {
				emptied = append(emptied, key)
			}
			r.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	s.metrics.regGCs.Add(dropped)
	for _, key := range emptied {
		s.collect(key)
	}
}

// Readers returns the number of readers registered on key
// (test/metrics visibility).
func (s *Server) Readers(key string) int {
	r := s.lookup(key, false)
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.readers)
}

// Snapshot returns key's stored tag, coded element, and value length.
// The element is the server's live buffer; callers must not mutate
// it.
func (s *Server) Snapshot(key string) (Tag, []byte, int) {
	r := s.lookup(key, false)
	if r == nil {
		return Tag{}, nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tag, r.elem, r.vlen
}
