package soda

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// startTCPCluster brings up n NetServers on ephemeral localhost ports
// and returns their dial-per-op conns.
func startTCPCluster(t *testing.T, n int) ([]Conn, []*NetServer) {
	t.Helper()
	addrs, servers := startTCPServers(t, n)
	return TCPConns(addrs), servers
}

func startTCPServers(t *testing.T, n int) ([]string, []*NetServer) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*NetServer, n)
	for i := 0; i < n; i++ {
		ns, err := ListenAndServe(NewServer(i), "127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenAndServe(%d): %v", i, err)
		}
		t.Cleanup(func() { ns.Close() })
		servers[i] = ns
		addrs[i] = ns.Addr()
	}
	return addrs, servers
}

// TestTCPEndToEnd runs the protocol over real localhost TCP: a write,
// a read, a server crash (listener closed), and a write/read pair
// that ride through it on the n-f quorums.
func TestTCPEndToEnd(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	conns, servers := startTCPCluster(t, 5)
	w := mustWriter(t, "w1", codec, conns)
	r := mustReader(t, "r1", codec, conns)

	v1 := []byte("over the wire this time")
	tag1, err := w.Write(ctx, testKey, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.Tag != tag1 || !bytes.Equal(res.Value, v1) {
		t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, tag1, v1)
	}

	// Crash server 0: connections are refused from here on.
	servers[0].Close()
	v2 := []byte("written around the crashed server")
	tag2, err := w.Write(ctx, testKey, v2)
	if err != nil {
		t.Fatalf("Write after crash: %v", err)
	}
	res, err = r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read after crash: %v", err)
	}
	if res.Tag != tag2 || !bytes.Equal(res.Value, v2) {
		t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, tag2, v2)
	}
}

// TestTCPRelayStream pins the streaming half of the TCP transport: a
// standing get-data subscription receives the initial snapshot and
// then one relayed delivery per put that lands on the server, scoped
// to the subscribed key only.
func TestTCPRelayStream(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	conns, _ := startTCPCluster(t, 5)
	w := mustWriter(t, "w1", codec, conns)
	v1 := []byte("subscription smoke value")
	tag1, err := w.Write(ctx, testKey, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Subscribe to server 2 directly.
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	got := make(chan Delivery, 16)
	errCh := make(chan error, 1)
	go func() {
		errCh <- conns[2].GetData(subCtx, testKey, "sub#1", func(d Delivery) { got <- d })
	}()
	first := <-got
	if !first.Initial || first.Tag != tag1 || first.Server != 2 {
		t.Fatalf("initial delivery = %+v", first)
	}

	// A write to a different key must not reach this stream.
	if _, err := w.Write(ctx, testKey+"/other", []byte("different register")); err != nil {
		t.Fatalf("Write other key: %v", err)
	}

	v2 := []byte("relayed while subscribed")
	tag2, err := w.Write(ctx, testKey, v2)
	if err != nil {
		t.Fatalf("Write 2: %v", err)
	}
	shards2, _ := codec.EncodeValue(v2)
	select {
	case d := <-got:
		if d.Initial || d.Tag != tag2 || !bytes.Equal(d.Elem, shards2[2]) || d.VLen != len(v2) {
			t.Fatalf("relayed delivery = %+v (cross-key leak?)", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no relayed delivery arrived")
	}

	// Cancelling unsubscribes cleanly (nil error) and the server
	// forgets the reader.
	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("GetData returned %v after cancel", err)
	}
}

// TestTCPRepairRPCs exercises the repair wire messages end to end over
// real TCP: element collection returns what the server holds, key
// enumeration lists written keys, and the repair install enforces the
// tag floor remotely exactly as it does in-process.
func TestTCPRepairRPCs(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	conns, servers := startTCPCluster(t, 1)
	c := conns[0]

	// Empty register: zero tag, no element, no keys.
	tag, elem, vlen, err := c.GetElem(ctx, testKey)
	if err != nil || !tag.IsZero() || len(elem) != 0 || vlen != 0 {
		t.Fatalf("GetElem on empty server = %v %v %d, %v", tag, elem, vlen, err)
	}
	if keys, err := c.Keys(ctx); err != nil || len(keys) != 0 {
		t.Fatalf("Keys on empty server = %v, %v", keys, err)
	}

	t5 := Tag{TS: 5, Writer: "w"}
	if err := c.PutData(ctx, testKey, t5, []byte{1, 2, 3}, 9); err != nil {
		t.Fatalf("PutData: %v", err)
	}
	tag, elem, vlen, err = c.GetElem(ctx, testKey)
	if err != nil || tag != t5 || vlen != 9 || !bytes.Equal(elem, []byte{1, 2, 3}) {
		t.Fatalf("GetElem = %v %v %d, %v", tag, elem, vlen, err)
	}
	if keys, err := c.Keys(ctx); err != nil || len(keys) != 1 || keys[0] != testKey {
		t.Fatalf("Keys = %v, %v", keys, err)
	}

	// Install below the current tag: rejected, state unchanged.
	if ok, err := c.RepairPut(ctx, testKey, Tag{TS: 4, Writer: "w"}, []byte{7}, 1); err != nil || ok {
		t.Fatalf("RepairPut below current = %v, %v", ok, err)
	}
	if got, _, _ := servers[0].core.Snapshot(testKey); got != t5 {
		t.Fatalf("rejected remote repair mutated the server: %v", got)
	}
	// At or above: installed.
	t6 := Tag{TS: 6, Writer: "w"}
	if ok, err := c.RepairPut(ctx, testKey, t6, []byte{9, 9}, 2); err != nil || !ok {
		t.Fatalf("RepairPut above current = %v, %v", ok, err)
	}
	tag, elem, _, err = c.GetElem(ctx, testKey)
	if err != nil || tag != t6 || !bytes.Equal(elem, []byte{9, 9}) {
		t.Fatalf("GetElem after repair = %v %v, %v", tag, elem, err)
	}
}

// TestTCPUnknownTypeByte sends garbage at a server and pins the two
// error tiers: a framed message with an unknown type byte (or a
// malformed body) gets an explicit error frame echoing its request id
// and the connection survives; a frame too short to even carry a
// header gets a connection-level error (request id 0).
func TestTCPUnknownTypeByte(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	conns, _ := startTCPCluster(t, 1)
	c := conns[0].(*tcpConn)

	// Unknown type byte under a well-formed header.
	payload, err := c.unary(ctx, appendHeader(nil, 0xFF, 7, SeedEpoch))
	if err != nil {
		t.Fatalf("unary: %v", err)
	}
	req, rerr := decodeError(payload)
	var re *RemoteError
	if req != 7 || !errors.As(rerr, &re) {
		t.Fatalf("garbage type byte produced req %d, %v; want an echoed *RemoteError", req, rerr)
	}
	if re.Msg != "unknown message type 0xff" {
		t.Fatalf("RemoteError.Msg = %q", re.Msg)
	}

	// A malformed known-type message gets the same treatment.
	payload, err = c.unary(ctx, append(appendHeader(nil, msgPutData, 9, SeedEpoch), 0xDE, 0xAD))
	if err != nil {
		t.Fatalf("unary: %v", err)
	}
	if req, rerr := decodeError(payload); req != 9 || !errors.As(rerr, &re) {
		t.Fatalf("truncated put-data produced req %d, %v", req, rerr)
	}

	// A headerless frame cannot be answered on a request id: the server
	// sends a connection-level error (request id 0) and closes.
	payload, err = c.unary(ctx, []byte{0xFF})
	if err != nil {
		t.Fatalf("unary: %v", err)
	}
	if req, rerr := decodeError(payload); req != 0 || !errors.As(rerr, &re) {
		t.Fatalf("headerless frame produced req %d, %v; want a request-id-0 error", req, rerr)
	}
}

// TestTCPDialRetryTimeout pins the client dial policy: refused dials
// are retried on the backoff schedule and then surface the dial error,
// and the operation context cuts both the dial and the backoff sleep
// short.
func TestTCPDialRetryTimeout(t *testing.T) {
	checkNoLeaks(t)
	// A dead address: grab an ephemeral port, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	ctx := testCtx(t)
	c := TCPConn(0, dead, WithDialRetry(3, Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond}))
	start := time.Now()
	if _, err := c.GetTag(ctx, testKey); err == nil {
		t.Fatal("GetTag against a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("retries against a refused address took %v", elapsed)
	}

	// Cancellation aborts the inter-attempt backoff immediately.
	slow := TCPConn(0, dead, WithDialRetry(100, Backoff{Base: time.Hour})).(*tcpConn)
	cctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	if _, err := slow.GetTag(cctx, testKey); err == nil {
		t.Fatal("GetTag under a cancelled context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to cut the backoff short", elapsed)
	}

	// And a write still completes when one address in the cluster is
	// dead: the fault budget absorbs the failed dials.
	codec, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	conns, _ := startTCPCluster(t, 5)
	conns[0] = TCPConn(0, dead, WithDialRetry(1, Backoff{Base: time.Millisecond}))
	w := mustWriter(t, "w1", codec, conns)
	if _, err := w.Write(testCtx(t), testKey, []byte("around the dead address")); err != nil {
		t.Fatalf("Write with one dead address: %v", err)
	}
}
