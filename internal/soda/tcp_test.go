package soda

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// startTCPCluster brings up n NetServers on ephemeral localhost ports
// and returns their conns.
func startTCPCluster(t *testing.T, n int) ([]Conn, []*NetServer) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*NetServer, n)
	for i := 0; i < n; i++ {
		ns, err := ListenAndServe(NewServer(i), "127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenAndServe(%d): %v", i, err)
		}
		t.Cleanup(func() { ns.Close() })
		servers[i] = ns
		addrs[i] = ns.Addr()
	}
	return TCPConns(addrs), servers
}

// TestTCPEndToEnd runs the protocol over real localhost TCP: a write,
// a read, a server crash (listener closed), and a write/read pair
// that ride through it on the n-f quorums.
func TestTCPEndToEnd(t *testing.T) {
	ctx := testCtx(t)
	codec, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	conns, servers := startTCPCluster(t, 5)
	w := mustWriter(t, "w1", codec, conns)
	r := mustReader(t, "r1", codec, conns)

	v1 := []byte("over the wire this time")
	tag1, err := w.Write(ctx, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	res, err := r.Read(ctx)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.Tag != tag1 || !bytes.Equal(res.Value, v1) {
		t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, tag1, v1)
	}

	// Crash server 0: connections are refused from here on.
	servers[0].Close()
	v2 := []byte("written around the crashed server")
	tag2, err := w.Write(ctx, v2)
	if err != nil {
		t.Fatalf("Write after crash: %v", err)
	}
	res, err = r.Read(ctx)
	if err != nil {
		t.Fatalf("Read after crash: %v", err)
	}
	if res.Tag != tag2 || !bytes.Equal(res.Value, v2) {
		t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, tag2, v2)
	}
}

// TestTCPRelayStream pins the streaming half of the TCP transport: a
// standing get-data subscription receives the initial snapshot and
// then one relayed delivery per put that lands on the server.
func TestTCPRelayStream(t *testing.T) {
	ctx := testCtx(t)
	codec, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	conns, _ := startTCPCluster(t, 5)
	w := mustWriter(t, "w1", codec, conns)
	v1 := []byte("subscription smoke value")
	tag1, err := w.Write(ctx, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Subscribe to server 2 directly.
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	got := make(chan Delivery, 16)
	errCh := make(chan error, 1)
	go func() {
		errCh <- conns[2].GetData(subCtx, "sub#1", func(d Delivery) { got <- d })
	}()
	first := <-got
	if !first.Initial || first.Tag != tag1 || first.Server != 2 {
		t.Fatalf("initial delivery = %+v", first)
	}

	v2 := []byte("relayed while subscribed")
	tag2, err := w.Write(ctx, v2)
	if err != nil {
		t.Fatalf("Write 2: %v", err)
	}
	shards2, _ := codec.EncodeValue(v2)
	select {
	case d := <-got:
		if d.Initial || d.Tag != tag2 || !bytes.Equal(d.Elem, shards2[2]) || d.VLen != len(v2) {
			t.Fatalf("relayed delivery = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no relayed delivery arrived")
	}

	// Cancelling unsubscribes cleanly (nil error) and the server
	// forgets the reader.
	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("GetData returned %v after cancel", err)
	}
}
