package soda

import "sync/atomic"

// Metrics is a dependency-free set of monotonic server counters,
// incremented on the state-machine hot paths with atomics so both
// transports (loopback and TCP) count identically and nothing ever
// takes a lock to observe. Read it with Snapshot.
type Metrics struct {
	getTags        atomic.Uint64
	putDatas       atomic.Uint64
	getDatas       atomic.Uint64
	getElems       atomic.Uint64
	keyLists       atomic.Uint64
	repairPuts     atomic.Uint64
	repairInstalls atomic.Uint64
	relays         atomic.Uint64
	relayDrops     atomic.Uint64
	regGCs         atomic.Uint64
	registerGCs    atomic.Uint64
	walAppends     atomic.Uint64
	walFailures    atomic.Uint64
	walTornDrops   atomic.Uint64
	snapshots      atomic.Uint64
	recoveries     atomic.Uint64
	epochNacks     atomic.Uint64
	epochFlips     atomic.Uint64
	walGroupSyncs  atomic.Uint64
}

// MetricsSnapshot is one consistent-enough picture of a server's
// counters plus the current namespace gauges. Counters are monotonic;
// gauges are instantaneous.
type MetricsSnapshot struct {
	GetTags        uint64 // get-tag requests served
	PutDatas       uint64 // put-data requests served
	GetDatas       uint64 // reader registrations opened (get-data)
	GetElems       uint64 // repair collections served (get-elem)
	KeyLists       uint64 // key enumerations served
	RepairPuts     uint64 // repair-put requests served
	RepairInstalls uint64 // repair-puts that actually installed
	Relays         uint64 // deliveries relayed to registered readers
	RelayDrops     uint64 // deliveries dropped on relay-queue overflow
	RegGCs         uint64 // reader registrations garbage-collected
	RegisterGCs    uint64 // empty registers removed from the namespace
	WALAppends     uint64 // mutations appended to the write-ahead log
	WALFailures    uint64 // WAL appends lost to disk errors (degraded durability)
	WALTornDrops   uint64 // torn/corrupt records truncated at recovery
	Snapshots      uint64 // namespace snapshots written (with log truncation)
	Recoveries     uint64 // times this state was rebuilt from snapshot+WAL
	EpochNacks     uint64 // frames rejected for carrying the wrong configuration epoch
	EpochFlips     uint64 // epoch transitions applied (seals + activations)
	WALGroupSyncs  uint64 // fsyncs that covered more than one FsyncAlways append
	Registers      uint64 // gauge: registers currently in the namespace
	Registrations  uint64 // gauge: reader registrations currently held
}

// Snapshot reads every counter. Gauge fields are zero here; Server's
// MetricsSnapshot fills them from the shard maps.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		GetTags:        m.getTags.Load(),
		PutDatas:       m.putDatas.Load(),
		GetDatas:       m.getDatas.Load(),
		GetElems:       m.getElems.Load(),
		KeyLists:       m.keyLists.Load(),
		RepairPuts:     m.repairPuts.Load(),
		RepairInstalls: m.repairInstalls.Load(),
		Relays:         m.relays.Load(),
		RelayDrops:     m.relayDrops.Load(),
		RegGCs:         m.regGCs.Load(),
		RegisterGCs:    m.registerGCs.Load(),
		WALAppends:     m.walAppends.Load(),
		WALFailures:    m.walFailures.Load(),
		WALTornDrops:   m.walTornDrops.Load(),
		Snapshots:      m.snapshots.Load(),
		Recoveries:     m.recoveries.Load(),
		EpochNacks:     m.epochNacks.Load(),
		EpochFlips:     m.epochFlips.Load(),
		WALGroupSyncs:  m.walGroupSyncs.Load(),
	}
}

// Add accumulates another snapshot into s, so a harness can report one
// cluster-wide line instead of n per-server ones. Gauges add too: the
// sum is "registers held across the cluster", which for an n-way
// replicated namespace is n× the key count.
func (s *MetricsSnapshot) Add(o MetricsSnapshot) {
	s.GetTags += o.GetTags
	s.PutDatas += o.PutDatas
	s.GetDatas += o.GetDatas
	s.GetElems += o.GetElems
	s.KeyLists += o.KeyLists
	s.RepairPuts += o.RepairPuts
	s.RepairInstalls += o.RepairInstalls
	s.Relays += o.Relays
	s.RelayDrops += o.RelayDrops
	s.RegGCs += o.RegGCs
	s.RegisterGCs += o.RegisterGCs
	s.WALAppends += o.WALAppends
	s.WALFailures += o.WALFailures
	s.WALTornDrops += o.WALTornDrops
	s.Snapshots += o.Snapshots
	s.Recoveries += o.Recoveries
	s.EpochNacks += o.EpochNacks
	s.EpochFlips += o.EpochFlips
	s.WALGroupSyncs += o.WALGroupSyncs
	s.Registers += o.Registers
	s.Registrations += o.Registrations
}
