package soda

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Length-prefixed binary framing. Every message is one frame:
//
//	uint32 big-endian payload length | payload
//
// and every payload starts with a one-byte message type. Integers are
// big-endian; byte strings carry a uint32 length, the writer id in a
// tag a uint16 length. The format is deliberately tiny — SODA's
// message alphabet is six messages — and has no versioning beyond the
// type byte; it is an internal cluster protocol, not a public API.

// Message types.
const (
	msgGetTag     byte = 1  // c->s: get-tag phase
	msgTagResp    byte = 2  // s->c: the server's tag
	msgPutData    byte = 3  // c->s: put-data phase {tag, vlen, elem}
	msgAck        byte = 4  // s->c: put-data acknowledged
	msgGetData    byte = 5  // c->s: register reader {readerID}
	msgData       byte = 6  // s->c: {tag, vlen, initial, elem}, repeated
	msgReaderDone byte = 7  // c->s: unregister reader
	msgGetElem    byte = 8  // c->s: repair collection — fetch (tag, elem)
	msgElemResp   byte = 9  // s->c: {tag, vlen, elem}
	msgRepairPut  byte = 10 // c->s: install a repaired element {tag, vlen, elem}
	msgRepairResp byte = 11 // s->c: {accepted}: tag >= current, installed
	msgError      byte = 12 // s->c: {message}: explicit protocol error
)

// maxFrame bounds a frame payload; a peer announcing more is treated
// as broken rather than allocated for.
const maxFrame = 16 << 20

var (
	// ErrFrame is returned for malformed or oversized frames.
	ErrFrame = errors.New("soda: malformed wire frame")
)

// FrameError is the typed form of a decode failure: which message was
// being decoded and what went wrong (truncated payload, trailing
// bytes, wrong type byte). It matches errors.Is(err, ErrFrame), so
// existing callers keep working while version-skew diagnostics become
// legible.
type FrameError struct {
	Want string // message the decoder expected
	Got  byte   // type byte actually seen (0 when the payload was empty)
	Msg  string // what went wrong
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("soda: malformed wire frame: decoding %s: %s", e.Want, e.Msg)
}

func (e *FrameError) Is(target error) bool { return target == ErrFrame }

// RemoteError is a peer's explicit msgError frame: the server telling
// a (possibly version-skewed) client what it objected to, instead of
// silently dropping the connection.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "soda: server error: " + e.Msg }

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: %d byte frame exceeds %d", ErrFrame, len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf when it has the capacity.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrFrame, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Append-style encoders.

func appendTag(b []byte, t Tag) []byte {
	// Writer ids are bounded at the constructors (maxWriterID) and by
	// the uint16 length on ingest, so truncation here would indicate a
	// forged tag: clamp it to the empty writer rather than emit a
	// frame whose length field lies about the bytes that follow.
	w := t.Writer
	if len(w) > 0xFFFF {
		w = ""
	}
	b = binary.BigEndian.AppendUint64(b, t.TS)
	b = binary.BigEndian.AppendUint16(b, uint16(len(w)))
	return append(b, w...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func encodeGetTag() []byte { return []byte{msgGetTag} }

func encodeTagResp(t Tag) []byte { return appendTag([]byte{msgTagResp}, t) }

func encodePutData(t Tag, elem []byte, vlen int) []byte {
	b := appendTag([]byte{msgPutData}, t)
	b = binary.BigEndian.AppendUint32(b, uint32(vlen))
	return appendBytes(b, elem)
}

func encodeAck() []byte { return []byte{msgAck} }

func encodeGetData(readerID string) []byte {
	return appendBytes([]byte{msgGetData}, []byte(readerID))
}

func encodeData(d Delivery) []byte {
	b := appendTag([]byte{msgData}, d.Tag)
	b = binary.BigEndian.AppendUint32(b, uint32(d.VLen))
	var initial byte
	if d.Initial {
		initial = 1
	}
	b = append(b, initial)
	return appendBytes(b, d.Elem)
}

func encodeReaderDone() []byte { return []byte{msgReaderDone} }

func encodeGetElem() []byte { return []byte{msgGetElem} }

func encodeElemResp(t Tag, elem []byte, vlen int) []byte {
	b := appendTag([]byte{msgElemResp}, t)
	b = binary.BigEndian.AppendUint32(b, uint32(vlen))
	return appendBytes(b, elem)
}

func encodeRepairPut(t Tag, elem []byte, vlen int) []byte {
	b := appendTag([]byte{msgRepairPut}, t)
	b = binary.BigEndian.AppendUint32(b, uint32(vlen))
	return appendBytes(b, elem)
}

func encodeRepairResp(accepted bool) []byte {
	var a byte
	if accepted {
		a = 1
	}
	return []byte{msgRepairResp, a}
}

// maxErrorMsg caps the error-frame text a peer can make us relay or
// store.
const maxErrorMsg = 512

func encodeError(msg string) []byte {
	if len(msg) > maxErrorMsg {
		msg = msg[:maxErrorMsg]
	}
	return appendBytes([]byte{msgError}, []byte(msg))
}

// cursor is a bounds-checked payload parser: every getter records an
// overrun instead of panicking, and err() reports it once at the end.
type cursor struct {
	b      []byte
	failed bool
}

func (c *cursor) take(n int) []byte {
	if c.failed || len(c.b) < n {
		c.failed = true
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) u8() byte {
	p := c.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (c *cursor) u16() uint16 {
	p := c.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

func (c *cursor) u32() uint32 {
	p := c.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (c *cursor) u64() uint64 {
	p := c.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (c *cursor) tag() Tag {
	ts := c.u64()
	return Tag{TS: ts, Writer: string(c.take(int(c.u16())))}
}

// bytes returns a copy of a length-prefixed byte string, so decoded
// messages never alias a transport read buffer.
func (c *cursor) bytes() []byte {
	n := c.u32()
	p := c.take(int(n))
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// err reports a typed decode failure for the named message: truncated
// payload (an overrun getter) or trailing bytes both mean the peer and
// we disagree about the message's shape.
func (c *cursor) err(want string) error {
	if c.failed {
		return &FrameError{Want: want, Msg: "truncated payload"}
	}
	if len(c.b) != 0 {
		return &FrameError{Want: want, Msg: fmt.Sprintf("%d trailing bytes", len(c.b))}
	}
	return nil
}

// Decoders. Each checks the type byte itself so dispatch sites stay
// honest about what they expect, and each surfaces a peer's explicit
// msgError frame as a *RemoteError — a version-skewed peer degrades
// into a legible error instead of a desynced stream.

// typeCheck begins decoding: it consumes the type byte, intercepting
// error frames and reporting unexpected types as typed errors.
func typeCheck(c *cursor, want byte, name string) error {
	if len(c.b) == 0 {
		return &FrameError{Want: name, Msg: "empty payload"}
	}
	got := c.u8()
	if got == want {
		return nil
	}
	if got == msgError {
		return decodeErrorTail(c)
	}
	return &FrameError{Want: name, Got: got, Msg: fmt.Sprintf("unexpected message type %#x", got)}
}

// decodeErrorTail parses the remainder of an msgError payload (the
// type byte already consumed).
func decodeErrorTail(c *cursor) error {
	msg := string(c.bytes())
	if err := c.err("error"); err != nil {
		return err
	}
	if len(msg) > maxErrorMsg {
		msg = msg[:maxErrorMsg]
	}
	return &RemoteError{Msg: msg}
}

func decodeTagResp(payload []byte) (Tag, error) {
	c := &cursor{b: payload}
	if err := typeCheck(c, msgTagResp, "tag-resp"); err != nil {
		return Tag{}, err
	}
	t := c.tag()
	return t, c.err("tag-resp")
}

// decodeTaggedElem parses the shared {tag, vlen, elem} tail of
// put-data, elem-resp, and repair-put.
func decodeTaggedElem(c *cursor, name string) (Tag, []byte, int, error) {
	t := c.tag()
	vlen := c.u32()
	elem := c.bytes()
	if vlen > math.MaxInt32 {
		c.failed = true
	}
	return t, elem, int(vlen), c.err(name)
}

func decodePutData(payload []byte) (Tag, []byte, int, error) {
	c := &cursor{b: payload}
	if err := typeCheck(c, msgPutData, "put-data"); err != nil {
		return Tag{}, nil, 0, err
	}
	return decodeTaggedElem(c, "put-data")
}

func decodeGetData(payload []byte) (string, error) {
	c := &cursor{b: payload}
	if err := typeCheck(c, msgGetData, "get-data"); err != nil {
		return "", err
	}
	rid := string(c.bytes())
	return rid, c.err("get-data")
}

func decodeData(payload []byte) (Delivery, error) {
	c := &cursor{b: payload}
	if err := typeCheck(c, msgData, "data"); err != nil {
		return Delivery{}, err
	}
	var d Delivery
	d.Tag = c.tag()
	vlen := c.u32()
	if vlen > math.MaxInt32 {
		c.failed = true
	}
	d.VLen = int(vlen)
	d.Initial = c.u8() == 1
	d.Elem = c.bytes()
	return d, c.err("data")
}

func decodeElemResp(payload []byte) (Tag, []byte, int, error) {
	c := &cursor{b: payload}
	if err := typeCheck(c, msgElemResp, "elem-resp"); err != nil {
		return Tag{}, nil, 0, err
	}
	return decodeTaggedElem(c, "elem-resp")
}

func decodeRepairPut(payload []byte) (Tag, []byte, int, error) {
	c := &cursor{b: payload}
	if err := typeCheck(c, msgRepairPut, "repair-put"); err != nil {
		return Tag{}, nil, 0, err
	}
	return decodeTaggedElem(c, "repair-put")
}

func decodeAck(payload []byte) error {
	c := &cursor{b: payload}
	if err := typeCheck(c, msgAck, "ack"); err != nil {
		return err
	}
	return c.err("ack")
}

func decodeRepairResp(payload []byte) (bool, error) {
	c := &cursor{b: payload}
	if err := typeCheck(c, msgRepairResp, "repair-resp"); err != nil {
		return false, err
	}
	accepted := c.u8() == 1
	return accepted, c.err("repair-resp")
}
