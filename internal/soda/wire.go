package soda

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Length-prefixed binary framing. Every message is one frame:
//
//	uint32 big-endian payload length | payload
//
// and every payload starts with a fixed header:
//
//	byte type | uint64 request-id | uint64 epoch
//
// The epoch is the configuration epoch the sender believes the cluster
// is in (see config.go). A client stamps every request with its
// config's epoch; a server NACKs any request whose epoch does not
// match its own with msgEpochNack, so a quorum can never mix two
// geometries — each completed operation's response set comes from
// exactly one epoch. Responses carry the server's current epoch.
//
// The request id is chosen by the client and echoed verbatim on every
// response, so one long-lived connection can carry many concurrent
// exchanges: a demux pump on the client routes each response frame to
// the requester by (type, request-id), and a get-data stream keeps its
// request id for the lifetime of the relay (every msgData frame on the
// stream carries it). msgError echoes the offending request's id;
// request id 0 in an error frame means the error is connection-level
// (the peer could not even parse a header).
//
// Client→server messages address a named register with a uint16
// length-prefixed key (≤ maxKeyLen bytes). Integers are big-endian;
// byte strings carry a uint32 length, the writer id in a tag a uint16
// length. The format is deliberately tiny and has no versioning beyond
// the type byte; it is an internal cluster protocol, not a public API.

// Message types.
const (
	msgGetTag     byte = 1  // c->s: get-tag phase {key}
	msgTagResp    byte = 2  // s->c: the server's tag for the key
	msgPutData    byte = 3  // c->s: put-data phase {key, tag, vlen, elem}
	msgAck        byte = 4  // s->c: put-data acknowledged
	msgGetData    byte = 5  // c->s: register reader {key, readerID}; opens a relay stream
	msgData       byte = 6  // s->c: {tag, vlen, initial, elem}, repeated on the stream's id
	msgReaderDone byte = 7  // c->s: unregister the stream with this request id
	msgGetElem    byte = 8  // c->s: repair collection — fetch (tag, elem) {key}
	msgElemResp   byte = 9  // s->c: {tag, vlen, elem}
	msgRepairPut  byte = 10 // c->s: install a repaired element {key, tag, vlen, elem}
	msgRepairResp byte = 11 // s->c: {accepted}: tag >= current, installed
	msgError      byte = 12 // s->c: {message}: explicit protocol error for request id
	msgKeys       byte = 13 // c->s: enumerate the server's non-empty keys
	msgKeysResp   byte = 14 // s->c: {count, key...}

	msgEpochNack     byte = 15 // s->c: {want, sealed}: frame epoch rejected; header carries server's epoch
	msgReconfig      byte = 16 // c->s: coordinator op {op, epoch, n, k}: status/seal/activate
	msgReconfigResp  byte = 17 // s->c: {epoch, pending, sealed}: the server's epoch state
)

// maxFrame bounds a frame payload; a peer announcing more is treated
// as broken rather than allocated for.
const maxFrame = 16 << 20

// maxKeyLen bounds register keys on the wire; the uint16 length field
// allows more, but a key is a name, not a payload.
const maxKeyLen = 255

// maxKeys bounds a keys-resp enumeration a peer can make us allocate.
const maxKeys = 1 << 20

// headerLen is the fixed payload prefix: type byte + uint64 request id
// + uint64 epoch.
const headerLen = 1 + 8 + 8

var (
	// ErrFrame is returned for malformed or oversized frames.
	ErrFrame = errors.New("soda: malformed wire frame")

	// ErrStaleEpoch is the sentinel every epoch rejection matches: the
	// frame's configuration epoch and the server's did not agree (or
	// the server is sealed for a flip). Clients react by refetching the
	// current Config and retrying the whole operation under it.
	ErrStaleEpoch = errors.New("soda: stale configuration epoch")
)

// StaleEpochError is a server's typed epoch NACK. ServerEpoch is the
// epoch the server is in; Want is the smallest epoch the client should
// present (the pending epoch while the server is sealed mid-flip);
// Sealed reports that a reconfiguration is in progress. It matches
// errors.Is(err, ErrStaleEpoch).
type StaleEpochError struct {
	Server      int    // server shard index, -1 when unknown
	ServerEpoch uint64 // epoch the server is serving (or sealed at)
	Want        uint64 // epoch the client should retry with
	Sealed      bool   // a flip to Want is in progress
}

func (e *StaleEpochError) Error() string {
	state := "active"
	if e.Sealed {
		state = "sealed"
	}
	return fmt.Sprintf("soda: stale configuration epoch: server %d at epoch %d (%s), want %d",
		e.Server, e.ServerEpoch, state, e.Want)
}

func (e *StaleEpochError) Is(target error) bool { return target == ErrStaleEpoch }

// EpochStatus is a server's configuration-epoch state as reported on
// the wire: the active epoch and its [N,K] geometry, and — while
// sealed for a two-phase flip — the pending epoch being migrated to.
type EpochStatus struct {
	Epoch   uint64
	Pending uint64
	Sealed  bool
	N, K    int
}

// ReconfigOp selects what a msgReconfig frame asks a server to do.
type ReconfigOp byte

const (
	ReconfigStatus   ReconfigOp = 0 // report epoch state, change nothing
	ReconfigSeal     ReconfigOp = 1 // seal the current epoch, pending the target
	ReconfigActivate ReconfigOp = 2 // activate the target epoch (requires a matching seal)
)

// FrameError is the typed form of a decode failure: which message was
// being decoded and what went wrong (truncated payload, trailing
// bytes, wrong type byte). It matches errors.Is(err, ErrFrame), so
// existing callers keep working while version-skew diagnostics become
// legible.
type FrameError struct {
	Want string // message the decoder expected
	Got  byte   // type byte actually seen (0 when the payload was empty)
	Msg  string // what went wrong
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("soda: malformed wire frame: decoding %s: %s", e.Want, e.Msg)
}

func (e *FrameError) Is(target error) bool { return target == ErrFrame }

// RemoteError is a peer's explicit msgError frame: the server telling
// a (possibly version-skewed) client what it objected to, instead of
// silently dropping the connection.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "soda: server error: " + e.Msg }

// validateKey rejects keys the wire format cannot carry. Empty keys
// are refused too: "no key" is indistinguishable from a decoding bug.
func validateKey(key string) error {
	if key == "" {
		return fmt.Errorf("%w: empty key", ErrFrame)
	}
	if len(key) > maxKeyLen {
		return fmt.Errorf("%w: %d byte key exceeds %d", ErrFrame, len(key), maxKeyLen)
	}
	return nil
}

// framePool recycles payload buffers for the hot encode paths. Buffers
// are handed to writeFrame and returned to the pool by the sender;
// oversized ones (a huge value passed through once) are dropped rather
// than pinned.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

const maxPooledFrame = 64 << 10

func getFrame() *[]byte {
	bp := framePool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

func putFrame(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	framePool.Put(bp)
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: %d byte frame exceeds %d", ErrFrame, len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf when it has the capacity.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrFrame, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// peekHeader reads the fixed header without consuming anything: the
// demux pump routes a frame by (type, request-id) before the full
// decoder runs.
func peekHeader(payload []byte) (typ byte, req uint64, ok bool) {
	if len(payload) < headerLen {
		return 0, 0, false
	}
	return payload[0], binary.BigEndian.Uint64(payload[1:9]), true
}

// Append-style encoders. Each appends a complete payload (header
// included) to b and returns the extended slice, so hot paths encode
// into pooled buffers.

func appendHeader(b []byte, typ byte, req, epoch uint64) []byte {
	b = append(b, typ)
	b = binary.BigEndian.AppendUint64(b, req)
	return binary.BigEndian.AppendUint64(b, epoch)
}

func appendTag(b []byte, t Tag) []byte {
	// Writer ids are bounded at the constructors (maxWriterID) and by
	// the uint16 length on ingest, so truncation here would indicate a
	// forged tag: clamp it to the empty writer rather than emit a
	// frame whose length field lies about the bytes that follow.
	w := t.Writer
	if len(w) > 0xFFFF {
		w = ""
	}
	b = binary.BigEndian.AppendUint64(b, t.TS)
	b = binary.BigEndian.AppendUint16(b, uint16(len(w)))
	return append(b, w...)
}

func appendKey(b []byte, key string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(key)))
	return append(b, key...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func appendGetTag(b []byte, req, epoch uint64, key string) []byte {
	return appendKey(appendHeader(b, msgGetTag, req, epoch), key)
}

func appendTagResp(b []byte, req, epoch uint64, t Tag) []byte {
	return appendTag(appendHeader(b, msgTagResp, req, epoch), t)
}

func appendPutData(b []byte, req, epoch uint64, key string, t Tag, elem []byte, vlen int) []byte {
	b = appendKey(appendHeader(b, msgPutData, req, epoch), key)
	b = appendTag(b, t)
	b = binary.BigEndian.AppendUint32(b, uint32(vlen))
	return appendBytes(b, elem)
}

func appendAck(b []byte, req, epoch uint64) []byte { return appendHeader(b, msgAck, req, epoch) }

func appendGetData(b []byte, req, epoch uint64, key, readerID string) []byte {
	b = appendKey(appendHeader(b, msgGetData, req, epoch), key)
	return appendBytes(b, []byte(readerID))
}

// appendData stamps the delivery's own epoch into the header: a relay
// element belongs to the configuration the server held it under.
func appendData(b []byte, req uint64, d Delivery) []byte {
	b = appendTag(appendHeader(b, msgData, req, d.Epoch), d.Tag)
	b = binary.BigEndian.AppendUint32(b, uint32(d.VLen))
	var initial byte
	if d.Initial {
		initial = 1
	}
	b = append(b, initial)
	return appendBytes(b, d.Elem)
}

func appendReaderDone(b []byte, req, epoch uint64) []byte {
	return appendHeader(b, msgReaderDone, req, epoch)
}

func appendGetElem(b []byte, req, epoch uint64, key string) []byte {
	return appendKey(appendHeader(b, msgGetElem, req, epoch), key)
}

func appendElemResp(b []byte, req, epoch uint64, t Tag, elem []byte, vlen int) []byte {
	b = appendTag(appendHeader(b, msgElemResp, req, epoch), t)
	b = binary.BigEndian.AppendUint32(b, uint32(vlen))
	return appendBytes(b, elem)
}

func appendRepairPut(b []byte, req, epoch uint64, key string, t Tag, elem []byte, vlen int) []byte {
	b = appendKey(appendHeader(b, msgRepairPut, req, epoch), key)
	b = appendTag(b, t)
	b = binary.BigEndian.AppendUint32(b, uint32(vlen))
	return appendBytes(b, elem)
}

func appendRepairResp(b []byte, req, epoch uint64, accepted bool) []byte {
	var a byte
	if accepted {
		a = 1
	}
	return append(appendHeader(b, msgRepairResp, req, epoch), a)
}

func appendKeysReq(b []byte, req, epoch uint64) []byte { return appendHeader(b, msgKeys, req, epoch) }

func appendKeysResp(b []byte, req, epoch uint64, keys []string) []byte {
	b = appendHeader(b, msgKeysResp, req, epoch)
	b = binary.BigEndian.AppendUint32(b, uint32(len(keys)))
	for _, k := range keys {
		b = appendKey(b, k)
	}
	return b
}

// appendEpochNack encodes a server's epoch rejection: the header epoch
// is the server's active epoch, the body the epoch the client should
// retry with and whether a flip is in progress.
func appendEpochNack(b []byte, req uint64, st EpochStatus, want uint64) []byte {
	b = appendHeader(b, msgEpochNack, req, st.Epoch)
	b = binary.BigEndian.AppendUint64(b, want)
	var sealed byte
	if st.Sealed {
		sealed = 1
	}
	return append(b, sealed)
}

func appendReconfig(b []byte, req uint64, op ReconfigOp, epoch uint64, n, k int) []byte {
	b = appendHeader(b, msgReconfig, req, epochNone)
	b = append(b, byte(op))
	b = binary.BigEndian.AppendUint64(b, epoch)
	b = binary.BigEndian.AppendUint16(b, uint16(n))
	return binary.BigEndian.AppendUint16(b, uint16(k))
}

func appendReconfigResp(b []byte, req uint64, st EpochStatus) []byte {
	b = appendHeader(b, msgReconfigResp, req, st.Epoch)
	b = binary.BigEndian.AppendUint64(b, st.Epoch)
	b = binary.BigEndian.AppendUint64(b, st.Pending)
	var sealed byte
	if st.Sealed {
		sealed = 1
	}
	b = append(b, sealed)
	b = binary.BigEndian.AppendUint16(b, uint16(st.N))
	return binary.BigEndian.AppendUint16(b, uint16(st.K))
}

// maxErrorMsg caps the error-frame text a peer can make us relay or
// store.
const maxErrorMsg = 512

func appendError(b []byte, req uint64, msg string) []byte {
	if len(msg) > maxErrorMsg {
		msg = msg[:maxErrorMsg]
	}
	return appendBytes(appendHeader(b, msgError, req, epochNone), []byte(msg))
}

// cursor is a bounds-checked payload parser: every getter records an
// overrun instead of panicking, and err() reports it once at the end.
type cursor struct {
	b      []byte
	failed bool
}

func (c *cursor) take(n int) []byte {
	if c.failed || len(c.b) < n {
		c.failed = true
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) u8() byte {
	p := c.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (c *cursor) u16() uint16 {
	p := c.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

func (c *cursor) u32() uint32 {
	p := c.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (c *cursor) u64() uint64 {
	p := c.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (c *cursor) tag() Tag {
	ts := c.u64()
	return Tag{TS: ts, Writer: string(c.take(int(c.u16())))}
}

// key parses a uint16 length-prefixed register key, enforcing the wire
// bound so an adversarial length cannot smuggle a payload-sized name.
func (c *cursor) key() string {
	n := c.u16()
	if n == 0 || n > maxKeyLen {
		c.failed = true
		return ""
	}
	return string(c.take(int(n)))
}

// bytes returns a copy of a length-prefixed byte string, so decoded
// messages never alias a transport read buffer.
func (c *cursor) bytes() []byte {
	n := c.u32()
	p := c.take(int(n))
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// err reports a typed decode failure for the named message: truncated
// payload (an overrun getter) or trailing bytes both mean the peer and
// we disagree about the message's shape.
func (c *cursor) err(want string) error {
	if c.failed {
		return &FrameError{Want: want, Msg: "truncated payload"}
	}
	if len(c.b) != 0 {
		return &FrameError{Want: want, Msg: fmt.Sprintf("%d trailing bytes", len(c.b))}
	}
	return nil
}

// Decoders. Each checks the type byte itself so dispatch sites stay
// honest about what they expect, and each surfaces a peer's explicit
// msgError frame as a *RemoteError — a version-skewed peer degrades
// into a legible error instead of a desynced stream. Every decoder
// returns the request id from the header so unary callers can detect a
// response routed to the wrong exchange.

// header begins decoding: it consumes the type byte, request id, and
// epoch, intercepting error and epoch-nack frames and reporting
// unexpected types as typed errors.
func header(c *cursor, want byte, name string) (uint64, uint64, error) {
	if len(c.b) == 0 {
		return 0, 0, &FrameError{Want: name, Msg: "empty payload"}
	}
	got := c.u8()
	req := c.u64()
	epoch := c.u64()
	if c.failed {
		return 0, 0, &FrameError{Want: name, Got: got, Msg: "truncated header"}
	}
	if got == want {
		return req, epoch, nil
	}
	if got == msgError {
		return req, epoch, decodeErrorTail(c)
	}
	if got == msgEpochNack {
		return req, epoch, decodeEpochNackTail(c, epoch)
	}
	return req, epoch, &FrameError{Want: name, Got: got, Msg: fmt.Sprintf("unexpected message type %#x", got)}
}

// decodeEpochNackTail parses the remainder of an msgEpochNack payload
// (the header already consumed; serverEpoch came from it) into the
// typed rejection every client path surfaces.
func decodeEpochNackTail(c *cursor, serverEpoch uint64) error {
	want := c.u64()
	sealed := c.u8() == 1
	if err := c.err("epoch-nack"); err != nil {
		return err
	}
	return &StaleEpochError{Server: -1, ServerEpoch: serverEpoch, Want: want, Sealed: sealed}
}

// decodeErrorTail parses the remainder of an msgError payload (the
// header already consumed).
func decodeErrorTail(c *cursor) error {
	msg := string(c.bytes())
	if err := c.err("error"); err != nil {
		return err
	}
	if len(msg) > maxErrorMsg {
		msg = msg[:maxErrorMsg]
	}
	return &RemoteError{Msg: msg}
}

// decodeError parses an msgError payload, returning the echoed
// request id and the *RemoteError (or a FrameError when the frame is
// not actually an error frame).
func decodeError(payload []byte) (uint64, error) {
	c := &cursor{b: payload}
	if len(c.b) == 0 {
		return 0, &FrameError{Want: "error", Msg: "empty payload"}
	}
	got := c.u8()
	req := c.u64()
	epoch := c.u64()
	if c.failed {
		return 0, &FrameError{Want: "error", Got: got, Msg: "truncated header"}
	}
	switch got {
	case msgError:
		return req, decodeErrorTail(c)
	case msgEpochNack:
		return req, decodeEpochNackTail(c, epoch)
	}
	return req, &FrameError{Want: "error", Got: got, Msg: fmt.Sprintf("unexpected message type %#x", got)}
}

func decodeGetTag(payload []byte) (uint64, uint64, string, error) {
	c := &cursor{b: payload}
	req, epoch, err := header(c, msgGetTag, "get-tag")
	if err != nil {
		return req, epoch, "", err
	}
	key := c.key()
	return req, epoch, key, c.err("get-tag")
}

func decodeTagResp(payload []byte) (uint64, Tag, error) {
	c := &cursor{b: payload}
	req, _, err := header(c, msgTagResp, "tag-resp")
	if err != nil {
		return req, Tag{}, err
	}
	t := c.tag()
	return req, t, c.err("tag-resp")
}

// decodeTaggedElem parses the shared {tag, vlen, elem} tail of
// put-data, elem-resp, and repair-put.
func decodeTaggedElem(c *cursor, name string) (Tag, []byte, int, error) {
	t := c.tag()
	vlen := c.u32()
	elem := c.bytes()
	if vlen > math.MaxInt32 {
		c.failed = true
	}
	return t, elem, int(vlen), c.err(name)
}

func decodePutData(payload []byte) (uint64, uint64, string, Tag, []byte, int, error) {
	c := &cursor{b: payload}
	req, epoch, err := header(c, msgPutData, "put-data")
	if err != nil {
		return req, epoch, "", Tag{}, nil, 0, err
	}
	key := c.key()
	t, elem, vlen, err := decodeTaggedElem(c, "put-data")
	return req, epoch, key, t, elem, vlen, err
}

func decodeGetData(payload []byte) (uint64, uint64, string, string, error) {
	c := &cursor{b: payload}
	req, epoch, err := header(c, msgGetData, "get-data")
	if err != nil {
		return req, epoch, "", "", err
	}
	key := c.key()
	rid := string(c.bytes())
	return req, epoch, key, rid, c.err("get-data")
}

func decodeData(payload []byte) (uint64, Delivery, error) {
	c := &cursor{b: payload}
	req, epoch, err := header(c, msgData, "data")
	if err != nil {
		return req, Delivery{}, err
	}
	var d Delivery
	d.Epoch = epoch
	d.Tag = c.tag()
	vlen := c.u32()
	if vlen > math.MaxInt32 {
		c.failed = true
	}
	d.VLen = int(vlen)
	d.Initial = c.u8() == 1
	d.Elem = c.bytes()
	return req, d, c.err("data")
}

func decodeReaderDone(payload []byte) (uint64, error) {
	c := &cursor{b: payload}
	req, _, err := header(c, msgReaderDone, "reader-done")
	if err != nil {
		return req, err
	}
	return req, c.err("reader-done")
}

func decodeGetElem(payload []byte) (uint64, uint64, string, error) {
	c := &cursor{b: payload}
	req, epoch, err := header(c, msgGetElem, "get-elem")
	if err != nil {
		return req, epoch, "", err
	}
	key := c.key()
	return req, epoch, key, c.err("get-elem")
}

func decodeElemResp(payload []byte) (uint64, Tag, []byte, int, error) {
	c := &cursor{b: payload}
	req, _, err := header(c, msgElemResp, "elem-resp")
	if err != nil {
		return req, Tag{}, nil, 0, err
	}
	t, elem, vlen, err := decodeTaggedElem(c, "elem-resp")
	return req, t, elem, vlen, err
}

func decodeRepairPut(payload []byte) (uint64, uint64, string, Tag, []byte, int, error) {
	c := &cursor{b: payload}
	req, epoch, err := header(c, msgRepairPut, "repair-put")
	if err != nil {
		return req, epoch, "", Tag{}, nil, 0, err
	}
	key := c.key()
	t, elem, vlen, err := decodeTaggedElem(c, "repair-put")
	return req, epoch, key, t, elem, vlen, err
}

func decodeAck(payload []byte) (uint64, error) {
	c := &cursor{b: payload}
	req, _, err := header(c, msgAck, "ack")
	if err != nil {
		return req, err
	}
	return req, c.err("ack")
}

func decodeRepairResp(payload []byte) (uint64, bool, error) {
	c := &cursor{b: payload}
	req, _, err := header(c, msgRepairResp, "repair-resp")
	if err != nil {
		return req, false, err
	}
	accepted := c.u8() == 1
	return req, accepted, c.err("repair-resp")
}

func decodeKeysReq(payload []byte) (uint64, uint64, error) {
	c := &cursor{b: payload}
	req, epoch, err := header(c, msgKeys, "keys")
	if err != nil {
		return req, epoch, err
	}
	return req, epoch, c.err("keys")
}

func decodeKeysResp(payload []byte) (uint64, []string, error) {
	c := &cursor{b: payload}
	req, _, err := header(c, msgKeysResp, "keys-resp")
	if err != nil {
		return req, nil, err
	}
	n := c.u32()
	if n > maxKeys {
		c.failed = true
	}
	var keys []string
	if !c.failed && n > 0 {
		keys = make([]string, 0, min(int(n), 1024))
		for i := uint32(0); i < n && !c.failed; i++ {
			keys = append(keys, c.key())
		}
	}
	if err := c.err("keys-resp"); err != nil {
		return req, nil, err
	}
	return req, keys, nil
}

// decodeEpochNack parses a standalone msgEpochNack frame (the demux
// pump routes one to a stream it must tear down).
func decodeEpochNack(payload []byte) (uint64, error) {
	c := &cursor{b: payload}
	if len(c.b) == 0 {
		return 0, &FrameError{Want: "epoch-nack", Msg: "empty payload"}
	}
	got := c.u8()
	req := c.u64()
	epoch := c.u64()
	if c.failed {
		return 0, &FrameError{Want: "epoch-nack", Got: got, Msg: "truncated header"}
	}
	if got != msgEpochNack {
		return req, &FrameError{Want: "epoch-nack", Got: got, Msg: fmt.Sprintf("unexpected message type %#x", got)}
	}
	return req, decodeEpochNackTail(c, epoch)
}

func decodeReconfig(payload []byte) (uint64, ReconfigOp, uint64, int, int, error) {
	c := &cursor{b: payload}
	req, _, err := header(c, msgReconfig, "reconfig")
	if err != nil {
		return req, 0, 0, 0, 0, err
	}
	op := ReconfigOp(c.u8())
	epoch := c.u64()
	n := int(c.u16())
	k := int(c.u16())
	return req, op, epoch, n, k, c.err("reconfig")
}

func decodeReconfigResp(payload []byte) (uint64, EpochStatus, error) {
	c := &cursor{b: payload}
	req, _, err := header(c, msgReconfigResp, "reconfig-resp")
	if err != nil {
		return req, EpochStatus{}, err
	}
	var st EpochStatus
	st.Epoch = c.u64()
	st.Pending = c.u64()
	st.Sealed = c.u8() == 1
	st.N = int(c.u16())
	st.K = int(c.u16())
	return req, st, c.err("reconfig-resp")
}
