package soda

import (
	"errors"
	"testing"
)

// These tests pin the errors.Is contract of the exported sentinels
// through the real paths that produce them. Callers dispatch on
// errors.Is (the quarantine, retry, and epoch re-park paths), so the
// property that must never break is Is-matchability of the wrapped
// chains the production code actually builds — not string equality.
// The errwrap lint rule requires a test like this for every exported
// sentinel.

func TestErrEmptyValueIsTarget(t *testing.T) {
	codec, lb := newCluster(t, 5, 3)
	if _, err := codec.EncodeValue(nil); !errors.Is(err, ErrEmptyValue) {
		t.Fatalf("EncodeValue(nil): err = %v, want errors.Is ErrEmptyValue", err)
	}
	w := mustWriter(t, "w1", codec, lb.Conns())
	if _, err := w.Write(testCtx(t), testKey, nil); !errors.Is(err, ErrEmptyValue) {
		t.Fatalf("Write(empty): err = %v, want errors.Is ErrEmptyValue", err)
	}
}

func TestErrConfigIsTarget(t *testing.T) {
	codec, lb := newCluster(t, 5, 3)
	// Empty writer id: rejected before anything touches the cluster.
	if _, err := NewWriter("", codec, lb.Conns()); !errors.Is(err, ErrConfig) {
		t.Fatalf("NewWriter(empty id): err = %v, want errors.Is ErrConfig", err)
	}
	// Conn set that cannot cover the code: n=5 codec over 3 conns.
	if _, err := NewWriter("w1", codec, lb.Conns()[:3]); !errors.Is(err, ErrConfig) {
		t.Fatalf("NewWriter(3 conns, n=5): err = %v, want errors.Is ErrConfig", err)
	}
	// Fault budget that destroys the quorum: n-f < k.
	if _, err := NewWriter("w1", codec, lb.Conns(), WithWriterFaults(3)); !errors.Is(err, ErrConfig) {
		t.Fatalf("NewWriter(f=3, n=5, k=3): err = %v, want errors.Is ErrConfig", err)
	}
}

func TestErrRepairQuorumIsTarget(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	m := NewMembership(5)
	w := mustWriter(t, "w1", codec, lb.Conns())
	if _, err := w.Write(ctx, testKey, []byte("needs k=3 donors to repair")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	rp := mustRepairer(t, codec, lb.Conns(), m)
	m.MarkSuspect(2, errors.New("operator hunch"))
	// Crash donors until fewer than k live servers can answer the
	// collect: no version can reach k matching elements.
	lb.Crash(0)
	lb.Crash(1)
	lb.Crash(3)
	if _, err := rp.RepairOnce(ctx, 2); !errors.Is(err, ErrRepairQuorum) {
		t.Fatalf("RepairOnce with 1 live donor: err = %v, want errors.Is ErrRepairQuorum", err)
	}
}
