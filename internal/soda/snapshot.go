package soda

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshots checkpoint the whole (key, tag, elem, vlen) namespace so
// the WAL can be truncated. The file format mirrors the wire encoding:
//
//	8-byte magic "SODASNP1"
//	uint64 covered-lsn | uint32 entry count
//	count × { key | tag | uint32 vlen | elem }
//	uint32 CRC32-IEEE over everything after the magic
//
// A snapshot is written to a temp file, fsynced, and renamed into
// place, so recovery only ever sees a complete old snapshot or a
// complete new one. The covered lsn is the rotation point: replay
// skips WAL records at or below it (their effects are in the
// snapshot) and applies everything after.

const (
	snapshotName = "snapshot.soda"
	snapshotTmp  = "snapshot.tmp"
)

var snapshotMagic = []byte("SODASNP1")

// snapEntry is one register's durable state.
type snapEntry struct {
	key  string
	tag  Tag
	elem []byte
	vlen int
}

// writeSnapshot atomically replaces dir's snapshot with one covering
// WAL records up to and including lsn covered.
func writeSnapshot(dir string, covered uint64, entries []snapEntry) (err error) {
	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			f.Close()
		}
		if err != nil {
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	h := crc32.NewIEEE()
	w := io.MultiWriter(bw, h) // the magic stays outside the sum
	if _, err = bw.Write(snapshotMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], covered)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(entries)))
	if _, err = w.Write(hdr[:]); err != nil {
		return err
	}
	var scratch []byte
	for _, e := range entries {
		scratch = appendKey(scratch[:0], e.key)
		scratch = appendTag(scratch, e.tag)
		scratch = binary.BigEndian.AppendUint32(scratch, uint32(e.vlen))
		scratch = appendBytes(scratch, e.elem)
		if _, err = w.Write(scratch); err != nil {
			return err
		}
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], h.Sum32())
	if _, err = bw.Write(sum[:]); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	err = f.Close()
	f = nil
	if err != nil {
		return err
	}
	if err = os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// readSnapshot loads dir's snapshot. A missing file is not an error —
// it returns (0, nil, nil), the "replay the whole log" case. A present
// but corrupt snapshot is fatal: it was written atomically, so damage
// means the disk lies and silently serving a partial namespace would
// break the tag floor.
func readSnapshot(dir string) (uint64, []snapEntry, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	if len(data) < len(snapshotMagic)+16 || !bytes.Equal(data[:len(snapshotMagic)], snapshotMagic) {
		return 0, nil, errors.New("soda: snapshot: bad magic or truncated")
	}
	body := data[len(snapshotMagic) : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[len(data)-4:]) {
		return 0, nil, errors.New("soda: snapshot: checksum mismatch")
	}
	c := &cursor{b: body}
	covered := c.u64()
	count := c.u32()
	entries := make([]snapEntry, 0, min(int(count), 1024))
	for i := uint32(0); i < count && !c.failed; i++ {
		var e snapEntry
		e.key = c.key()
		e.tag = c.tag()
		e.vlen = int(c.u32())
		e.elem = c.bytes()
		entries = append(entries, e)
	}
	if err := c.err("snapshot"); err != nil {
		return 0, nil, fmt.Errorf("soda: snapshot: %w", err)
	}
	return covered, entries, nil
}

// syncDir best-effort fsyncs a directory so a rename is durable;
// filesystems that refuse directory syncs lose nothing but the
// guarantee they never offered.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
