package soda

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshots checkpoint the whole (key, tag, elem, vlen) namespace so
// the WAL can be truncated. The file format mirrors the wire encoding:
//
//	8-byte magic "SODASNP2"
//	uint64 covered-lsn
//	epoch state: uint64 epoch | uint64 pending | byte sealed
//	             | uint16 n | uint16 k | uint16 pn | uint16 pk
//	uint32 entry count
//	count × { key | tag | uint32 vlen | elem }
//	uint32 CRC32-IEEE over everything after the magic
//
// The epoch state rides in the snapshot because truncation deletes the
// WAL segments holding the epoch records it covers; without it, a node
// could recover its data but forget which configuration it belongs to.
//
// A snapshot is written to a temp file, fsynced, and renamed into
// place, so recovery only ever sees a complete old snapshot or a
// complete new one. The covered lsn is the rotation point: replay
// skips WAL records at or below it (their effects are in the
// snapshot) and applies everything after.

const (
	snapshotName = "snapshot.soda"
	snapshotTmp  = "snapshot.tmp"
)

var snapshotMagic = []byte("SODASNP2")

// snapEntry is one register's durable state.
type snapEntry struct {
	key  string
	tag  Tag
	elem []byte
	vlen int
}

// writeSnapshot atomically replaces dir's snapshot with one covering
// WAL records up to and including lsn covered.
func writeSnapshot(dir string, covered uint64, est epochState, entries []snapEntry) (err error) {
	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			f.Close()
		}
		if err != nil {
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	h := crc32.NewIEEE()
	w := io.MultiWriter(bw, h) // the magic stays outside the sum
	if _, err = bw.Write(snapshotMagic); err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.BigEndian.AppendUint64(hdr, covered)
	hdr = binary.BigEndian.AppendUint64(hdr, est.epoch)
	hdr = binary.BigEndian.AppendUint64(hdr, est.pending)
	var sealed byte
	if est.sealed {
		sealed = 1
	}
	hdr = append(hdr, sealed)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(est.n))
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(est.k))
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(est.pn))
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(est.pk))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(entries)))
	if _, err = w.Write(hdr); err != nil {
		return err
	}
	var scratch []byte
	for _, e := range entries {
		scratch = appendKey(scratch[:0], e.key)
		scratch = appendTag(scratch, e.tag)
		scratch = binary.BigEndian.AppendUint32(scratch, uint32(e.vlen))
		scratch = appendBytes(scratch, e.elem)
		if _, err = w.Write(scratch); err != nil {
			return err
		}
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], h.Sum32())
	if _, err = bw.Write(sum[:]); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	err = f.Close()
	f = nil
	if err != nil {
		return err
	}
	if err = os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// readSnapshot loads dir's snapshot. A missing file is not an error —
// it returns the zero "replay the whole log" case. A present but
// corrupt snapshot is fatal: it was written atomically, so damage
// means the disk lies and silently serving a partial namespace would
// break the tag floor.
func readSnapshot(dir string) (uint64, epochState, []snapEntry, error) {
	var est epochState
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, est, nil, nil
	}
	if err != nil {
		return 0, est, nil, err
	}
	if len(data) < len(snapshotMagic)+16 || !bytes.Equal(data[:len(snapshotMagic)], snapshotMagic) {
		return 0, est, nil, errors.New("soda: snapshot: bad magic or truncated")
	}
	body := data[len(snapshotMagic) : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[len(data)-4:]) {
		return 0, est, nil, errors.New("soda: snapshot: checksum mismatch")
	}
	c := &cursor{b: body}
	covered := c.u64()
	est.epoch = c.u64()
	est.pending = c.u64()
	est.sealed = c.u8() == 1
	est.n = int(c.u16())
	est.k = int(c.u16())
	est.pn = int(c.u16())
	est.pk = int(c.u16())
	count := c.u32()
	entries := make([]snapEntry, 0, min(int(count), 1024))
	for i := uint32(0); i < count && !c.failed; i++ {
		var e snapEntry
		e.key = c.key()
		e.tag = c.tag()
		e.vlen = int(c.u32())
		e.elem = c.bytes()
		entries = append(entries, e)
	}
	if err := c.err("snapshot"); err != nil {
		return 0, est, nil, fmt.Errorf("soda: snapshot: %w", err)
	}
	return covered, est, entries, nil
}

// syncDir best-effort fsyncs a directory so a rename is durable;
// filesystems that refuse directory syncs lose nothing but the
// guarantee they never offered.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
