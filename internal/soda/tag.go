package soda

import "fmt"

// Tag is SODA's version identifier: a logical timestamp paired with
// the id of the writer that minted it. Tags are totally ordered — by
// timestamp, then writer id — so concurrent writers that pick the
// same timestamp are still deterministically ordered, which is what
// lets every server keep only the single highest-tagged coded
// element.
type Tag struct {
	TS     uint64
	Writer string
}

// Compare returns -1, 0, or 1 as t sorts before, equal to, or after o
// in the (timestamp, writer) lexicographic order.
func (t Tag) Compare(o Tag) int {
	switch {
	case t.TS < o.TS:
		return -1
	case t.TS > o.TS:
		return 1
	case t.Writer < o.Writer:
		return -1
	case t.Writer > o.Writer:
		return 1
	}
	return 0
}

// Less reports whether t sorts strictly before o.
func (t Tag) Less(o Tag) bool { return t.Compare(o) < 0 }

// IsZero reports whether t is the initial tag of a never-written
// register.
func (t Tag) IsZero() bool { return t.TS == 0 && t.Writer == "" }

// Next returns the tag a writer mints after observing t as the
// highest tag in its get-tag quorum: the next timestamp, owned by the
// writer. Next(w) is strictly greater than t and than any tag
// (t.TS, *).
func (t Tag) Next(writer string) Tag { return Tag{TS: t.TS + 1, Writer: writer} }

// String renders the tag as (ts, writer).
func (t Tag) String() string {
	if t.IsZero() {
		return "(0,·)"
	}
	return fmt.Sprintf("(%d,%s)", t.TS, t.Writer)
}
