package soda

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// WAL stress coverage: the group-commit benchmark pair (the
// before/after for coalesced FsyncAlways appends) and the disk-full
// degraded-mode soak for the WithWALFailAfter fault hook.

// benchDurablePuts drives PutData at a single FsyncAlways durable
// server. Serial, every append pays its own fsync and group commit
// never fires; parallel, concurrent appends queue behind one leader's
// fsync and the coalesced syncs show up both in ns/op and in the
// groupsyncs/op metric. Run both to see the before/after:
//
//	go test ./internal/soda -bench DurablePut -run XXX
func benchDurablePuts(b *testing.B, parallel bool) {
	s, err := NewDurableServer(0, b.TempDir(), WithSnapshotThreshold(1<<30))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	elem := make([]byte, 256)
	for i := range elem {
		elem[i] = byte(i)
	}
	var ts atomic.Uint64
	b.SetBytes(int64(len(elem)))
	b.ResetTimer()
	if parallel {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.PutData("bench/key", Tag{TS: ts.Add(1), Writer: "b"}, elem, len(elem))
			}
		})
	} else {
		for i := 0; i < b.N; i++ {
			s.PutData("bench/key", Tag{TS: ts.Add(1), Writer: "b"}, elem, len(elem))
		}
	}
	b.StopTimer()
	snap := s.MetricsSnapshot()
	if snap.WALFailures != 0 {
		b.Fatalf("WALFailures = %d during benchmark", snap.WALFailures)
	}
	b.ReportMetric(float64(snap.WALGroupSyncs)/float64(b.N), "groupsyncs/op")
}

func BenchmarkDurablePutSerial(b *testing.B)   { benchDurablePuts(b, false) }
func BenchmarkDurablePutParallel(b *testing.B) { benchDurablePuts(b, true) }

// TestWALGroupCommitCoalesces pins the group-commit behavior the
// benchmark measures: serial FsyncAlways appends each pay their own
// fsync and coalesce nothing, while appenders queued behind a running
// sync are covered by the leader's fsync and skip their own. The
// concurrent half is made deterministic by holding syncMu — the
// group-commit leader lock — while the waiters append their records,
// so releasing it lets exactly one leader sync for all of them.
func TestWALGroupCommitCoalesces(t *testing.T) {
	s, err := NewDurableServer(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	elem := []byte{1, 2, 3, 4}

	const serial = 5
	var ts atomic.Uint64
	for i := 0; i < serial; i++ {
		s.PutData(fmt.Sprintf("gc/s%d", i), Tag{TS: ts.Add(1), Writer: "w"}, elem, len(elem))
	}
	if got := s.MetricsSnapshot().WALGroupSyncs; got != 0 {
		t.Fatalf("serial appends coalesced %d syncs, want 0", got)
	}
	w := s.dur.wal
	w.mu.Lock()
	base := w.size
	w.mu.Unlock()
	recLen := base / serial // equal key/tag/elem sizes, fixed-width fields

	// Park the leader lock; the waiters write their records (appends
	// only need w.mu) and stack up in syncTo behind it.
	w.syncMu.Lock()
	const waiters = 4
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.PutData(fmt.Sprintf("gc/p%d", i), Tag{TS: ts.Add(1), Writer: "w"}, elem, len(elem))
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		w.mu.Lock()
		size := w.size
		w.mu.Unlock()
		if size >= base+int64(waiters)*recLen {
			break
		}
		if time.Now().After(deadline) {
			w.syncMu.Unlock()
			t.Fatalf("waiters' records never landed (size %d, want %d)", size, base+int64(waiters)*recLen)
		}
		//lint:ignore lockhold this test IS the group-commit determinism check: it parks the leader lock on purpose to stack waiters behind one fsync
		time.Sleep(time.Millisecond)
	}
	w.syncMu.Unlock()
	wg.Wait()

	snap := s.MetricsSnapshot()
	// One waiter becomes the leader and fsyncs for everyone already on
	// the file; the other waiters find their bytes covered and skip.
	if snap.WALGroupSyncs < waiters-1 {
		t.Fatalf("WALGroupSyncs = %d, want >= %d", snap.WALGroupSyncs, waiters-1)
	}
	if snap.WALFailures != 0 {
		t.Fatalf("WALFailures = %d", snap.WALFailures)
	}
}

// TestWALDiskFullDegradedRejoin is the IO-error soak: every node's WAL
// is rigged to fail (and latch) once its active segment passes 4 KiB.
// The cluster must degrade to memory-only durability and keep serving
// — the operator signal is the WALFailures counter, not a wedged
// quorum. A degraded node that then power-cuts comes back missing its
// unlogged tail, and rejoins through the ordinary quarantine → donor
// repair path, not its own (truncated) log.
func TestWALDiskFullDegradedRejoin(t *testing.T) {
	ctx := testCtx(t)
	codec, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewDurableLoopback(5, t.TempDir(), WithWALFailAfter(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lb.CloseServers() })
	m := NewMembership(5)
	w := mustWriter(t, "w1", codec, lb.Conns(), WithWriterMembership(m))

	// Fill every node's WAL past the injected limit. Elements are
	// value/k sized, so 1 KiB values push each 4 KiB segment over
	// within a few writes; bound the loop so a broken injection fails
	// loudly instead of spinning.
	value := bytes.Repeat([]byte{0xAB}, 1024)
	allDegraded := func() bool {
		for i := 0; i < 5; i++ {
			if lb.Server(i).MetricsSnapshot().WALFailures == 0 {
				return false
			}
		}
		return true
	}
	for i := 0; i < 200 && !allDegraded(); i++ {
		if _, err := w.Write(ctx, fmt.Sprintf("full/%03d", i%8), value); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	if !allDegraded() {
		t.Fatal("200 writes never tripped the injected disk-full fault on all nodes")
	}

	// Degraded, the cluster still serves: this write is acked from
	// memory on every node (its WAL append fails and is counted).
	lastVal := []byte("written after the disk filled")
	lastTag, err := w.Write(ctx, "full/last", lastVal)
	if err != nil {
		t.Fatalf("degraded Write: %v", err)
	}
	r := mustReader(t, "r1", codec, lb.Conns(), WithReaderFaults(0), WithReaderMembership(m))
	if res, err := r.Read(ctx, "full/last"); err != nil || res.Tag != lastTag {
		t.Fatalf("degraded full-strength Read = %v, %v; want tag %v", res, err, lastTag)
	}

	// Power-cut a degraded node: the unlogged tail is gone, so its own
	// WAL cannot restore full/last.
	lb.PowerCut(2)
	m.MarkSuspect(2, ErrServerDown)
	s2, err := lb.Recover(2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if gotTag, _, _ := s2.Snapshot("full/last"); !gotTag.Less(lastTag) {
		t.Fatalf("recovered tag %v for full/last, want below %v (the append was never logged)", gotTag, lastTag)
	}

	// Rejoin is donor repair, the same path a blank node takes.
	rp := mustRepairer(t, codec, lb.Conns(), m)
	if _, err := rp.RepairOnce(ctx, 2); err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if !m.IsLive(2) {
		t.Fatalf("server 2 health = %v after repair", m.Health(2))
	}
	if gotTag, _, _ := s2.Snapshot("full/last"); gotTag.Less(lastTag) {
		t.Fatalf("repair left full/last at %v, want >= %v", gotTag, lastTag)
	}

	// Whole cluster answers a full-strength read again.
	if res, err := r.Read(ctx, "full/last"); err != nil || res.Tag.Less(lastTag) {
		t.Fatalf("post-repair Read = %v, %v", res, err)
	}
}
