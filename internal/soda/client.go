package soda

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
)

var (
	// ErrUnavailable is returned when more servers have failed than
	// the operation's fault budget f allows.
	ErrUnavailable = errors.New("soda: too many server failures")
)

// Conn is a client's handle to one server, implemented by the
// multiplexed TCP transport (mux.go), the dial-per-op TCP transport
// (tcp.go), and the in-process loopback (loopback.go). Every operation
// addresses one named register by key. Transports copy elements at the
// boundary in both directions: a put's elem is not retained after the
// call returns, and a served element never aliases server storage.
type Conn interface {
	// Index returns the server's shard index in [0, n).
	Index() int
	// GetTag asks for the server's highest stored tag under key.
	GetTag(ctx context.Context, key string) (Tag, error)
	// PutData stores one coded element under (key, tag).
	PutData(ctx context.Context, key string, t Tag, elem []byte, vlen int) error
	// GetData registers readerID with the server on key, delivers the
	// key's current state marked Initial, then every relayed put-data
	// until ctx is cancelled. It blocks for the lifetime of the
	// subscription and returns nil after a cancellation-driven
	// unregister; any other return means the server was lost.
	GetData(ctx context.Context, key, readerID string, deliver func(Delivery)) error
	// GetElem fetches the server's stored (tag, element, vlen) under
	// key — the repair collection phase. A never-written key returns
	// the zero tag with a nil element.
	GetElem(ctx context.Context, key string) (Tag, []byte, int, error)
	// RepairPut installs a repaired element under key, accepted only if
	// t is at least the key's current tag (repair never rolls a server
	// backwards). It reports whether the server installed it; false
	// means the server already holds something newer.
	RepairPut(ctx context.Context, key string, t Tag, elem []byte, vlen int) (bool, error)
	// Keys enumerates the keys the server holds written elements for —
	// the namespace a Repairer must heal.
	Keys(ctx context.Context) ([]string, error)
}

// Reconfigurer is the optional Conn capability a reconfiguration
// coordinator needs: driving a server's epoch state machine (status,
// seal, activate). All three built-in transports implement it; a Conn
// that does not cannot be part of a live geometry flip.
type Reconfigurer interface {
	Reconfig(ctx context.Context, op ReconfigOp, target uint64, n, k int) (EpochStatus, error)
}

// validateConns checks that conns cover each shard index of an
// n-server cluster exactly once.
func validateConns(conns []Conn, n int) error {
	if len(conns) != n {
		return fmt.Errorf("%w: %d conns for an n=%d cluster", ErrConfig, len(conns), n)
	}
	seen := make([]bool, n)
	for _, c := range conns {
		i := c.Index()
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("%w: bad or duplicate server index %d", ErrConfig, i)
		}
		seen[i] = true
	}
	return nil
}

// liveConns filters conns through a membership view, returning the
// admitted conns and how many were quarantined. A nil view admits
// everyone.
func liveConns(conns []Conn, m *Membership) ([]Conn, int) {
	if m == nil {
		return conns, 0
	}
	live := make([]Conn, 0, len(conns))
	for _, c := range conns {
		if m.IsLive(c.Index()) {
			live = append(live, c)
		}
	}
	return live, len(conns) - len(live)
}

// reportSuspect feeds an affirmative per-server failure into a shared
// membership view. Cancellation is not evidence — a straggler losing
// the quorum race, or the caller's own deadline, says nothing about
// the server — so only errors observed while the op's context was
// still live count.
func reportSuspect(m *Membership, opctx context.Context, server int, err error) {
	if m == nil || err == nil || opctx.Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	m.MarkSuspect(server, err)
}

// quorum runs op against every conn and returns nil once need of them
// have succeeded, cancelling the stragglers. It fails fast with
// ErrUnavailable as soon as too many conns have errored for need
// successes to remain possible.
func quorum(ctx context.Context, conns []Conn, need int, op func(context.Context, Conn) error) error {
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	res := make(chan error, len(conns))
	for _, c := range conns {
		go func(c Conn) { res <- op(qctx, c) }(c)
	}
	oks, errs := 0, 0
	var firstErr error
	for range conns {
		select {
		case err := <-res:
			if err == nil {
				if oks++; oks >= need {
					return nil
				}
			} else {
				if firstErr == nil {
					firstErr = err
				}
				if errs++; errs > len(conns)-need {
					return fmt.Errorf("%w: %d of %d servers failed (need %d): %w",
						ErrUnavailable, errs, len(conns), need, firstErr)
				}
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return fmt.Errorf("%w: quorum accounting exhausted", ErrUnavailable) // unreachable
}

// writeStripes stripes the writer's per-key serialization locks; must
// be a power of two.
const writeStripes = 64

// stripeOf hashes a key onto a lock stripe (FNV-1a).
func stripeOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & (writeStripes - 1)
}

// encodeScratch is a reusable encode buffer for the put-data phase:
// one n*s backing array resliced into shards. It is refcounted across
// the quorum fan-out — straggler goroutines still hold the shards
// after the quorum completes, so the buffer returns to the pool only
// when the last per-server op finishes.
type encodeScratch struct {
	buf    []byte
	shards [][]byte
	refs   atomic.Int32
}

// release drops one quorum goroutine's hold; the last one pools the
// scratch.
func (sc *encodeScratch) release(pool *sync.Pool) {
	if sc.refs.Add(-1) == 0 {
		pool.Put(sc)
	}
}

// Writer performs SODA's two-phase writes against named registers. One
// Writer owns a writer id — the id must be unique across the cluster's
// writers, since tags are (ts, id) — and Write serializes itself per
// key (striped locks), so a Writer is safe for concurrent use across
// keys: two overlapping Writes of one key from one id would otherwise
// observe the same quorum maximum, mint the same tag for different
// values, and split the servers between two codewords of one version.
type Writer struct {
	id      string
	codec   *Codec
	conns   []Conn
	f       int
	m       *Membership
	locks   [writeStripes]sync.Mutex // serialize Write's get-tag -> put-data pair per key
	scratch sync.Pool                // *encodeScratch
	calls   sync.Pool                // *writeCall
}

// WriterOption configures a Writer.
type WriterOption func(*Writer) error

// WithWriterFaults sets the number of server crashes f the writer
// rides through: both phases wait on n-f servers. Default (n-k)/2,
// the paper's bound n >= k + 2f.
func WithWriterFaults(f int) WriterOption {
	return func(w *Writer) error {
		if f < 0 || f >= len(w.conns) {
			return fmt.Errorf("%w: writer faults f=%d with n=%d", ErrConfig, f, len(w.conns))
		}
		w.f = f
		return nil
	}
}

// WithWriterMembership shares a cluster Membership view with the
// writer: quarantined servers are excluded from both phases' quorum
// accounting — charged to the fault budget f rather than dialed — and
// automatically re-included once the Repairer readmits them. The
// writer also feeds the view: a server that affirmatively fails an RPC
// is marked Suspect for the repair loop to pick up.
func WithWriterMembership(m *Membership) WriterOption {
	return func(w *Writer) error {
		if m.N() != len(w.conns) {
			return fmt.Errorf("%w: membership for n=%d, cluster has n=%d", ErrConfig, m.N(), len(w.conns))
		}
		w.m = m
		return nil
	}
}

// maxWriterID bounds writer ids: they travel inside every tag on the
// wire (uint16-length field) and live in every server's state, so
// they are required to be short.
const maxWriterID = 255

// NewWriter builds a writer with the given unique id.
func NewWriter(id string, codec *Codec, conns []Conn, opts ...WriterOption) (*Writer, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty writer id", ErrConfig)
	}
	if len(id) > maxWriterID {
		return nil, fmt.Errorf("%w: writer id of %d bytes exceeds %d", ErrConfig, len(id), maxWriterID)
	}
	if err := validateConns(conns, codec.N()); err != nil {
		return nil, err
	}
	w := &Writer{id: id, codec: codec, conns: conns, f: (codec.N() - codec.K()) / 2}
	for _, opt := range opts {
		if err := opt(w); err != nil {
			return nil, err
		}
	}
	if codec.N()-w.f < codec.K() {
		return nil, fmt.Errorf("%w: quorum n-f=%d < k=%d", ErrConfig, codec.N()-w.f, codec.K())
	}
	return w, nil
}

// writeCall is the pooled fan-out state of one fused Write: a single
// goroutine per server runs both phases back to back, so a write costs
// n goroutine spawns instead of the 2n a quorum() per phase would, and
// the channels and spawn thunk are reused across writes. Legs report
// by bumping counters under wc.mu and nudging the cap-1 wake channel
// only when a counter crosses its phase threshold, so the caller parks
// about once per phase instead of consuming 2n messages. The refcount
// covers the n server goroutines plus the caller; the last one off
// drains the channels and pools the struct, so straggler sends can
// never pollute a later write.
type writeCall struct {
	wake chan struct{} // condition nudge; cap 1, coalescing
	mint chan Tag      // minted-tag handoff; cap n, one token per server
	body func()        // reusable spawn thunk: go wc.body() allocates nothing
	refs atomic.Int32
	next atomic.Int32

	mu       sync.Mutex
	tagMax   Tag   // running max of phase-0 tags
	oks      int   // phase-0 successes
	errs     int   // phase-0 failures
	acks     int   // phase-1 successes
	aerrs    int   // phase-1 failures
	firstErr error // first phase-0 failure
	ackErr   error // first phase-1 failure
	need     int   // successes that complete a phase
	allowed  int   // failures a phase absorbs

	// Per-call fields, set before the spawns and zeroed at pool time.
	w     *Writer
	ctx   context.Context
	key   string
	conns []Conn
	sc    *encodeScratch
	vlen  int
}

func (w *Writer) getCall(ctx context.Context, key string, conns []Conn, sc *encodeScratch, vlen int) *writeCall {
	wc, _ := w.calls.Get().(*writeCall)
	if wc == nil || cap(wc.mint) < len(w.conns) {
		wc = &writeCall{
			wake: make(chan struct{}, 1),
			mint: make(chan Tag, len(w.conns)),
		}
		wc.body = wc.run
	}
	wc.next.Store(0)
	wc.tagMax = Tag{}
	wc.oks, wc.errs, wc.acks, wc.aerrs = 0, 0, 0, 0
	wc.firstErr, wc.ackErr = nil, nil
	wc.need = len(w.conns) - w.f
	wc.allowed = len(conns) - wc.need
	wc.w, wc.ctx, wc.key, wc.conns, wc.sc, wc.vlen = w, ctx, key, conns, sc, vlen
	wc.refs.Store(int32(len(conns)) + 1) // servers + caller
	return wc
}

// release drops one hold on the call; the last holder drains and pools
// it.
func (wc *writeCall) release() {
	if wc.refs.Add(-1) != 0 {
		return
	}
	for {
		select {
		case <-wc.wake:
		case <-wc.mint:
		default:
			w := wc.w
			wc.w, wc.ctx, wc.key, wc.conns, wc.sc = nil, nil, "", nil, nil
			w.calls.Put(wc)
			return
		}
	}
}

// signal nudges the caller; the cap-1 buffer coalesces concurrent
// nudges, and the caller re-reads the counters after every wake, so a
// dropped token can never lose an edge that happened before the send.
func (wc *writeCall) signal() {
	select {
	case wc.wake <- struct{}{}:
	default:
	}
}

// run is one server's leg of a fused write: report the server's tag,
// wait for the writer to mint, then deliver the coded element. A
// server whose get-tag failed still attempts put-data — with
// dial-per-op transports the second dial can succeed where the first
// did not, and the unfused path retried it the same way. Each phase's
// thresholds (need successes, allowed+1 failures) sum past the leg
// count, so at most one of them fires per phase and a completed phase
// always nudges the caller exactly once.
func (wc *writeCall) run() {
	defer wc.release()
	c := wc.conns[wc.next.Add(1)-1]
	t, err := c.GetTag(wc.ctx, wc.key)
	if err != nil {
		reportSuspect(wc.w.m, wc.ctx, c.Index(), err)
	}
	wc.mu.Lock()
	nudge := false
	if err != nil {
		if wc.firstErr == nil {
			wc.firstErr = err
		}
		wc.errs++
		nudge = wc.errs == wc.allowed+1
	} else {
		if wc.tagMax.Less(t) {
			wc.tagMax = t
		}
		wc.oks++
		nudge = wc.oks == wc.need
	}
	wc.mu.Unlock()
	if nudge {
		wc.signal()
	}
	var minted Tag
	select {
	case minted = <-wc.mint:
	case <-wc.ctx.Done():
		wc.sc.release(&wc.w.scratch)
		return
	}
	err = c.PutData(wc.ctx, wc.key, minted, wc.sc.shards[c.Index()], wc.vlen)
	wc.sc.release(&wc.w.scratch)
	if err != nil {
		reportSuspect(wc.w.m, wc.ctx, c.Index(), err)
	}
	wc.mu.Lock()
	nudge = false
	if err != nil {
		if wc.ackErr == nil {
			wc.ackErr = err
		}
		wc.aerrs++
		nudge = wc.aerrs == wc.allowed+1
	} else {
		wc.acks++
		nudge = wc.acks == wc.need
	}
	wc.mu.Unlock()
	if nudge {
		wc.signal()
	}
}

// Write performs one atomic write of key: get-tag, then put-data,
// returning the tag the value was written under. The two phases are
// fused per server — one goroutine per conn runs get-tag and then,
// once n-f tags have fixed the minted tag, put-data on the same leg —
// which is observationally the same message sequence as
// NextTag+WriteTagged but costs half the fan-out. Per-server phases
// may overlap (one server can be receiving its element while a
// straggler is still answering get-tag); the protocol never needed
// the phases globally barriered, only the mint to follow n-f tags.
//
// On a put-data-phase failure the minted tag is returned alongside the
// error: the attempt may have installed elements under it on fewer
// than a quorum of servers (a half-applied put, the state a writer
// crash leaves), and callers that retry with a fresh tag — or audit
// histories — need to know which tag was abandoned. A zero tag with an
// error means the attempt never minted.
func (w *Writer) Write(ctx context.Context, key string, value []byte) (Tag, error) {
	if err := validateKey(key); err != nil {
		return Tag{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	l := &w.locks[stripeOf(key)]
	l.Lock()
	defer l.Unlock()

	live, _, err := w.quorumConns()
	if err != nil {
		return Tag{}, fmt.Errorf("soda: get-tag: %w", err)
	}
	sc, _ := w.scratch.Get().(*encodeScratch)
	if sc == nil {
		sc = &encodeScratch{}
	}
	if err := w.codec.encodeValueInto(value, sc); err != nil {
		w.scratch.Put(sc)
		return Tag{}, err
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sc.refs.Store(int32(len(live)))
	wc := w.getCall(wctx, key, live, sc, len(value))
	defer wc.release()
	for range live {
		spawnPool.spawn(wc.body)
	}

	// Phase 0: park until the tag quorum resolves. Every wake re-reads
	// the counters, so coalesced or stale nudges only cost a loop turn.
	var minted Tag
	for minted.IsZero() {
		//lint:ignore lockhold the stripe lock serializes whole write ops by design (PR 5: concurrent same-writer tags must stay unique); parking under it is the point
		select {
		case <-wc.wake:
		case <-ctx.Done():
			return Tag{}, ctx.Err()
		}
		wc.mu.Lock()
		switch {
		case wc.oks >= wc.need:
			minted = wc.tagMax.Next(w.id)
		case wc.errs > wc.allowed:
			errs, firstErr := wc.errs, wc.firstErr
			wc.mu.Unlock()
			return Tag{}, fmt.Errorf("soda: get-tag: %w: %d of %d servers failed (need %d): %w",
				ErrUnavailable, errs, len(live), wc.need, firstErr)
		}
		wc.mu.Unlock()
	}
	for range live {
		//lint:ignore lockhold mint sends ride the held stripe lock by design: one buffered slot per leg exists before the send, so this never blocks past leg pickup
		wc.mint <- minted
	}

	// Phase 1: park until the ack quorum resolves.
	for {
		//lint:ignore lockhold the stripe lock serializes whole write ops by design (PR 5); the ack-quorum park mirrors the phase-0 park above
		select {
		case <-wc.wake:
		case <-ctx.Done():
			return minted, ctx.Err()
		}
		wc.mu.Lock()
		switch {
		case wc.acks >= wc.need:
			wc.mu.Unlock()
			return minted, nil
		case wc.aerrs > wc.allowed:
			aerrs, ackErr := wc.aerrs, wc.ackErr
			wc.mu.Unlock()
			return minted, fmt.Errorf("soda: put-data %v: %w: %d of %d servers failed (need %d): %w",
				minted, ErrUnavailable, aerrs, len(live), wc.need, ackErr)
		}
		wc.mu.Unlock()
	}
}

// NextTag is the get-tag phase on its own: query all servers for key,
// wait for n-f tags, and mint the successor of their maximum. Exposed
// separately (with WriteTagged) so tests can fault-inject a writer
// crash between the phases; callers driving the phases by hand own
// the per-key serialization Write otherwise provides.
func (w *Writer) NextTag(ctx context.Context, key string) (Tag, error) {
	live, _, err := w.quorumConns()
	if err != nil {
		return Tag{}, fmt.Errorf("soda: get-tag: %w", err)
	}
	var mu sync.Mutex
	var max Tag
	err = quorum(ctx, live, len(w.conns)-w.f, func(qctx context.Context, c Conn) error {
		t, err := c.GetTag(qctx, key)
		if err != nil {
			reportSuspect(w.m, qctx, c.Index(), err)
			return err
		}
		mu.Lock()
		if max.Less(t) {
			max = t
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return Tag{}, fmt.Errorf("soda: get-tag: %w", err)
	}
	mu.Lock()
	defer mu.Unlock()
	return max.Next(w.id), nil
}

// quorumConns samples the membership view for one phase: the conns to
// contact, the number quarantined, and an ErrUnavailable when so many
// are quarantined that the n-f quorum cannot be met without them.
func (w *Writer) quorumConns() ([]Conn, int, error) {
	live, excluded := liveConns(w.conns, w.m)
	if excluded > w.f {
		return nil, excluded, fmt.Errorf("%w: %d servers quarantined, fault budget f=%d", ErrUnavailable, excluded, w.f)
	}
	return live, excluded, nil
}

// WriteTagged is the put-data phase: encode the value into a pooled
// scratch and send coded element i to server i, completing on n-f
// acks. Transports copy the element before returning, so the scratch
// is reusable as soon as every per-server op has finished — which is
// exactly when its refcount pools it.
func (w *Writer) WriteTagged(ctx context.Context, key string, tag Tag, value []byte) error {
	sc, _ := w.scratch.Get().(*encodeScratch)
	if sc == nil {
		sc = &encodeScratch{}
	}
	if err := w.codec.encodeValueInto(value, sc); err != nil {
		w.scratch.Put(sc)
		return err
	}
	live, _, err := w.quorumConns()
	if err != nil {
		w.scratch.Put(sc)
		return fmt.Errorf("soda: put-data %v: %w", tag, err)
	}
	vlen := len(value)
	sc.refs.Store(int32(len(live)))
	err = quorum(ctx, live, len(w.conns)-w.f, func(qctx context.Context, c Conn) error {
		defer sc.release(&w.scratch)
		if err := c.PutData(qctx, key, tag, sc.shards[c.Index()], vlen); err != nil {
			reportSuspect(w.m, qctx, c.Index(), err)
			return err
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("soda: put-data %v: %w", tag, err)
	}
	return nil
}

// ReadResult is a completed read: the value, the tag it was written
// under (zero for a never-written register), and — on SODA_err reads
// — the ascending indices of servers whose elements were located as
// corrupt and should be quarantined.
type ReadResult struct {
	Tag     Tag
	Value   []byte
	Corrupt []int
}

// Reader performs SODA's relayed reads. Safe for concurrent use; each
// Read registers under a fresh reader id.
type Reader struct {
	id         string
	ridPrefix  string // id + process token, precomputed off the Read path
	codec      *Codec
	conns      []Conn
	f          int
	e          int
	quarantine []int
	m          *Membership
	states     sync.Pool // *readState
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader) error

// WithReaderFaults sets the number of silent or crashed servers f a
// read rides through: the target tag is fixed from the first n-f
// initial responses. Atomicity requires f < k — a read may adopt a
// tag held by only the k servers whose elements it decoded (a
// writer's half-applied put), and a later read's n-f initial quorum
// is guaranteed to intersect those k servers only when k > f; with
// f >= k, reads could go backwards. Default min((n-k)/2, k-1).
func WithReaderFaults(f int) ReaderOption {
	return func(r *Reader) error {
		if f < 0 || f >= len(r.conns) {
			return fmt.Errorf("%w: reader faults f=%d with n=%d", ErrConfig, f, len(r.conns))
		}
		if f >= r.codec.K() {
			return fmt.Errorf("%w: reader faults f=%d >= k=%d (a returned tag may live on only k servers; the next read's n-f quorum must still see one of them)",
				ErrConfig, f, r.codec.K())
		}
		r.f = f
		return nil
	}
}

// WithReadErrors turns on the SODA_err read path: the reader waits
// for k+2e coded elements of a matching tag, verifies them, and runs
// the rs error decoder to locate up to e silently corrupt servers,
// reported in ReadResult.Corrupt. Requires the rs-view generator.
func WithReadErrors(e int) ReaderOption {
	return func(r *Reader) error {
		if e < 0 {
			return fmt.Errorf("%w: read errors e=%d", ErrConfig, e)
		}
		if e > 0 && r.codec.MaxReadErrors() < e {
			return fmt.Errorf("%w: e=%d corrupt servers exceeds the codec's radius %d (need rs.WithGenerator(rs.GeneratorRSView) and 2e <= n-k)",
				ErrConfig, e, r.codec.MaxReadErrors())
		}
		r.e = e
		return nil
	}
}

// WithQuarantine excludes servers a previous SODA_err read located as
// corrupt: the read never contacts them, charging them to the fault
// budget f instead.
func WithQuarantine(servers ...int) ReaderOption {
	return func(r *Reader) error {
		for _, s := range servers {
			if s < 0 || s >= len(r.conns) {
				return fmt.Errorf("%w: quarantined server %d out of range", ErrConfig, s)
			}
		}
		r.quarantine = slices.Clone(servers)
		return nil
	}
}

// WithReaderMembership shares a cluster Membership view with the
// reader: each Read samples the view at invocation and excludes every
// quarantined server exactly like WithQuarantine (the two compose; the
// static list stays excluded regardless of the view). The reader also
// feeds the view — corrupt servers a SODA_err decode locates and
// servers whose delivery stream affirmatively dies are marked Suspect
// — closing the loop that keeps the Repairer supplied with work.
func WithReaderMembership(m *Membership) ReaderOption {
	return func(r *Reader) error {
		if m.N() != len(r.conns) {
			return fmt.Errorf("%w: membership for n=%d, cluster has n=%d", ErrConfig, m.N(), len(r.conns))
		}
		r.m = m
		return nil
	}
}

// NewReader builds a reader with the given id prefix.
func NewReader(id string, codec *Codec, conns []Conn, opts ...ReaderOption) (*Reader, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty reader id", ErrConfig)
	}
	if err := validateConns(conns, codec.N()); err != nil {
		return nil, err
	}
	f := (codec.N() - codec.K()) / 2
	if f > codec.K()-1 {
		f = codec.K() - 1 // see WithReaderFaults: atomicity needs f < k
	}
	r := &Reader{id: id, ridPrefix: id + "-" + procToken + "#", codec: codec, conns: conns, f: f}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	if need := codec.K() + 2*r.e; codec.N()-r.f < need {
		return nil, fmt.Errorf("%w: read quorum n-f=%d < k+2e=%d", ErrConfig, codec.N()-r.f, need)
	}
	return r, nil
}

// procToken plus the package-wide readSeq make registration ids
// unique across Reader instances and across processes, so readers
// that happen to share an id prefix cannot clobber each other's
// registrations at the servers.
var (
	procToken = func() string {
		var b [4]byte
		if _, err := cryptorand.Read(b[:]); err != nil {
			return "p" + strconv.Itoa(os.Getpid())
		}
		return hex.EncodeToString(b[:])
	}()
	readSeq atomic.Uint64
)

var (
	errQuarantined  = errors.New("quarantined")
	errStreamClosed = errors.New("server closed the data stream")
)

// Read performs one atomic read of key. It blocks until enough servers
// have responded (or relayed a concurrent write) to pin down a value,
// or until ctx is cancelled.
func (r *Reader) Read(ctx context.Context, key string) (ReadResult, error) {
	if err := validateKey(key); err != nil {
		return ReadResult{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	b := make([]byte, 0, len(r.ridPrefix)+20)
	rid := string(strconv.AppendUint(append(b, r.ridPrefix...), readSeq.Add(1), 10))
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The effective quarantine is the static list plus the membership
	// view's current suspects; a server the Repairer readmitted before
	// this Read started is contacted again.
	quarantine := r.quarantine
	if r.m != nil {
		quarantine = slices.Clone(quarantine)
		for _, s := range r.m.Suspects() {
			if !slices.Contains(quarantine, s) {
				quarantine = append(quarantine, s)
			}
		}
	}

	st := r.getState()
	st.mu.Lock()
	st.rctx, st.key, st.rid = rctx, key, rid
	gen := st.gen
	// The sink is the one piece of this read the servers hold onto: a
	// relay snapshotting the sink set just before Unregister can still
	// invoke it after the read completed and the state was recycled, so
	// it is pinned to this read's generation and goes inert the moment
	// the state is pooled.
	st.sink = func(d Delivery) {
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.gen != gen {
			return
		}
		st.addLocked(d)
	}
	contact := st.contact[:0]
	for _, c := range r.conns {
		if !slices.Contains(quarantine, c.Index()) {
			contact = append(contact, c)
		}
	}
	st.contact = contact
	st.next.Store(0)
	st.refs.Store(int32(len(contact)) + 1) // subscriptions + this caller
	st.mu.Unlock()
	defer st.release()

	for _, q := range quarantine {
		st.lose(q, errQuarantined)
	}
	for range contact {
		spawnPool.spawn(st.body)
	}

	select {
	case <-st.done:
		st.mu.Lock()
		res, rerr := st.result, st.err
		st.mu.Unlock()
		if rerr != nil {
			return ReadResult{}, rerr
		}
		if r.m != nil {
			r.m.ReportRead(res)
		}
		return res, nil
	case <-ctx.Done():
		return ReadResult{}, ctx.Err()
	}
}

// runConn is one server's subscription leg of a read, spawned once per
// contacted conn through the pooled spawn thunk.
func (st *readState) runConn() {
	defer st.release()
	c := st.contact[st.next.Add(1)-1]
	err := c.GetData(st.rctx, st.key, st.rid, st.sink)
	if st.rctx.Err() == nil {
		// The subscription died while the read still wanted it: a
		// crashed or closing server. Anything it already delivered
		// stays usable.
		if err == nil {
			err = errStreamClosed
		}
		reportSuspect(st.r.m, st.rctx, c.Index(), err)
		st.lose(c.Index(), err)
	}
}

// getState checks a readState out of the reader's pool. The state is
// returned by the last of its holders (the caller plus one goroutine
// per subscription) via release, which also advances the generation so
// that straggler relay deliveries for the old read are dropped.
func (r *Reader) getState() *readState {
	st, _ := r.states.Get().(*readState)
	if st == nil {
		n := len(r.conns)
		st = &readState{
			r:        r,
			initials: make([]Tag, n),
			hasInit:  make([]bool, n),
			lost:     make([]bool, n),
			done:     make(chan struct{}, 1),
		}
		st.body = st.runConn
	}
	return st
}

// release drops one hold; the last holder resets the state and pools
// it.
func (st *readState) release() {
	if st.refs.Add(-1) != 0 {
		return
	}
	st.mu.Lock()
	st.gen++
	r := st.r
	for i := 0; i < st.nvers; i++ {
		b := &st.vers[i]
		clear(b.ts.elems)
		b.ts.count, b.ts.tried = 0, 0
		b.v = version{}
	}
	st.nvers = 0
	clear(st.hasInit)
	clear(st.lost)
	for i := range st.initials {
		st.initials[i] = Tag{}
	}
	st.nInit, st.nLost = 0, 0
	st.tTargetSet, st.tTarget = false, Tag{}
	st.finished, st.result, st.err = false, ReadResult{}, nil
	st.rctx, st.key, st.rid, st.sink = nil, "", "", nil
	st.contact = st.contact[:0]
	select {
	case <-st.done: // unconsumed completion signal (caller left via ctx)
	default:
	}
	st.mu.Unlock()
	r.states.Put(st)
}

// version identifies one write as a read sees it: the tag plus the
// value length the delivering server claimed. Keying collected
// elements by the pair (rather than trusting the first server to
// report vlen for a tag) means a corrupt server lying about the
// length only pollutes its own bucket — the honest servers' elements
// still accumulate and decode.
type version struct {
	tag  Tag
	vlen int
}

// tagState accumulates the coded elements a read has collected for one
// version, indexed by server — a read touches every element slot, so
// flat arrays beat per-read maps on both allocation and access.
type tagState struct {
	elems [][]byte // server-indexed; nil = not yet delivered
	count int      // non-nil entries
	tried int      // element count at the last failed decode attempt
}

// versionBucket pairs a version with its element accumulator. The
// bucket list replaces a map because a read overwhelmingly sees one
// version (two or three under write concurrency): a linear scan is
// faster than hashing and the buckets recycle with the state.
type versionBucket struct {
	v  version
	ts tagState
}

// readState is the mutable heart of one Read: deliveries from all
// server subscriptions funnel into addLocked, which re-evaluates the
// completion rule. States are pooled per Reader; gen stamps each
// checkout so relay deliveries that outlive their read go inert
// instead of polluting the next one.
type readState struct {
	r  *Reader
	mu sync.Mutex

	gen  uint64       // checkout generation; advanced on pool return
	refs atomic.Int32 // caller + one per subscription goroutine
	next atomic.Int32 // conn claim counter for the spawn thunk
	body func()       // reusable spawn thunk: go st.body() allocates nothing

	// Per-read wiring, set before the spawns, cleared at pool time.
	rctx    context.Context
	key     string
	rid     string
	sink    func(Delivery)
	contact []Conn

	initials []Tag // server-indexed tag of the Initial delivery
	hasInit  []bool
	nInit    int
	lost     []bool // quarantined, crashed, or stream-dead servers
	nLost    int

	vers  []versionBucket
	nvers int

	tTargetSet bool
	tTarget    Tag

	finished bool
	result   ReadResult
	err      error
	done     chan struct{} // cap 1; finish sends once per generation
}

func (st *readState) finish(res ReadResult, err error) {
	// mu held.
	if st.finished {
		return
	}
	st.finished = true
	st.result, st.err = res, err
	st.done <- struct{}{}
}

// bucket returns the accumulator for v, recycling a cleared bucket
// from a previous read when one is free.
func (st *readState) bucket(v version) *tagState {
	for i := 0; i < st.nvers; i++ {
		if st.vers[i].v == v {
			return &st.vers[i].ts
		}
	}
	if st.nvers == len(st.vers) {
		st.vers = append(st.vers, versionBucket{ts: tagState{elems: make([][]byte, len(st.r.conns))}})
	}
	b := &st.vers[st.nvers]
	b.v = v
	st.nvers++
	return &b.ts
}

// dropBucket clears bucket i and swaps it out of the live range,
// keeping its element array for reuse.
func (st *readState) dropBucket(i int) {
	b := &st.vers[i]
	clear(b.ts.elems)
	b.ts.count, b.ts.tried = 0, 0
	b.v = version{}
	st.nvers--
	if i != st.nvers {
		st.vers[i], st.vers[st.nvers] = st.vers[st.nvers], st.vers[i]
	}
}

// lose records a dead server (quarantined, crashed, or stream gone)
// and fails the read only once completion has become impossible.
// Deliveries already received from a now-dead server stay usable — a
// server that crashes after answering is the normal fault model — so
// the check reasons about what can still arrive, not a bare failure
// count.
func (st *readState) lose(server int, cause error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finished || st.lost[server] {
		return
	}
	st.lost[server] = true
	st.nLost++
	n := len(st.r.conns)
	aliveNew := 0 // live servers that have not yet sent their initial
	for i := 0; i < n; i++ {
		if !st.hasInit[i] && !st.lost[i] {
			aliveNew++
		}
	}
	// The target tag needs initial responses from n-f distinct
	// servers; initials already in hand count even if their server
	// died since.
	if !st.tTargetSet && st.nInit+aliveNew < n-st.r.f {
		st.finish(ReadResult{}, fmt.Errorf("%w: server %d lost (%w); %d initial responses reachable, need %d",
			ErrUnavailable, server, cause, st.nInit+aliveNew, n-st.r.f))
		return
	}
	// Completion needs k+2e elements of one version. A future write
	// can still supply them through every live server; failing that,
	// an already-seen version can be completed by live servers that
	// have not contributed to it yet.
	need := st.r.codec.K() + 2*st.r.e
	if n-st.nLost >= need {
		return
	}
	achievable := 0
	for bi := 0; bi < st.nvers; bi++ {
		b := &st.vers[bi]
		if st.tTargetSet && b.v.tag.Less(st.tTarget) {
			continue
		}
		got := b.ts.count
		for i := 0; i < n; i++ {
			if b.ts.elems[i] == nil && !st.lost[i] {
				got++
			}
		}
		if got > achievable {
			achievable = got
		}
	}
	if achievable < need {
		st.finish(ReadResult{}, fmt.Errorf("%w: server %d lost (%w); at most %d elements of any version remain reachable, need %d",
			ErrUnavailable, server, cause, achievable, need))
	}
}

// addLocked folds one delivery into the read state and checks
// completion. Callers hold st.mu (the generation-checked sink, and
// tests driving the state machine directly take it via add).
func (st *readState) addLocked(d Delivery) {
	if st.finished || d.Server < 0 || d.Server >= len(st.r.conns) {
		return
	}
	if d.Initial && !st.hasInit[d.Server] {
		st.hasInit[d.Server] = true
		st.initials[d.Server] = d.Tag
		st.nInit++
	}
	// Accept only well-formed elements consistent with the claimed
	// value length (a malformed element is simply never counted, so
	// its server contributes nothing to this version), and only for
	// versions that can still complete the read: once t* is fixed,
	// deliveries below it are garbage the completion rule will never
	// touch, so they are dropped at the door instead of buffered.
	if !d.Tag.IsZero() && d.VLen > 0 && len(d.Elem) == st.r.codec.shardSize(d.VLen) &&
		!(st.tTargetSet && d.Tag.Less(st.tTarget)) {
		ts := st.bucket(version{tag: d.Tag, vlen: d.VLen})
		if ts.elems[d.Server] == nil {
			ts.elems[d.Server] = d.Elem
			ts.count++
		}
	}
	st.check()
}

// add is addLocked behind the lock.
func (st *readState) add(d Delivery) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.addLocked(d)
}

// check applies the completion rule: once initial responses from n-f
// servers fix tTarget (their maximum tag), the read completes with
// any tag >= tTarget holding k+2e coded elements that decode. A zero
// tTarget means the register was unwritten at every quorum server:
// the read returns the initial empty value.
func (st *readState) check() {
	// mu held.
	n := len(st.r.conns)
	if !st.tTargetSet {
		if st.nInit < n-st.r.f {
			return
		}
		for i := 0; i < n; i++ {
			if st.hasInit[i] && st.tTarget.Less(st.initials[i]) {
				st.tTarget = st.initials[i]
			}
		}
		st.tTargetSet = true
		// GC: every version bucket below t* is now unreachable by the
		// completion rule; free its element buffers. This is what keeps
		// a long-registered reader's memory bounded under a write storm
		// of old tags.
		for i := 0; i < st.nvers; {
			if st.vers[i].v.tag.Less(st.tTarget) {
				st.dropBucket(i)
			} else {
				i++
			}
		}
	}
	// Newest decodable version first: under write concurrency the
	// freshest one is the one to return. Selection is a repeated max
	// scan — the bucket list is one or two entries long, and a tried
	// bucket is never reselected until it grows.
	need := st.r.codec.K() + 2*st.r.e
	for {
		best := -1
		for i := 0; i < st.nvers; i++ {
			b := &st.vers[i]
			if b.ts.count < need || b.ts.count <= b.ts.tried {
				continue
			}
			if best == -1 || newerVersion(b.v, st.vers[best].v) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		b := &st.vers[best]
		if res, ok := st.decode(b.v, &b.ts); ok {
			st.finish(res, nil)
			return
		}
		b.ts.tried = b.ts.count
	}
	if st.tTarget.IsZero() {
		st.finish(ReadResult{}, nil)
	}
}

// newerVersion orders candidate versions for decode: higher tag first,
// then longer claimed value.
func newerVersion(a, b version) bool {
	if c := a.tag.Compare(b.tag); c != 0 {
		return c > 0
	}
	return a.vlen > b.vlen
}

// decode attempts to turn the elements collected for tag t into a
// value. With e == 0 it erasure-decodes from any k elements — taking
// the no-copy fast path when the k systematic data shards are all
// present, the common case for an uncorrupted cluster. With e > 0
// (SODA_err) it runs Verify when all n elements are present — the
// cheap all-healthy fast path — and otherwise the syndrome error
// decoder, which locates up to e corrupt servers; the guarantee holds
// because k+2e present elements leave at most n-k-2e erasures, inside
// the decoding radius. A failed decode (corruption beyond e) reports
// !ok and the read keeps waiting for more relays.
func (st *readState) decode(v version, ts *tagState) (ReadResult, bool) {
	codec := st.r.codec
	n, k := codec.N(), codec.K()
	need := k + 2*st.r.e
	if ts.count < need {
		return ReadResult{}, false
	}

	if st.r.e == 0 {
		// Fast path: all k data shards in hand means the value is just
		// their concatenation — no reconstruction, no defensive clones
		// (DecodeValue copies out without mutating its inputs).
		haveData := true
		for i := 0; i < k; i++ {
			if ts.elems[i] == nil {
				haveData = false
				break
			}
		}
		if haveData {
			value, err := codec.DecodeValue(ts.elems[:k], v.vlen)
			if err != nil {
				return ReadResult{}, false
			}
			return ReadResult{Tag: v.tag, Value: value}, true
		}
	}

	shards := make([][]byte, n)
	present := 0
	for i, el := range ts.elems {
		if el == nil {
			continue
		}
		// Clone: the decoders repair in place, and delivered elements
		// may alias server storage (loopback) or later decode tries.
		shards[i] = slices.Clone(el)
		present++
	}

	var corrupt []int
	if st.r.e == 0 {
		if err := codec.enc.ReconstructData(shards); err != nil {
			return ReadResult{}, false
		}
	} else {
		runDecode := true
		if present == n {
			if ok, _ := codec.enc.Verify(shards); ok {
				runDecode = false // all elements healthy
			}
		}
		if runDecode {
			var err error
			corrupt, err = codec.enc.DecodeErrors(shards)
			if err != nil {
				return ReadResult{}, false
			}
		}
	}
	value, err := codec.DecodeValue(shards, v.vlen)
	if err != nil {
		return ReadResult{}, false
	}
	return ReadResult{Tag: v.tag, Value: value, Corrupt: corrupt}, true
}
