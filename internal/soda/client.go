package soda

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

var (
	// ErrUnavailable is returned when more servers have failed than
	// the operation's fault budget f allows.
	ErrUnavailable = errors.New("soda: too many server failures")
)

// Conn is a client's handle to one server, implemented by the TCP
// transport (tcp.go) and the in-process loopback (loopback.go).
type Conn interface {
	// Index returns the server's shard index in [0, n).
	Index() int
	// GetTag asks for the server's highest stored tag.
	GetTag(ctx context.Context) (Tag, error)
	// PutData stores one coded element under a tag.
	PutData(ctx context.Context, t Tag, elem []byte, vlen int) error
	// GetData registers readerID with the server, delivers the
	// server's current state marked Initial, then every relayed
	// put-data until ctx is cancelled. It blocks for the lifetime of
	// the subscription and returns nil after a cancellation-driven
	// unregister; any other return means the server was lost.
	GetData(ctx context.Context, readerID string, deliver func(Delivery)) error
	// GetElem fetches the server's stored (tag, element, vlen) — the
	// repair collection phase. A never-written server returns the zero
	// tag with a nil element.
	GetElem(ctx context.Context) (Tag, []byte, int, error)
	// RepairPut installs a repaired element, accepted only if t is at
	// least the server's current tag (repair never rolls a server
	// backwards). It reports whether the server installed it; false
	// means the server already holds something newer.
	RepairPut(ctx context.Context, t Tag, elem []byte, vlen int) (bool, error)
}

// validateConns checks that conns cover each shard index of an
// n-server cluster exactly once.
func validateConns(conns []Conn, n int) error {
	if len(conns) != n {
		return fmt.Errorf("%w: %d conns for an n=%d cluster", ErrConfig, len(conns), n)
	}
	seen := make([]bool, n)
	for _, c := range conns {
		i := c.Index()
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("%w: bad or duplicate server index %d", ErrConfig, i)
		}
		seen[i] = true
	}
	return nil
}

// liveConns filters conns through a membership view, returning the
// admitted conns and how many were quarantined. A nil view admits
// everyone.
func liveConns(conns []Conn, m *Membership) ([]Conn, int) {
	if m == nil {
		return conns, 0
	}
	live := make([]Conn, 0, len(conns))
	for _, c := range conns {
		if m.IsLive(c.Index()) {
			live = append(live, c)
		}
	}
	return live, len(conns) - len(live)
}

// reportSuspect feeds an affirmative per-server failure into a shared
// membership view. Cancellation is not evidence — a straggler losing
// the quorum race, or the caller's own deadline, says nothing about
// the server — so only errors observed while the op's context was
// still live count.
func reportSuspect(m *Membership, opctx context.Context, server int, err error) {
	if m == nil || err == nil || opctx.Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	m.MarkSuspect(server, err)
}

// quorum runs op against every conn and returns nil once need of them
// have succeeded, cancelling the stragglers. It fails fast with
// ErrUnavailable as soon as too many conns have errored for need
// successes to remain possible.
func quorum(ctx context.Context, conns []Conn, need int, op func(context.Context, Conn) error) error {
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	res := make(chan error, len(conns))
	for _, c := range conns {
		go func(c Conn) { res <- op(qctx, c) }(c)
	}
	oks, errs := 0, 0
	var firstErr error
	for range conns {
		select {
		case err := <-res:
			if err == nil {
				if oks++; oks >= need {
					return nil
				}
			} else {
				if firstErr == nil {
					firstErr = err
				}
				if errs++; errs > len(conns)-need {
					return fmt.Errorf("%w: %d of %d servers failed (need %d): %v",
						ErrUnavailable, errs, len(conns), need, firstErr)
				}
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return fmt.Errorf("%w: quorum accounting exhausted", ErrUnavailable) // unreachable
}

// Writer performs SODA's two-phase writes. One Writer owns a writer
// id — the id must be unique across the cluster's writers, since tags
// are (ts, id) — and Write serializes itself, so a Writer is safe for
// concurrent use: two overlapping Writes from one id would otherwise
// observe the same quorum maximum, mint the same tag for different
// values, and split the servers between two codewords of one version.
type Writer struct {
	id    string
	codec *Codec
	conns []Conn
	f     int
	m     *Membership
	mu    sync.Mutex // serializes Write's get-tag -> put-data pair
}

// WriterOption configures a Writer.
type WriterOption func(*Writer) error

// WithWriterFaults sets the number of server crashes f the writer
// rides through: both phases wait on n-f servers. Default (n-k)/2,
// the paper's bound n >= k + 2f.
func WithWriterFaults(f int) WriterOption {
	return func(w *Writer) error {
		if f < 0 || f >= len(w.conns) {
			return fmt.Errorf("%w: writer faults f=%d with n=%d", ErrConfig, f, len(w.conns))
		}
		w.f = f
		return nil
	}
}

// WithWriterMembership shares a cluster Membership view with the
// writer: quarantined servers are excluded from both phases' quorum
// accounting — charged to the fault budget f rather than dialed — and
// automatically re-included once the Repairer readmits them. The
// writer also feeds the view: a server that affirmatively fails an RPC
// is marked Suspect for the repair loop to pick up.
func WithWriterMembership(m *Membership) WriterOption {
	return func(w *Writer) error {
		if m.N() != len(w.conns) {
			return fmt.Errorf("%w: membership for n=%d, cluster has n=%d", ErrConfig, m.N(), len(w.conns))
		}
		w.m = m
		return nil
	}
}

// maxWriterID bounds writer ids: they travel inside every tag on the
// wire (uint16-length field) and live in every server's state, so
// they are required to be short.
const maxWriterID = 255

// NewWriter builds a writer with the given unique id.
func NewWriter(id string, codec *Codec, conns []Conn, opts ...WriterOption) (*Writer, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty writer id", ErrConfig)
	}
	if len(id) > maxWriterID {
		return nil, fmt.Errorf("%w: writer id of %d bytes exceeds %d", ErrConfig, len(id), maxWriterID)
	}
	if err := validateConns(conns, codec.N()); err != nil {
		return nil, err
	}
	w := &Writer{id: id, codec: codec, conns: conns, f: (codec.N() - codec.K()) / 2}
	for _, opt := range opts {
		if err := opt(w); err != nil {
			return nil, err
		}
	}
	if codec.N()-w.f < codec.K() {
		return nil, fmt.Errorf("%w: quorum n-f=%d < k=%d", ErrConfig, codec.N()-w.f, codec.K())
	}
	return w, nil
}

// Write performs one atomic write: get-tag, then put-data. It returns
// the tag the value was written under.
func (w *Writer) Write(ctx context.Context, value []byte) (Tag, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	tag, err := w.NextTag(ctx)
	if err != nil {
		return Tag{}, err
	}
	return tag, w.WriteTagged(ctx, tag, value)
}

// NextTag is the get-tag phase on its own: query all servers, wait
// for n-f tags, and mint the successor of their maximum. Exposed
// separately (with WriteTagged) so tests can fault-inject a writer
// crash between the phases; callers driving the phases by hand own
// the serialization Write otherwise provides.
func (w *Writer) NextTag(ctx context.Context) (Tag, error) {
	live, _, err := w.quorumConns()
	if err != nil {
		return Tag{}, fmt.Errorf("soda: get-tag: %w", err)
	}
	var mu sync.Mutex
	var max Tag
	err = quorum(ctx, live, len(w.conns)-w.f, func(qctx context.Context, c Conn) error {
		t, err := c.GetTag(qctx)
		if err != nil {
			reportSuspect(w.m, qctx, c.Index(), err)
			return err
		}
		mu.Lock()
		if max.Less(t) {
			max = t
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return Tag{}, fmt.Errorf("soda: get-tag: %w", err)
	}
	mu.Lock()
	defer mu.Unlock()
	return max.Next(w.id), nil
}

// quorumConns samples the membership view for one phase: the conns to
// contact, the number quarantined, and an ErrUnavailable when so many
// are quarantined that the n-f quorum cannot be met without them.
func (w *Writer) quorumConns() ([]Conn, int, error) {
	live, excluded := liveConns(w.conns, w.m)
	if excluded > w.f {
		return nil, excluded, fmt.Errorf("%w: %d servers quarantined, fault budget f=%d", ErrUnavailable, excluded, w.f)
	}
	return live, excluded, nil
}

// WriteTagged is the put-data phase: encode the value and send coded
// element i to server i, completing on n-f acks.
func (w *Writer) WriteTagged(ctx context.Context, tag Tag, value []byte) error {
	shards, err := w.codec.EncodeValue(value)
	if err != nil {
		return err
	}
	live, _, err := w.quorumConns()
	if err != nil {
		return fmt.Errorf("soda: put-data %v: %w", tag, err)
	}
	err = quorum(ctx, live, len(w.conns)-w.f, func(qctx context.Context, c Conn) error {
		if err := c.PutData(qctx, tag, shards[c.Index()], len(value)); err != nil {
			reportSuspect(w.m, qctx, c.Index(), err)
			return err
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("soda: put-data %v: %w", tag, err)
	}
	return nil
}

// ReadResult is a completed read: the value, the tag it was written
// under (zero for a never-written register), and — on SODA_err reads
// — the ascending indices of servers whose elements were located as
// corrupt and should be quarantined.
type ReadResult struct {
	Tag     Tag
	Value   []byte
	Corrupt []int
}

// Reader performs SODA's relayed reads. Safe for concurrent use; each
// Read registers under a fresh reader id.
type Reader struct {
	id         string
	codec      *Codec
	conns      []Conn
	f          int
	e          int
	quarantine []int
	m          *Membership
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader) error

// WithReaderFaults sets the number of silent or crashed servers f a
// read rides through: the target tag is fixed from the first n-f
// initial responses. Atomicity requires f < k — a read may adopt a
// tag held by only the k servers whose elements it decoded (a
// writer's half-applied put), and a later read's n-f initial quorum
// is guaranteed to intersect those k servers only when k > f; with
// f >= k, reads could go backwards. Default min((n-k)/2, k-1).
func WithReaderFaults(f int) ReaderOption {
	return func(r *Reader) error {
		if f < 0 || f >= len(r.conns) {
			return fmt.Errorf("%w: reader faults f=%d with n=%d", ErrConfig, f, len(r.conns))
		}
		if f >= r.codec.K() {
			return fmt.Errorf("%w: reader faults f=%d >= k=%d (a returned tag may live on only k servers; the next read's n-f quorum must still see one of them)",
				ErrConfig, f, r.codec.K())
		}
		r.f = f
		return nil
	}
}

// WithReadErrors turns on the SODA_err read path: the reader waits
// for k+2e coded elements of a matching tag, verifies them, and runs
// the rs error decoder to locate up to e silently corrupt servers,
// reported in ReadResult.Corrupt. Requires the rs-view generator.
func WithReadErrors(e int) ReaderOption {
	return func(r *Reader) error {
		if e < 0 {
			return fmt.Errorf("%w: read errors e=%d", ErrConfig, e)
		}
		if e > 0 && r.codec.MaxReadErrors() < e {
			return fmt.Errorf("%w: e=%d corrupt servers exceeds the codec's radius %d (need rs.WithGenerator(rs.GeneratorRSView) and 2e <= n-k)",
				ErrConfig, e, r.codec.MaxReadErrors())
		}
		r.e = e
		return nil
	}
}

// WithQuarantine excludes servers a previous SODA_err read located as
// corrupt: the read never contacts them, charging them to the fault
// budget f instead.
func WithQuarantine(servers ...int) ReaderOption {
	return func(r *Reader) error {
		for _, s := range servers {
			if s < 0 || s >= len(r.conns) {
				return fmt.Errorf("%w: quarantined server %d out of range", ErrConfig, s)
			}
		}
		r.quarantine = slices.Clone(servers)
		return nil
	}
}

// WithReaderMembership shares a cluster Membership view with the
// reader: each Read samples the view at invocation and excludes every
// quarantined server exactly like WithQuarantine (the two compose; the
// static list stays excluded regardless of the view). The reader also
// feeds the view — corrupt servers a SODA_err decode locates and
// servers whose delivery stream affirmatively dies are marked Suspect
// — closing the loop that keeps the Repairer supplied with work.
func WithReaderMembership(m *Membership) ReaderOption {
	return func(r *Reader) error {
		if m.N() != len(r.conns) {
			return fmt.Errorf("%w: membership for n=%d, cluster has n=%d", ErrConfig, m.N(), len(r.conns))
		}
		r.m = m
		return nil
	}
}

// NewReader builds a reader with the given id prefix.
func NewReader(id string, codec *Codec, conns []Conn, opts ...ReaderOption) (*Reader, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty reader id", ErrConfig)
	}
	if err := validateConns(conns, codec.N()); err != nil {
		return nil, err
	}
	f := (codec.N() - codec.K()) / 2
	if f > codec.K()-1 {
		f = codec.K() - 1 // see WithReaderFaults: atomicity needs f < k
	}
	r := &Reader{id: id, codec: codec, conns: conns, f: f}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	if need := codec.K() + 2*r.e; codec.N()-r.f < need {
		return nil, fmt.Errorf("%w: read quorum n-f=%d < k+2e=%d", ErrConfig, codec.N()-r.f, need)
	}
	return r, nil
}

// procToken plus the package-wide readSeq make registration ids
// unique across Reader instances and across processes, so readers
// that happen to share an id prefix cannot clobber each other's
// registrations at the servers.
var (
	procToken = func() string {
		var b [4]byte
		if _, err := cryptorand.Read(b[:]); err != nil {
			return fmt.Sprintf("p%d", os.Getpid())
		}
		return hex.EncodeToString(b[:])
	}()
	readSeq atomic.Uint64
)

// Read performs one atomic read. It blocks until enough servers have
// responded (or relayed a concurrent write) to pin down a value, or
// until ctx is cancelled.
func (r *Reader) Read(ctx context.Context) (ReadResult, error) {
	rid := fmt.Sprintf("%s-%s#%d", r.id, procToken, readSeq.Add(1))
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &readState{
		r:        r,
		initials: make(map[int]Tag, len(r.conns)),
		tags:     make(map[version]*tagState),
		lost:     make(map[int]bool, len(r.conns)),
		done:     make(chan struct{}),
	}
	// The effective quarantine is the static list plus the membership
	// view's current suspects; a server the Repairer readmitted before
	// this Read started is contacted again.
	quarantine := r.quarantine
	if r.m != nil {
		quarantine = slices.Clone(quarantine)
		for _, s := range r.m.Suspects() {
			if !slices.Contains(quarantine, s) {
				quarantine = append(quarantine, s)
			}
		}
	}
	for _, q := range quarantine {
		st.lose(q, errors.New("quarantined"))
	}
	for _, c := range r.conns {
		if slices.Contains(quarantine, c.Index()) {
			continue
		}
		go func(c Conn) {
			err := c.GetData(rctx, rid, st.add)
			if rctx.Err() == nil {
				// The subscription died while the read still wanted
				// it: a crashed or closing server. Anything it already
				// delivered stays usable.
				if err == nil {
					err = errors.New("server closed the data stream")
				}
				reportSuspect(r.m, rctx, c.Index(), err)
				st.lose(c.Index(), err)
			}
		}(c)
	}

	select {
	case <-st.done:
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.err != nil {
			return ReadResult{}, st.err
		}
		if r.m != nil {
			r.m.ReportRead(st.result)
		}
		return st.result, nil
	case <-ctx.Done():
		return ReadResult{}, ctx.Err()
	}
}

// version identifies one write as a read sees it: the tag plus the
// value length the delivering server claimed. Keying collected
// elements by the pair (rather than trusting the first server to
// report vlen for a tag) means a corrupt server lying about the
// length only pollutes its own bucket — the honest servers' elements
// still accumulate and decode.
type version struct {
	tag  Tag
	vlen int
}

// tagState accumulates the coded elements a read has collected for
// one version.
type tagState struct {
	elems map[int][]byte
	tried int // element count at the last failed decode attempt
}

// readState is the mutable heart of one Read: deliveries from all
// server subscriptions funnel into add, which re-evaluates the
// completion rule.
type readState struct {
	r  *Reader
	mu sync.Mutex

	initials   map[int]Tag // server -> tag of its Initial delivery
	tags       map[version]*tagState
	lost       map[int]bool // quarantined, crashed, or stream-dead servers
	tTargetSet bool
	tTarget    Tag

	finished bool
	result   ReadResult
	err      error
	done     chan struct{}
}

func (st *readState) finish(res ReadResult, err error) {
	// mu held.
	if st.finished {
		return
	}
	st.finished = true
	st.result, st.err = res, err
	close(st.done)
}

// lose records a dead server (quarantined, crashed, or stream gone)
// and fails the read only once completion has become impossible.
// Deliveries already received from a now-dead server stay usable — a
// server that crashes after answering is the normal fault model — so
// the check reasons about what can still arrive, not a bare failure
// count.
func (st *readState) lose(server int, cause error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finished || st.lost[server] {
		return
	}
	st.lost[server] = true
	n := len(st.r.conns)
	aliveNew := 0 // live servers that have not yet sent their initial
	for i := 0; i < n; i++ {
		if _, got := st.initials[i]; !got && !st.lost[i] {
			aliveNew++
		}
	}
	// The target tag needs initial responses from n-f distinct
	// servers; initials already in hand count even if their server
	// died since.
	if !st.tTargetSet && len(st.initials)+aliveNew < n-st.r.f {
		st.finish(ReadResult{}, fmt.Errorf("%w: server %d lost (%v); %d initial responses reachable, need %d",
			ErrUnavailable, server, cause, len(st.initials)+aliveNew, n-st.r.f))
		return
	}
	// Completion needs k+2e elements of one version. A future write
	// can still supply them through every live server; failing that,
	// an already-seen version can be completed by live servers that
	// have not contributed to it yet.
	need := st.r.codec.K() + 2*st.r.e
	if n-len(st.lost) >= need {
		return
	}
	achievable := 0
	for v, ts := range st.tags {
		if st.tTargetSet && v.tag.Less(st.tTarget) {
			continue
		}
		got := len(ts.elems)
		for i := 0; i < n; i++ {
			if _, has := ts.elems[i]; !has && !st.lost[i] {
				got++
			}
		}
		if got > achievable {
			achievable = got
		}
	}
	if achievable < need {
		st.finish(ReadResult{}, fmt.Errorf("%w: server %d lost (%v); at most %d elements of any version remain reachable, need %d",
			ErrUnavailable, server, cause, achievable, need))
	}
}

// add folds one delivery into the read state and checks completion.
func (st *readState) add(d Delivery) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finished {
		return
	}
	if d.Initial {
		if _, ok := st.initials[d.Server]; !ok {
			st.initials[d.Server] = d.Tag
		}
	}
	// Accept only well-formed elements: consistent with the claimed
	// value length. A malformed element is simply never counted, so
	// its server contributes nothing to this version.
	if !d.Tag.IsZero() && d.VLen > 0 && len(d.Elem) == st.r.codec.shardSize(d.VLen) {
		v := version{tag: d.Tag, vlen: d.VLen}
		ts := st.tags[v]
		if ts == nil {
			ts = &tagState{elems: make(map[int][]byte)}
			st.tags[v] = ts
		}
		if _, ok := ts.elems[d.Server]; !ok {
			ts.elems[d.Server] = d.Elem
		}
	}
	st.check()
}

// check applies the completion rule: once initial responses from n-f
// servers fix tTarget (their maximum tag), the read completes with
// any tag >= tTarget holding k+2e coded elements that decode. A zero
// tTarget means the register was unwritten at every quorum server:
// the read returns the initial empty value.
func (st *readState) check() {
	// mu held.
	n := len(st.r.conns)
	if !st.tTargetSet {
		if len(st.initials) < n-st.r.f {
			return
		}
		for _, t := range st.initials {
			if st.tTarget.Less(t) {
				st.tTarget = t
			}
		}
		st.tTargetSet = true
	}
	need := st.r.codec.K() + 2*st.r.e
	var cands []version
	for v, ts := range st.tags {
		if !v.tag.Less(st.tTarget) && len(ts.elems) >= need && len(ts.elems) > ts.tried {
			cands = append(cands, v)
		}
	}
	// Newest first: under write concurrency the freshest decodable
	// version is the one to return.
	sort.Slice(cands, func(i, j int) bool {
		if c := cands[i].tag.Compare(cands[j].tag); c != 0 {
			return c > 0
		}
		return cands[i].vlen > cands[j].vlen
	})
	for _, v := range cands {
		ts := st.tags[v]
		if res, ok := st.decode(v, ts); ok {
			st.finish(res, nil)
			return
		}
		ts.tried = len(ts.elems)
	}
	if st.tTarget.IsZero() {
		st.finish(ReadResult{}, nil)
	}
}

// decode attempts to turn the elements collected for tag t into a
// value. With e == 0 it erasure-decodes from any k elements. With
// e > 0 (SODA_err) it runs Verify when all n elements are present —
// the cheap all-healthy fast path — and otherwise the syndrome error
// decoder, which locates up to e corrupt servers; the guarantee holds
// because k+2e present elements leave at most n-k-2e erasures, inside
// the decoding radius. A failed decode (corruption beyond e) reports
// !ok and the read keeps waiting for more relays.
func (st *readState) decode(v version, ts *tagState) (ReadResult, bool) {
	codec := st.r.codec
	n, k := codec.N(), codec.K()
	shards := make([][]byte, n)
	present := 0
	for i, el := range ts.elems {
		// Clone: the decoders repair in place, and delivered elements
		// may alias server storage (loopback) or later decode tries.
		shards[i] = slices.Clone(el)
		present++
	}
	need := k + 2*st.r.e
	if present < need {
		return ReadResult{}, false
	}

	var corrupt []int
	if st.r.e == 0 {
		if err := codec.enc.ReconstructData(shards); err != nil {
			return ReadResult{}, false
		}
	} else {
		runDecode := true
		if present == n {
			if ok, _ := codec.enc.Verify(shards); ok {
				runDecode = false // all elements healthy
			}
		}
		if runDecode {
			var err error
			corrupt, err = codec.enc.DecodeErrors(shards)
			if err != nil {
				return ReadResult{}, false
			}
		}
	}
	value, err := codec.DecodeValue(shards, v.vlen)
	if err != nil {
		return ReadResult{}, false
	}
	return ReadResult{Tag: v.tag, Value: value, Corrupt: corrupt}, true
}
