package soda

import (
	"context"
	"time"
)

// Backoff is a small bounded exponential backoff shared by the
// transports and the repair loop: delays double from Base up to Max.
// It is deliberately jitter-free so fault-injection tests stay
// deterministic; the processes sharing a cluster are few enough that
// synchronized retries are not a thundering herd.
type Backoff struct {
	Base time.Duration // first delay; default 10ms
	Max  time.Duration // delay cap; default 2s

	attempt int
}

const (
	defaultBackoffBase = 10 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second
)

// Next returns the next delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	d := base
	for i := 0; i < b.attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	b.attempt++
	return d
}

// Reset rewinds the schedule to Base, for callers that reuse one
// Backoff across successes (the repair loop's per-server state).
func (b *Backoff) Reset() { b.attempt = 0 }

// Sleep blocks for the next delay or until ctx ends, returning
// ctx.Err() in the latter case. A hung peer must never stall a caller
// past its context: every retry loop in this package sleeps through
// here.
func (b *Backoff) Sleep(ctx context.Context) error {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retry runs fn up to attempts times, backing off between failures,
// and returns the first success or the last error. It stops early when
// ctx ends. fn's error is returned unwrapped so callers keep errors.Is
// visibility into the cause.
func retry(ctx context.Context, attempts int, b Backoff, fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if ctx.Err() != nil || i == attempts-1 {
			return err
		}
		if serr := b.Sleep(ctx); serr != nil {
			return err
		}
	}
	return err
}
