package soda

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// MuxConn is the persistent multiplexed TCP client: one long-lived
// connection per server carrying every concurrent exchange — get-tag,
// put-data, get-elem, repair-put, keys — pipelined and routed back by
// request id, plus any number of key-scoped relay streams. A demux
// pump (readLoop) routes each inbound frame to the exchange that owns
// its request id; responses for unknown ids are dropped on the floor,
// which makes late responses to cancelled requests harmless.
//
// The connection is established lazily and re-established on demand
// after a failure; concurrent operations needing a connection share
// one dial (singleflight) instead of stampeding the server. A
// connection failure fails every in-flight exchange on it — the
// per-server error the quorum layer already knows how to charge.
var errConnClosed = errors.New("soda: mux conn closed")

// muxSession is one live connection generation. err is set exactly
// once, before done closes, so any goroutine that observed done may
// read it.
type muxSession struct {
	conn net.Conn
	done chan struct{}
	err  error
	once sync.Once
}

func (s *muxSession) fail(err error) {
	s.once.Do(func() {
		s.err = err
		close(s.done)
	})
	s.conn.Close()
}

// dialAttempt is the singleflight cell concurrent session() calls
// share: the winner dials and publishes, the rest wait on done.
type dialAttempt struct {
	done chan struct{}
	sess *muxSession
	err  error
}

// muxStream is one live get-data stream on the connection: the relay
// sink plus an error slot the demux pump fails it through when the
// server NACKs the stream's epoch mid-flight.
type muxStream struct {
	deliver func(Delivery)
	errc    chan error // cap 1; at most one terminal error per stream
}

// MuxConn implements Conn over one persistent multiplexed connection.
type MuxConn struct {
	idx  int
	addr string
	opts tcpOpts

	reqSeq atomic.Uint64
	wmu    sync.Mutex // serializes frame writes to the live connection

	mu      sync.Mutex
	sess    *muxSession
	dialing *dialAttempt
	closed  bool
	pending map[uint64]chan []byte // unary waiters by request id
	streams map[uint64]*muxStream  // get-data streams by request id
}

// TCPMuxConn returns the multiplexed Conn for the server at shard
// index idx on addr. Connections are dialed on first use.
func TCPMuxConn(idx int, addr string, opts ...TCPOption) *MuxConn {
	c := &MuxConn{
		idx:     idx,
		addr:    addr,
		opts:    defaultTCPOpts(),
		pending: make(map[uint64]chan []byte),
		streams: make(map[uint64]*muxStream),
	}
	for _, opt := range opts {
		opt(&c.opts)
	}
	return c
}

// TCPMuxConns builds the multiplexed conn set for a cluster from its
// address list, in shard-index order.
func TCPMuxConns(addrs []string, opts ...TCPOption) []Conn {
	conns := make([]Conn, len(addrs))
	for i, a := range addrs {
		conns[i] = TCPMuxConn(i, a, opts...)
	}
	return conns
}

// CloseConns closes every MuxConn in a conn set (other Conn
// implementations hold no persistent state and are skipped).
func CloseConns(conns []Conn) {
	for _, c := range conns {
		if mc, ok := c.(*MuxConn); ok {
			mc.Close()
		}
	}
}

func (c *MuxConn) Index() int { return c.idx }

// Close tears down the connection and fails in-flight exchanges;
// subsequent operations error instead of redialing.
func (c *MuxConn) Close() error {
	c.mu.Lock()
	c.closed = true
	s := c.sess
	c.mu.Unlock()
	if s != nil {
		c.teardown(s, errConnClosed)
	}
	return nil
}

// session returns the live connection, dialing (once, shared) if
// needed.
func (c *MuxConn) session(ctx context.Context) (*muxSession, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, errConnClosed
		}
		if c.sess != nil {
			s := c.sess
			c.mu.Unlock()
			return s, nil
		}
		att := c.dialing
		if att == nil {
			att = &dialAttempt{done: make(chan struct{})}
			c.dialing = att
			c.mu.Unlock()
			conn, err := c.opts.policy.dial(ctx, c.addr)
			c.mu.Lock()
			c.dialing = nil
			if err == nil && c.closed {
				err = errConnClosed
				conn.Close()
				conn = nil
			}
			if err != nil {
				c.mu.Unlock()
				att.err = err
				close(att.done)
				return nil, err
			}
			s := &muxSession{conn: conn, done: make(chan struct{})}
			c.sess = s
			c.mu.Unlock()
			att.sess = s
			close(att.done)
			go c.readLoop(s)
			return s, nil
		}
		c.mu.Unlock()
		select {
		case <-att.done:
			if att.sess != nil {
				return att.sess, nil
			}
			return nil, att.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// teardown fails a session and clears every exchange registered on it.
// Waiters wake via the session's done channel and read its error.
func (c *MuxConn) teardown(s *muxSession, err error) {
	c.mu.Lock()
	if c.sess == s {
		c.sess = nil
		c.pending = make(map[uint64]chan []byte)
		c.streams = make(map[uint64]*muxStream)
	}
	c.mu.Unlock()
	s.fail(err)
}

// frameForSend starts a pooled frame with room for the length prefix,
// so the whole frame goes out in one conn.Write.
func frameForSend() *[]byte {
	bp := getFrame()
	*bp = append(*bp, 0, 0, 0, 0)
	return bp
}

// writeBuf finishes and writes a frame built by frameForSend,
// recycling the buffer.
func (c *MuxConn) writeBuf(s *muxSession, bp *[]byte) error {
	p := *bp
	if len(p)-4 > maxFrame {
		putFrame(bp)
		return fmt.Errorf("%w: %d byte frame exceeds %d", ErrFrame, len(p)-4, maxFrame)
	}
	binary.BigEndian.PutUint32(p[:4], uint32(len(p)-4))
	c.wmu.Lock()
	//lint:ignore lockhold wmu is the connection's dedicated write-serialization lock: it guards exactly this Write and nothing else ever blocks on it
	_, err := s.conn.Write(p)
	c.wmu.Unlock()
	putFrame(bp)
	return err
}

// readLoop is the demux pump: route every inbound frame by (type,
// request id). Stream deliveries are decoded here (the buffer is
// reused; decoders copy elements out); unary responses are handed to
// their waiter whole.
func (c *MuxConn) readLoop(s *muxSession) {
	br := bufio.NewReader(s.conn)
	var buf []byte
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			c.teardown(s, err)
			return
		}
		typ, req, ok := peekHeader(payload)
		if !ok {
			c.teardown(s, &FrameError{Want: "header", Msg: "short frame"})
			return
		}
		switch {
		case typ == msgData:
			buf = payload
			_, d, err := decodeData(payload)
			if err != nil {
				c.teardown(s, err)
				return
			}
			c.mu.Lock()
			st := c.streams[req]
			c.mu.Unlock()
			if st != nil {
				d.Server = c.idx
				st.deliver(d)
			}
		case typ == msgEpochNack:
			// An epoch NACK either answers a unary exchange (route the
			// whole payload; the waiter's decoder surfaces the typed
			// error) or kills a relay stream the server just swept in an
			// epoch flip.
			c.mu.Lock()
			st := c.streams[req]
			if st != nil {
				delete(c.streams, req)
			}
			ch := c.pending[req]
			if ch != nil {
				delete(c.pending, req)
			}
			c.mu.Unlock()
			switch {
			case st != nil:
				buf = payload
				_, serr := decodeEpochNack(payload)
				if serr == nil {
					serr = &FrameError{Want: "epoch-nack", Msg: "well-formed nack decoded to nil"}
				}
				select {
				case st.errc <- stampStale(serr, c.idx):
				default:
				}
			case ch != nil:
				ch <- payload // buffered; never blocks the pump
				buf = nil     // ownership moved to the waiter
			default:
				buf = payload // nack for a cancelled or unknown exchange
			}
		case typ == msgError && req == 0:
			// Connection-level error: the server could not even parse a
			// header on this connection; nothing multiplexed on it can
			// be trusted to complete.
			buf = payload
			_, rerr := decodeError(payload)
			if rerr == nil {
				rerr = errors.New("soda: unspecified connection error")
			}
			c.teardown(s, rerr)
			return
		default:
			c.mu.Lock()
			ch := c.pending[req]
			if ch != nil {
				delete(c.pending, req)
			}
			c.mu.Unlock()
			if ch != nil {
				ch <- payload // buffered; never blocks the pump
				buf = nil     // ownership moved to the waiter
			} else {
				buf = payload // response for a cancelled or unknown exchange
			}
		}
	}
}

// unary runs one request/response exchange: register a waiter, send
// the frame, wait for the pump to route the response back.
func (c *MuxConn) unary(ctx context.Context, build func(b []byte, req uint64) []byte) ([]byte, error) {
	s, err := c.session(ctx)
	if err != nil {
		return nil, err
	}
	req := c.reqSeq.Add(1)
	ch := make(chan []byte, 1)
	c.mu.Lock()
	if c.sess != s {
		c.mu.Unlock()
		select {
		case <-s.done:
			return nil, s.err
		default:
			return nil, errConnClosed
		}
	}
	c.pending[req] = ch
	c.mu.Unlock()
	bp := frameForSend()
	*bp = build(*bp, req)
	if err := c.writeBuf(s, bp); err != nil {
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
		c.teardown(s, err)
		return nil, err
	}
	select {
	case payload := <-ch:
		return payload, nil
	case <-s.done:
		return nil, s.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (c *MuxConn) GetTag(ctx context.Context, key string) (Tag, error) {
	payload, err := c.unary(ctx, func(b []byte, req uint64) []byte {
		return appendGetTag(b, req, c.opts.epoch, key)
	})
	if err != nil {
		return Tag{}, err
	}
	_, t, err := decodeTagResp(payload)
	return t, stampStale(err, c.idx)
}

func (c *MuxConn) PutData(ctx context.Context, key string, t Tag, elem []byte, vlen int) error {
	payload, err := c.unary(ctx, func(b []byte, req uint64) []byte {
		return appendPutData(b, req, c.opts.epoch, key, t, elem, vlen)
	})
	if err != nil {
		return err
	}
	_, err = decodeAck(payload)
	return stampStale(err, c.idx)
}

func (c *MuxConn) GetElem(ctx context.Context, key string) (Tag, []byte, int, error) {
	payload, err := c.unary(ctx, func(b []byte, req uint64) []byte {
		return appendGetElem(b, req, c.opts.epoch, key)
	})
	if err != nil {
		return Tag{}, nil, 0, err
	}
	_, t, elem, vlen, err := decodeElemResp(payload)
	return t, elem, vlen, stampStale(err, c.idx)
}

func (c *MuxConn) RepairPut(ctx context.Context, key string, t Tag, elem []byte, vlen int) (bool, error) {
	payload, err := c.unary(ctx, func(b []byte, req uint64) []byte {
		return appendRepairPut(b, req, c.opts.epoch, key, t, elem, vlen)
	})
	if err != nil {
		return false, err
	}
	_, accepted, err := decodeRepairResp(payload)
	return accepted, stampStale(err, c.idx)
}

func (c *MuxConn) Keys(ctx context.Context) ([]string, error) {
	payload, err := c.unary(ctx, func(b []byte, req uint64) []byte {
		return appendKeysReq(b, req, c.opts.epoch)
	})
	if err != nil {
		return nil, err
	}
	_, keys, err := decodeKeysResp(payload)
	return keys, stampStale(err, c.idx)
}

// Reconfig drives the server's epoch state machine on behalf of a
// reconfiguration coordinator. Reconfig frames are not themselves
// epoch-checked: they are what moves the epoch.
func (c *MuxConn) Reconfig(ctx context.Context, op ReconfigOp, target uint64, n, k int) (EpochStatus, error) {
	payload, err := c.unary(ctx, func(b []byte, req uint64) []byte {
		return appendReconfig(b, req, op, target, n, k)
	})
	if err != nil {
		return EpochStatus{}, err
	}
	_, st, err := decodeReconfigResp(payload)
	return st, err
}

// GetData opens a key-scoped relay stream: register the sink under a
// fresh request id and let the pump feed it until the caller cancels
// (clean unsubscribe, nil) or the connection dies (server lost,
// error). Cancellation sends a best-effort reader-done so the server
// drops the registration promptly instead of at connection teardown.
func (c *MuxConn) GetData(ctx context.Context, key, readerID string, deliver func(Delivery)) error {
	s, err := c.session(ctx)
	if err != nil {
		return err
	}
	// A context that died between session setup and here must not open a
	// server-side registration we would immediately have to tear down.
	if err := ctx.Err(); err != nil {
		return nil
	}
	req := c.reqSeq.Add(1)
	st := &muxStream{deliver: deliver, errc: make(chan error, 1)}
	c.mu.Lock()
	if c.sess != s {
		c.mu.Unlock()
		select {
		case <-s.done:
			return s.err
		default:
			return errConnClosed
		}
	}
	c.streams[req] = st
	c.mu.Unlock()
	bp := frameForSend()
	*bp = appendGetData(*bp, req, c.opts.epoch, key, readerID)
	if err := c.writeBuf(s, bp); err != nil {
		c.mu.Lock()
		delete(c.streams, req)
		c.mu.Unlock()
		c.teardown(s, err)
		return err
	}
	select {
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.streams, req)
		c.mu.Unlock()
		bp := frameForSend()
		*bp = appendReaderDone(*bp, req, c.opts.epoch)
		if err := c.writeBuf(s, bp); err != nil {
			// Best effort failed: without the reader-done frame the server
			// would keep relaying to a reader that left, so kill the session
			// — its conn-close cleanup unregisters every stream at once.
			c.teardown(s, err)
		}
		return nil
	case err := <-st.errc:
		// The server NACKed the stream's epoch (pump already dropped the
		// registration on both ends); surface the typed error so the
		// read retries under the new configuration.
		return err
	case <-s.done:
		// Session death races the reader loop's stream sweep; deleting
		// here too keeps the map from briefly pinning the closure.
		c.mu.Lock()
		delete(c.streams, req)
		c.mu.Unlock()
		return s.err
	}
}
