package soda

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Online reconfiguration, client side. A Config is one immutable
// cluster geometry: an epoch number, the [n,k] code, the fault
// budgets, and the conn set — stamped with the epoch at construction
// (WithConnEpoch / Loopback.ConnsAt), so every frame an operation
// sends under this Config carries its epoch and a quorum assembled
// through it can only ever contain responses from servers serving
// that epoch. Mixing two geometries in one quorum is therefore
// impossible by construction; the servers enforce it with epoch NACKs
// and the clients react by refetching the current Config.
//
// A ConfigView is the mutable cell a cluster's clients share: the
// reconfiguration coordinator installs each activated Config into it,
// and EpochWriter/EpochReader wrap the epoch-less Writer/Reader API
// around it — on a StaleEpochError they wait for the view to reach
// the epoch the server demanded and retry the whole operation under
// the new geometry.

// SeedEpoch is the configuration epoch every cluster is born at: the
// construction-time geometry, before any reconfiguration. Passing it
// explicitly (rather than a literal 0) marks a call site that REALLY
// means the seed configuration — the epochframe lint rule flags bare
// zero epochs, which are otherwise a symptom of an unthreaded epoch.
const SeedEpoch uint64 = 0

// epochNone marks the frame classes that live outside epoch
// admission entirely: error frames and the reconfiguration RPCs
// themselves (which must reach sealed and retired servers no matter
// what epoch either side believes in). The wire header still carries
// a zero, but the name records that no configuration epoch is being
// claimed.
const epochNone uint64 = 0

// Config is one immutable configuration of the cluster.
type Config struct {
	Epoch uint64
	Codec *Codec
	Conns []Conn // stamped with Epoch; one per shard index in [0, N)
	F     int    // crash fault budget; negative means the codec default
	E     int    // silent-corruption budget for SODA_err reads
	// Membership is the per-configuration health view writers, readers,
	// and the Repairer share; nil runs without quarantine.
	Membership *Membership
}

// N returns the configuration's cluster size.
func (c *Config) N() int { return c.Codec.N() }

// K returns the configuration's data-shard count.
func (c *Config) K() int { return c.Codec.K() }

// validate checks a Config's internal consistency.
func (c *Config) validate() error {
	if c == nil || c.Codec == nil {
		return fmt.Errorf("%w: config without a codec", ErrConfig)
	}
	if err := validateConns(c.Conns, c.Codec.N()); err != nil {
		return err
	}
	if c.Membership != nil && c.Membership.N() != c.Codec.N() {
		return fmt.Errorf("%w: membership for n=%d, config has n=%d", ErrConfig, c.Membership.N(), c.Codec.N())
	}
	return nil
}

// writerOpts assembles the Writer options a Config implies.
func (c *Config) writerOpts() []WriterOption {
	var opts []WriterOption
	if c.F >= 0 {
		opts = append(opts, WithWriterFaults(c.F))
	}
	if c.Membership != nil {
		opts = append(opts, WithWriterMembership(c.Membership))
	}
	return opts
}

// readerOpts assembles the Reader options a Config implies.
func (c *Config) readerOpts() []ReaderOption {
	var opts []ReaderOption
	if c.F >= 0 {
		opts = append(opts, WithReaderFaults(c.F))
	}
	if c.E > 0 {
		opts = append(opts, WithReadErrors(c.E))
	}
	if c.Membership != nil {
		opts = append(opts, WithReaderMembership(c.Membership))
	}
	return opts
}

// ConfigView is the shared, monotonically-advancing view of the
// cluster's current configuration.
type ConfigView struct {
	mu      sync.Mutex
	cur     *Config
	changed chan struct{} // closed and replaced on every install
}

// NewConfigView starts a view at the given initial configuration.
func NewConfigView(initial *Config) (*ConfigView, error) {
	if err := initial.validate(); err != nil {
		return nil, err
	}
	return &ConfigView{cur: initial, changed: make(chan struct{})}, nil
}

// Current returns the view's configuration. The returned Config is
// immutable; hold it for at most one operation and refetch.
func (v *ConfigView) Current() *Config {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cur
}

// Changed returns a channel closed at the next install after the
// call. Wait on it, then re-read Current.
func (v *ConfigView) Changed() <-chan struct{} {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.changed
}

// Install publishes a new configuration. The epoch must advance:
// reconfiguration is monotone, and a lagging coordinator must never
// roll the shared view backwards.
func (v *ConfigView) Install(c *Config) error {
	if err := c.validate(); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c.Epoch <= v.cur.Epoch {
		return fmt.Errorf("%w: installing epoch %d over %d", ErrConfig, c.Epoch, v.cur.Epoch)
	}
	v.cur = c
	close(v.changed)
	v.changed = make(chan struct{})
	return nil
}

// Await blocks until the view holds a configuration at or past epoch,
// returning it. This is how a client that was told "want epoch E" by
// a server waits out the coordinator's install.
func (v *ConfigView) Await(ctx context.Context, epoch uint64) (*Config, error) {
	for {
		v.mu.Lock()
		cur, ch := v.cur, v.changed
		v.mu.Unlock()
		if cur.Epoch >= epoch {
			return cur, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// EpochWriter is a Writer that follows the ConfigView across epoch
// flips: each Write runs under the view's current configuration, and
// a StaleEpochError (a server NACKing the epoch) waits for the view
// to advance and retries the whole two-phase write under the new
// geometry. Retrying whole operations is safe for the same reason
// writer crashes are: an interrupted write is a half-applied put the
// protocol already tolerates, and the retry mints a fresh, higher tag.
type EpochWriter struct {
	id        string
	view      *ConfigView
	onAbandon func(Tag, error)

	mu    sync.Mutex
	epoch uint64
	w     *Writer
}

// EpochWriterOption configures an EpochWriter.
type EpochWriterOption func(*EpochWriter)

// WithAbandonedTags installs a hook invoked whenever a retried Write
// abandons a minted tag: the failed attempt may have installed
// elements under that tag on fewer than a quorum of servers, and the
// retry will mint a fresh one. Migration can surface such a tag to
// readers (it is a half-applied put, legal to linearize), so history
// checkers need the abandonment recorded.
func WithAbandonedTags(fn func(Tag, error)) EpochWriterOption {
	return func(ew *EpochWriter) { ew.onAbandon = fn }
}

// NewEpochWriter builds a view-following writer with the given unique
// writer id.
func NewEpochWriter(id string, view *ConfigView, opts ...EpochWriterOption) (*EpochWriter, error) {
	ew := &EpochWriter{id: id, view: view}
	for _, opt := range opts {
		opt(ew)
	}
	if _, err := ew.writerFor(view.Current()); err != nil {
		return nil, err
	}
	return ew, nil
}

// writerFor returns the cached inner Writer for cfg, rebuilding it
// when the epoch moved.
func (ew *EpochWriter) writerFor(cfg *Config) (*Writer, error) {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.w != nil && ew.epoch == cfg.Epoch {
		return ew.w, nil
	}
	w, err := NewWriter(ew.id, cfg.Codec, cfg.Conns, cfg.writerOpts()...)
	if err != nil {
		return nil, err
	}
	ew.w, ew.epoch = w, cfg.Epoch
	return w, nil
}

// retryStale reacts to one failed attempt under cfg: wait out the flip
// a StaleEpochError names, or — for a bare unavailability that may be
// a flip observed only as connection noise — retry immediately if the
// view has already advanced. It returns false when the error is not
// reconfiguration-shaped and the caller should surface it.
func retryStale(ctx context.Context, view *ConfigView, cfg *Config, err error) (bool, error) {
	var se *StaleEpochError
	if errors.As(err, &se) {
		if _, werr := view.Await(ctx, se.Want); werr != nil {
			return false, fmt.Errorf("awaiting epoch %d: %w (after %w)", se.Want, werr, err)
		}
		return true, nil
	}
	if errors.Is(err, ErrUnavailable) && view.Current().Epoch > cfg.Epoch {
		return true, nil
	}
	return false, nil
}

// Write performs one atomic write under the current configuration,
// following the view across any epoch flips it collides with.
func (ew *EpochWriter) Write(ctx context.Context, key string, value []byte) (Tag, error) {
	for {
		cfg := ew.view.Current()
		w, err := ew.writerFor(cfg)
		if err != nil {
			return Tag{}, err
		}
		t, err := w.Write(ctx, key, value)
		if err == nil {
			return t, nil
		}
		retry, rerr := retryStale(ctx, ew.view, cfg, err)
		if rerr != nil {
			return Tag{}, rerr
		}
		if !retry {
			return Tag{}, err
		}
		if !t.IsZero() && ew.onAbandon != nil {
			// The retry will mint a fresh tag; t is now a half-applied
			// put some servers may hold (and migration may surface).
			ew.onAbandon(t, err)
		}
	}
}

// EpochReader is the Reader counterpart of EpochWriter: each Read runs
// under the view's current configuration and epoch NACKs trigger a
// refetch-and-retry. A fresh Read under the new epoch re-registers at
// every server (the registration handoff — servers dropped the old
// registrations at the flip) and fixes a new target tag; atomicity
// carries over because migration preserved every completed write.
type EpochReader struct {
	id   string
	view *ConfigView

	mu    sync.Mutex
	epoch uint64
	r     *Reader
}

// NewEpochReader builds a view-following reader with the given id
// prefix.
func NewEpochReader(id string, view *ConfigView) (*EpochReader, error) {
	er := &EpochReader{id: id, view: view}
	if _, err := er.readerFor(view.Current()); err != nil {
		return nil, err
	}
	return er, nil
}

func (er *EpochReader) readerFor(cfg *Config) (*Reader, error) {
	er.mu.Lock()
	defer er.mu.Unlock()
	if er.r != nil && er.epoch == cfg.Epoch {
		return er.r, nil
	}
	r, err := NewReader(er.id, cfg.Codec, cfg.Conns, cfg.readerOpts()...)
	if err != nil {
		return nil, err
	}
	er.r, er.epoch = r, cfg.Epoch
	return r, nil
}

// Read performs one atomic read under the current configuration,
// following the view across any epoch flips it collides with.
func (er *EpochReader) Read(ctx context.Context, key string) (ReadResult, error) {
	for {
		cfg := er.view.Current()
		r, err := er.readerFor(cfg)
		if err != nil {
			return ReadResult{}, err
		}
		res, err := r.Read(ctx, key)
		if err == nil {
			return res, nil
		}
		retry, rerr := retryStale(ctx, er.view, cfg, err)
		if rerr != nil {
			return ReadResult{}, rerr
		}
		if !retry {
			return ReadResult{}, err
		}
	}
}
