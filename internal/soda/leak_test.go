package soda

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// checkNoLeaks arms a goroutine-leak check for the calling test: it
// snapshots the live goroutines now and, at cleanup time, polls until
// every goroutine created during the test has exited (teardown is
// asynchronous — conn closes and context cancels race the final
// poll). Call it FIRST in the test, before any cluster or transport
// is built, so the t.Cleanup LIFO order runs the check after the
// test's own teardown.
//
// Allowlisted (long-lived by design, not leaks):
//   - (*workerPool).work: the shared erasure-codec worker pool parks
//     its goroutines process-wide and never retires them.
//   - (*Repairer).Run: the anti-entropy background loop; tests that
//     start one stop it via context, but the stop is asynchronous.
//   - (*durability).background: the durable server's snapshot/
//     truncation loop, stopped asynchronously by Close.
//
// Everything else that outlives the test — mux readLoops, TCP accept
// loops and per-conn handlers, stream relays, quorum waiters — is a
// real leak: those exact goroutines pin conns and registers, and a
// suite that leaks them goes flaky under -race and -count=N.
func checkNoLeaks(t *testing.T) {
	t.Helper()
	baseline := make(map[string]bool)
	for _, g := range goroutineStanzas() {
		baseline[goroutineID(g)] = true
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for _, g := range goroutineStanzas() {
				if baseline[goroutineID(g)] || allowlistedGoroutine(g) {
					continue
				}
				leaked = append(leaked, g)
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("%d goroutine(s) leaked by this test:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// goroutineStanzas returns one stack-dump stanza per live goroutine,
// excluding the calling one.
func goroutineStanzas() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	stanzas := strings.Split(strings.TrimSpace(string(buf)), "\n\n")
	out := stanzas[:0]
	for _, g := range stanzas[1:] { // stanza 0 is this goroutine
		out = append(out, g)
	}
	return out
}

// goroutineID extracts the "goroutine N" prefix that identifies a
// stanza across snapshots.
func goroutineID(stanza string) string {
	header, _, _ := strings.Cut(stanza, "\n")
	if i := strings.Index(header, " ["); i >= 0 {
		return header[:i]
	}
	return header
}

func allowlistedGoroutine(stanza string) bool {
	for _, frame := range []string{
		"(*workerPool).work",
		"(*Repairer).Run",
		"(*durability).background",
		"testing.(*T).Run", // parent test goroutines parked in Wait
		"testing.tRunner",  // subtest runners not yet reaped
		"runtime.gc",       // GC workers spawned mid-test
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"time.goFunc", // expiring timers from t.Cleanup contexts
	} {
		if strings.Contains(stanza, frame) {
			return true
		}
	}
	return false
}

// TestCheckNoLeaksHelper pins the helper itself: a goroutine parked
// past cleanup is caught, an exiting one is waited for, and the
// allowlist covers the sanctioned background loops.
func TestCheckNoLeaksHelper(t *testing.T) {
	release := make(chan struct{})

	t.Run("waits for async exits", func(t *testing.T) {
		checkNoLeaks(t)
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Exits shortly AFTER the test body returns: the poll loop
			// must absorb it rather than flag it.
			time.Sleep(50 * time.Millisecond)
		}()
	})

	t.Run("baseline is per-call", func(t *testing.T) {
		// A goroutine started BEFORE checkNoLeaks is baseline, not a leak.
		go func() { <-release }()
		checkNoLeaks(t)
	})
	close(release)

	// The detection direction (a parked goroutine IS reported) is pinned
	// without failing the suite: run the same scan the cleanup runs and
	// assert it sees the straggler.
	park := make(chan struct{})
	go func() { <-park }()
	time.Sleep(10 * time.Millisecond)
	found := false
	for _, g := range goroutineStanzas() {
		if !allowlistedGoroutine(g) && strings.Contains(g, "TestCheckNoLeaksHelper") {
			found = true
		}
	}
	close(park)
	if !found {
		t.Fatalf("scan missed a parked goroutine; stanzas=%d", len(goroutineStanzas()))
	}
}
