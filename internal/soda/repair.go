package soda

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"
)

// RADON-style repair (Konwar et al., arXiv:1605.05717): SODA tolerates
// crashes and corruption but never heals, so every fault permanently
// burns quorum margin. The Repairer closes the loop: it watches the
// shared Membership view for suspects, regenerates each suspect's
// coded element from k live survivors (the [n,k] code makes any
// server's shard a deterministic function of any k others), installs
// it with RepairPut — which the server accepts only at a tag >= its
// current one, so repair can never roll a server backwards — and
// readmits the server to quorums.
//
// Why repair preserves atomicity: quarantined servers are invisible to
// membership-aware quorums, so during repair the cluster simply runs
// with a smaller margin, which is SODA's existing fault model. The
// repaired element always carries the highest tag that k live servers
// jointly vouch for, and the tag-monotone install means a readmitted
// server holds everything it held before the fault, possibly newer.
// The reader's f < k argument — a returned tag's k holders must
// intersect every later n-f quorum — needs holders never to stop
// holding, which is exactly the RepairPut invariant; a rejoined server
// that is merely stale is indistinguishable from one that missed a few
// put-datas, a state the protocol already handles.

var (
	// ErrRepairQuorum: fewer than k live servers agree on any single
	// version, so no element can be regenerated yet (for example,
	// mid-flight writes have the survivors scattered across tags).
	// The repair loop backs off and retries.
	ErrRepairQuorum = errors.New("soda: repair: no version with k matching elements")
)

// RepairOutcome says how a repair attempt concluded successfully.
type RepairOutcome int

const (
	// RepairInstalled: the server accepted the regenerated element.
	RepairInstalled RepairOutcome = iota
	// RepairAlreadyCurrent: the server rejected the install because it
	// already holds a tag newer than the regenerated one — proof of
	// health, so it is readmitted without a write.
	RepairAlreadyCurrent
	// RepairEmptyRegister: every donor reports the unwritten state;
	// there is nothing to regenerate, and the reachable server is
	// readmitted as-is.
	RepairEmptyRegister
)

func (o RepairOutcome) String() string {
	switch o {
	case RepairInstalled:
		return "installed"
	case RepairAlreadyCurrent:
		return "already-current"
	case RepairEmptyRegister:
		return "empty-register"
	}
	return "unknown"
}

// RepairEvent is the observability record of one per-key repair
// attempt, delivered to the WithRepairEvents hook. Key is empty when
// the whole namespace was empty and the attempt degenerated into a
// reachability probe.
type RepairEvent struct {
	Server  int
	Key     string
	Outcome RepairOutcome
	Tag     Tag   // tag installed or confirmed
	Corrupt []int // donors the rebuild located as corrupt, if any
	Err     error // non-nil: the attempt failed and will be retried
}

// Repairer is one cluster's anti-entropy healer. Run it once per
// cluster next to the clients that share its Membership view.
type Repairer struct {
	codec    *Codec
	conns    []Conn
	m        *Membership
	interval time.Duration
	backoff  Backoff
	onEvent  func(RepairEvent)
}

// RepairerOption configures a Repairer.
type RepairerOption func(*Repairer) error

// WithRepairInterval sets the poll floor of the repair loop: how often
// it rechecks suspects absent a membership change. Changes via the
// Membership view wake it immediately regardless.
func WithRepairInterval(d time.Duration) RepairerOption {
	return func(rp *Repairer) error {
		if d <= 0 {
			return fmt.Errorf("%w: repair interval %v", ErrConfig, d)
		}
		rp.interval = d
		return nil
	}
}

// WithRepairBackoff sets the per-server retry schedule applied after a
// failed repair attempt.
func WithRepairBackoff(b Backoff) RepairerOption {
	return func(rp *Repairer) error {
		rp.backoff = b
		return nil
	}
}

// WithRepairEvents installs a hook invoked synchronously after every
// repair attempt — tests and the demo use it to watch the lifecycle.
func WithRepairEvents(fn func(RepairEvent)) RepairerOption {
	return func(rp *Repairer) error {
		rp.onEvent = fn
		return nil
	}
}

// NewRepairer builds the repairer for a cluster. The conns are the
// repairer's own (it may dial concurrently with writers and readers),
// and the Membership view must be the one those writers and readers
// share, or nobody will see the healing.
func NewRepairer(codec *Codec, conns []Conn, m *Membership, opts ...RepairerOption) (*Repairer, error) {
	if err := validateConns(conns, codec.N()); err != nil {
		return nil, err
	}
	if m == nil || m.N() != codec.N() {
		return nil, fmt.Errorf("%w: repairer needs a membership view for n=%d", ErrConfig, codec.N())
	}
	rp := &Repairer{
		codec:    codec,
		conns:    conns,
		m:        m,
		interval: time.Second,
		backoff:  Backoff{Base: 20 * time.Millisecond, Max: 2 * time.Second},
	}
	for _, opt := range opts {
		if err := opt(rp); err != nil {
			return nil, err
		}
	}
	return rp, nil
}

func (rp *Repairer) event(ev RepairEvent) {
	if rp.onEvent != nil {
		rp.onEvent(ev)
	}
}

// Run is the anti-entropy loop: wake on membership changes (or the
// interval floor), attempt one repair per due suspect, back off
// per-server on failure. It blocks until ctx ends.
func (rp *Repairer) Run(ctx context.Context) error {
	type pending struct {
		b    Backoff
		next time.Time
	}
	pend := make(map[int]*pending)
	for {
		// Snapshot the change channel before reading the view, so a
		// transition between "read suspects" and "wait" still wakes us.
		changed := rp.m.Changed()
		now := time.Now()
		var wake time.Time
		for _, s := range rp.m.Suspects() {
			if rp.m.Health(s) != Suspect {
				continue // someone else's attempt is in flight
			}
			p := pend[s]
			if p == nil {
				p = &pending{b: rp.backoff}
				pend[s] = p
			}
			if now.Before(p.next) {
				if wake.IsZero() || p.next.Before(wake) {
					wake = p.next
				}
				continue
			}
			if _, err := rp.RepairOnce(ctx, s); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if errors.Is(err, ErrStaleEpoch) {
					// The cluster reconfigured out from under this
					// repairer: its conns are stamped with a retired
					// epoch, so every further attempt would bounce too.
					// Abort rather than spin — the new configuration's
					// repairer owns the healing now.
					return fmt.Errorf("soda: repair: configuration epoch moved: %w", err)
				}
				p.next = time.Now().Add(p.b.Next())
				if wake.IsZero() || p.next.Before(wake) {
					wake = p.next
				}
			} else {
				delete(pend, s)
			}
		}
		d := rp.interval
		if !wake.IsZero() {
			if until := time.Until(wake); until < d {
				d = max(until, time.Millisecond)
			}
		}
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-changed:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// donation is one live server's answer to the collection phase.
type donation struct {
	server int
	ver    version
	elem   []byte
}

// RepairOnce runs a single repair attempt for a Suspect server:
// enumerate the keys the live servers hold, and for each one collect
// its elements, regenerate the suspect's shard of the highest version
// k donors vouch for, and install it with RepairPut; then readmit the
// server. The returned outcome is the strongest across the keys (any
// install wins over already-current wins over empty). On failure the
// server is left Suspect (with the failure as its cause) for the loop
// to retry — a partial repair is safe to re-run, since every install
// is tag-monotone and idempotent.
func (rp *Repairer) RepairOnce(ctx context.Context, target int) (RepairOutcome, error) {
	if !rp.m.MarkRepairing(target) {
		return 0, fmt.Errorf("%w: server %d is %v, not suspect", ErrConfig, target, rp.m.Health(target))
	}
	outcome, err := rp.repair(ctx, target)
	if err != nil {
		// Back to Suspect so the loop retries; the cause is the
		// failure, replacing the original evidence.
		rp.m.MarkSuspect(target, fmt.Errorf("repair failed: %w", err))
		rp.event(RepairEvent{Server: target, Err: err})
		return 0, err
	}
	// Readmission can lose to suspicion that arrived mid-repair; the
	// loop will then go around again, which is the conservative side.
	rp.m.MarkLive(target)
	return outcome, nil
}

func (rp *Repairer) repair(ctx context.Context, target int) (RepairOutcome, error) {
	keys, err := rp.keyUnion(ctx, target)
	if err != nil {
		return 0, err
	}
	if len(keys) == 0 {
		// Nothing is written anywhere the live servers know of: there
		// is no element to regenerate for any key. A reachability probe
		// (the cheapest unary) proves the target answers, which is all
		// readmission needs.
		if _, err := rp.conns[connIndex(rp.conns, target)].Keys(ctx); err != nil {
			return 0, fmt.Errorf("reachability probe of server %d: %w", target, err)
		}
		rp.event(RepairEvent{Server: target, Outcome: RepairEmptyRegister})
		return RepairEmptyRegister, nil
	}
	// Heal every key; the aggregate outcome is the strongest observed
	// (RepairOutcome orders installed < already-current < empty).
	outcome := RepairEmptyRegister
	for _, key := range keys {
		o, err := rp.repairKey(ctx, target, key)
		if err != nil {
			return 0, err
		}
		if o < outcome {
			outcome = o
		}
	}
	return outcome, nil
}

// keyUnion enumerates the keys held across the live donors — the
// namespace the target must be healed over. Donors that fail the
// enumeration are marked suspect and skipped; at least one must
// answer.
func (rp *Repairer) keyUnion(ctx context.Context, target int) ([]string, error) {
	var (
		mu       sync.Mutex
		union    = make(map[string]struct{})
		answers  int
		staleErr error
	)
	var wg sync.WaitGroup
	for _, c := range rp.conns {
		if c.Index() == target || !rp.m.IsLive(c.Index()) {
			continue
		}
		wg.Add(1)
		go func(c Conn) {
			defer wg.Done()
			keys, err := c.Keys(ctx)
			if err != nil {
				if errors.Is(err, ErrStaleEpoch) {
					mu.Lock()
					if staleErr == nil {
						staleErr = err
					}
					mu.Unlock()
				}
				reportSuspect(rp.m, ctx, c.Index(), err)
				return
			}
			mu.Lock()
			answers++
			for _, k := range keys {
				union[k] = struct{}{}
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if answers == 0 {
		if staleErr != nil {
			// Every donor bounced the enumeration for carrying a retired
			// epoch: the quorum shortfall IS a reconfiguration, and the
			// caller must see it as one.
			return nil, fmt.Errorf("%w: no live donor answered the key enumeration: %w", ErrRepairQuorum, staleErr)
		}
		return nil, fmt.Errorf("%w: no live donor answered the key enumeration", ErrRepairQuorum)
	}
	keys := make([]string, 0, len(union))
	for k := range union {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys, nil
}

func (rp *Repairer) repairKey(ctx context.Context, target int, key string) (RepairOutcome, error) {
	donations, err := rp.collect(ctx, target, key)
	if err != nil {
		return 0, err
	}
	ver, elems := chooseVersion(donations, rp.codec.K())
	if elems == nil {
		return 0, fmt.Errorf("%w: key %q, %d donors", ErrRepairQuorum, key, len(donations))
	}

	// Probe the target before paying for a rebuild: a node that
	// recovered its own state from disk often holds a tag strictly
	// newer than anything k donors agree on, and shipping it a stale
	// element just to have RepairPut bounce it wastes the decode and
	// the transfer. Equal tags still go through RepairPut — reinstall
	// overwrites a rotted element without raising the tag.
	tc := rp.conns[connIndex(rp.conns, target)]
	if tTag, _, _, tErr := tc.GetElem(ctx, key); tErr == nil && ver.tag.Less(tTag) {
		rp.event(RepairEvent{Server: target, Key: key, Outcome: RepairAlreadyCurrent, Tag: ver.tag})
		return RepairAlreadyCurrent, nil
	}

	var install []byte
	var corrupt []int
	outcome := RepairInstalled
	if ver.tag.IsZero() {
		// The key is unwritten as far as the live servers agree:
		// nothing to regenerate. The RepairPut below degenerates into a
		// reachability probe for this key.
		outcome = RepairEmptyRegister
	} else {
		install, corrupt, err = rp.rebuild(target, ver, elems)
		if err != nil {
			return 0, err
		}
		// Donors the rebuild caught lying join the repair queue.
		for _, c := range corrupt {
			if c != target {
				rp.m.MarkSuspect(c, errCorruptElement)
			}
		}
	}

	accepted, err := tc.RepairPut(ctx, key, ver.tag, install, ver.vlen)
	if err != nil {
		return 0, fmt.Errorf("repair-put of key %q to server %d: %w", key, target, err)
	}
	if !accepted {
		// The server already holds a newer tag than anything k live
		// servers agree on — it is ahead, not behind. Reachable and
		// tag-monotone: that is health.
		outcome = RepairAlreadyCurrent
	}
	rp.event(RepairEvent{Server: target, Key: key, Outcome: outcome, Tag: ver.tag, Corrupt: corrupt})
	return outcome, nil
}

// collect fans msgGetElem for key out to every live server except the
// target and gathers the well-formed answers. Transport failures mark
// the donor suspect (it will get its own repair) but do not fail the
// collection unless fewer than k donors remain.
func (rp *Repairer) collect(ctx context.Context, target int, key string) ([]donation, error) {
	var (
		mu        sync.Mutex
		donations []donation
		staleErr  error
	)
	var wg sync.WaitGroup
	for _, c := range rp.conns {
		if c.Index() == target || !rp.m.IsLive(c.Index()) {
			continue
		}
		wg.Add(1)
		go func(c Conn) {
			defer wg.Done()
			t, elem, vlen, err := c.GetElem(ctx, key)
			if err != nil {
				if errors.Is(err, ErrStaleEpoch) {
					mu.Lock()
					if staleErr == nil {
						staleErr = err
					}
					mu.Unlock()
				}
				reportSuspect(rp.m, ctx, c.Index(), err)
				return
			}
			// Well-formedness mirrors the read path: an element whose
			// size contradicts its claimed vlen contributes nothing.
			if !t.IsZero() && (vlen <= 0 || len(elem) != rp.codec.shardSize(vlen)) {
				return
			}
			mu.Lock()
			donations = append(donations, donation{server: c.Index(), ver: version{tag: t, vlen: vlen}, elem: elem})
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if len(donations) < rp.codec.K() {
		if staleErr != nil {
			return nil, fmt.Errorf("%w: only %d of %d live servers answered, need k=%d: %w",
				ErrRepairQuorum, len(donations), len(rp.conns), rp.codec.K(), staleErr)
		}
		return nil, fmt.Errorf("%w: only %d of %d live servers answered, need k=%d",
			ErrRepairQuorum, len(donations), len(rp.conns), rp.codec.K())
	}
	return donations, nil
}

// chooseVersion picks the highest (tag, vlen) version at least k
// donors agree on — elements are keyed by the pair exactly like the
// read path, so a donor lying about vlen only pollutes its own bucket.
// It returns a nil map when no version reaches k.
func chooseVersion(donations []donation, k int) (version, map[int][]byte) {
	buckets := make(map[version]map[int][]byte)
	for _, d := range donations {
		b := buckets[d.ver]
		if b == nil {
			b = make(map[int][]byte)
			buckets[d.ver] = b
		}
		if _, dup := b[d.server]; !dup {
			b[d.server] = d.elem
		}
	}
	var best version
	var bestElems map[int][]byte
	for v, b := range buckets {
		if len(b) < k {
			continue
		}
		if bestElems == nil || best.tag.Less(v.tag) ||
			(best.tag == v.tag && v.vlen > best.vlen) {
			best, bestElems = v, b
		}
	}
	return best, bestElems
}

// rebuild regenerates the target's coded element from the donated
// shards. With the rs-view generator and donors to spare, the syndrome
// decoder cross-checks the donors while it rebuilds — a corrupt donor
// inside the decoding radius is located (and reported) instead of
// silently poisoning the repaired element. Other generators erasure-
// decode from k shards and trust them.
func (rp *Repairer) rebuild(target int, ver version, elems map[int][]byte) ([]byte, []int, error) {
	n := rp.codec.N()
	shards := make([][]byte, n)
	for i, el := range elems {
		shards[i] = slices.Clone(el)
	}
	if rp.codec.MaxReadErrors() > 0 {
		corrupt, err := rp.codec.enc.DecodeErrors(shards)
		if err != nil {
			return nil, nil, fmt.Errorf("repair decode: %w", err)
		}
		return shards[target], corrupt, nil
	}
	shards[target] = make([]byte, 0, rp.codec.shardSize(ver.vlen))
	if err := rp.codec.enc.ReconstructInto(shards); err != nil {
		return nil, nil, fmt.Errorf("repair reconstruct: %w", err)
	}
	return shards[target], nil, nil
}

// connIndex finds the conn for a shard index (conns are validated to
// cover every index exactly once).
func connIndex(conns []Conn, idx int) int {
	for i, c := range conns {
		if c.Index() == idx {
			return i
		}
	}
	return -1
}
