package soda

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: one NetServer wraps a Server state machine behind a
// listener, and tcpConn implements the client Conn over per-operation
// connections. get-tag and put-data are single request/response
// exchanges; get-data turns its connection into a one-way delivery
// stream that lives until the reader is done.

// NetServer serves one SODA server over TCP with the wire.go framing.
type NetServer struct {
	core *Server
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenAndServe starts serving core on addr (use "127.0.0.1:0" for
// an ephemeral port) and returns once the listener is live.
func ListenAndServe(core *Server, addr string) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ns := &NetServer{core: core, ln: ln, conns: make(map[net.Conn]struct{})}
	ns.wg.Add(1)
	go ns.acceptLoop()
	return ns, nil
}

// Addr returns the listener's address, for building client conns.
func (ns *NetServer) Addr() string { return ns.ln.Addr().String() }

// Close stops the listener, disconnects every client (unregistering
// their readers), and waits for the handlers to finish. The state
// machine itself survives — a NetServer can model a server that
// crashes and later recovers with its storage intact.
func (ns *NetServer) Close() error {
	ns.mu.Lock()
	ns.closed = true
	err := ns.ln.Close()
	for c := range ns.conns {
		c.Close()
	}
	ns.mu.Unlock()
	ns.wg.Wait()
	return err
}

func (ns *NetServer) acceptLoop() {
	defer ns.wg.Done()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ns.mu.Lock()
		if ns.closed {
			ns.mu.Unlock()
			conn.Close()
			return
		}
		ns.conns[conn] = struct{}{}
		ns.wg.Add(1)
		ns.mu.Unlock()
		go ns.handle(conn)
	}
}

func (ns *NetServer) handle(conn net.Conn) {
	defer ns.wg.Done()
	defer func() {
		ns.mu.Lock()
		delete(ns.conns, conn)
		ns.mu.Unlock()
		conn.Close()
	}()

	var (
		rid        string
		registered bool
		sink       *relaySink
	)
	defer func() {
		if registered {
			ns.core.Unregister(rid)
			sink.close()
		}
	}()

	br := bufio.NewReader(conn)
	var buf []byte
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			return
		}
		buf = payload
		switch payload[0] {
		case msgGetTag:
			if registered {
				return // the pump owns the write side; just close
			}
			if writeFrame(conn, encodeTagResp(ns.core.GetTag())) != nil {
				return
			}
		case msgPutData:
			if registered {
				return
			}
			t, elem, vlen, err := decodePutData(payload)
			if err != nil {
				ns.fail(conn, "malformed put-data: "+err.Error())
				return
			}
			ns.core.PutData(t, elem, vlen)
			if writeFrame(conn, encodeAck()) != nil {
				return
			}
		case msgGetElem:
			if registered {
				return
			}
			t, elem, vlen := ns.core.Snapshot()
			if writeFrame(conn, encodeElemResp(t, elem, vlen)) != nil {
				return
			}
		case msgRepairPut:
			if registered {
				return
			}
			t, elem, vlen, err := decodeRepairPut(payload)
			if err != nil {
				ns.fail(conn, "malformed repair-put: "+err.Error())
				return
			}
			accepted := ns.core.RepairPut(t, elem, vlen)
			if writeFrame(conn, encodeRepairResp(accepted)) != nil {
				return
			}
		case msgGetData:
			if registered {
				return
			}
			r, err := decodeGetData(payload)
			if err != nil {
				ns.fail(conn, "malformed get-data: "+err.Error())
				return
			}
			rid, registered = r, true
			// After registration this connection is a one-way
			// delivery stream owned by the pump goroutine; the read
			// loop continues only to observe reader-done or EOF.
			sink = newRelaySink(relayQueueDepth)
			initial := ns.core.Register(rid, sink.send)
			sink.send(initial)
			ns.wg.Add(1)
			go ns.pump(conn, sink)
		case msgReaderDone:
			return // deferred unregister + close
		default:
			// A type byte from a future protocol version (or garbage):
			// tell the peer explicitly instead of a silent close, so a
			// version-skewed client degrades into a legible
			// *RemoteError rather than a mystery EOF.
			if registered {
				return // the pump owns the write side; just close
			}
			ns.fail(conn, fmt.Sprintf("unknown message type %#x", payload[0]))
			return
		}
	}
}

// fail sends a best-effort explicit error frame before the handler
// drops the connection. The write gets a short deadline of its own: a
// peer that stopped reading must not pin the handler.
func (ns *NetServer) fail(conn net.Conn, msg string) {
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	writeFrame(conn, encodeError(msg))
}

// pump drains a registered reader's delivery queue onto its
// connection. It closes the connection when the queue dies — either
// the handler is done with it or the reader was too slow and the
// queue overflowed — so the reader observes the end of the stream.
func (ns *NetServer) pump(conn net.Conn, sink *relaySink) {
	defer ns.wg.Done()
	for d := range sink.ch {
		if err := writeFrame(conn, encodeData(d)); err != nil {
			break
		}
	}
	conn.Close()
}

// relayQueueDepth bounds how many undelivered relays a reader may
// have in flight before the server declares it dead. Relays are one
// per concurrent put-data, so depth is write concurrency, not data
// volume.
const relayQueueDepth = 1024

// relaySink adapts the Server's synchronous relay callback to a
// non-blocking bounded queue: a put-data must never block on a slow
// reader connection.
type relaySink struct {
	mu     sync.Mutex
	ch     chan Delivery
	closed bool
}

func newRelaySink(depth int) *relaySink {
	return &relaySink{ch: make(chan Delivery, depth)}
}

func (s *relaySink) send(d Delivery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.ch <- d:
	default:
		// Overflow: the reader is not draining. Kill the stream
		// rather than block the server's put-data path.
		s.closed = true
		close(s.ch)
	}
}

func (s *relaySink) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// tcpConn is the client-side Conn for one server address.
type tcpConn struct {
	idx          int
	addr         string
	dialTimeout  time.Duration
	dialAttempts int
	backoff      Backoff
}

// Dial policy defaults: a dial that has not completed in dialTimeout
// is as dead as a refused one — without the cap, a blackholed server
// would pin a quorum goroutine until the caller's whole context
// expired — and refused dials are retried a few times with backoff so
// a server mid-restart is not instantly written off.
const (
	defaultDialTimeout  = 2 * time.Second
	defaultDialAttempts = 3
)

// TCPOption configures a client-side TCP conn.
type TCPOption func(*tcpConn)

// WithDialTimeout caps each dial attempt; the effective deadline is
// the earlier of this and the operation context's.
func WithDialTimeout(d time.Duration) TCPOption {
	return func(c *tcpConn) { c.dialTimeout = d }
}

// WithDialRetry sets how many times an operation attempts the dial
// (minimum 1) and the backoff schedule between attempts.
func WithDialRetry(attempts int, b Backoff) TCPOption {
	return func(c *tcpConn) {
		if attempts < 1 {
			attempts = 1
		}
		c.dialAttempts = attempts
		c.backoff = b
	}
}

// TCPConn returns a Conn that dials addr for each operation, acting
// for the server at shard index idx.
func TCPConn(idx int, addr string, opts ...TCPOption) Conn {
	c := &tcpConn{
		idx:          idx,
		addr:         addr,
		dialTimeout:  defaultDialTimeout,
		dialAttempts: defaultDialAttempts,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// TCPConns builds the conn set for a cluster from its address list,
// in shard-index order.
func TCPConns(addrs []string, opts ...TCPOption) []Conn {
	conns := make([]Conn, len(addrs))
	for i, a := range addrs {
		conns[i] = TCPConn(i, a, opts...)
	}
	return conns
}

func (c *tcpConn) Index() int { return c.idx }

// dial connects with the per-attempt deadline and bounded retry. The
// context always wins: cancellation aborts both an in-flight dial
// (DialContext honors it) and any backoff sleep, so a hung dial can
// never stall a quorum past its caller's cancellation.
func (c *tcpConn) dial(ctx context.Context) (net.Conn, error) {
	d := net.Dialer{Timeout: c.dialTimeout}
	var conn net.Conn
	err := retry(ctx, c.dialAttempts, c.backoff, func() error {
		var err error
		conn, err = d.DialContext(ctx, "tcp", c.addr)
		return err
	})
	return conn, err
}

// unary performs one request/response exchange.
func (c *tcpConn) unary(ctx context.Context, req []byte) ([]byte, error) {
	conn, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(0, 1)) })
	defer stop()
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	return payload, err
}

func (c *tcpConn) GetTag(ctx context.Context) (Tag, error) {
	payload, err := c.unary(ctx, encodeGetTag())
	if err != nil {
		return Tag{}, err
	}
	return decodeTagResp(payload)
}

func (c *tcpConn) PutData(ctx context.Context, t Tag, elem []byte, vlen int) error {
	payload, err := c.unary(ctx, encodePutData(t, elem, vlen))
	if err != nil {
		return err
	}
	return decodeAck(payload)
}

func (c *tcpConn) GetElem(ctx context.Context) (Tag, []byte, int, error) {
	payload, err := c.unary(ctx, encodeGetElem())
	if err != nil {
		return Tag{}, nil, 0, err
	}
	return decodeElemResp(payload)
}

func (c *tcpConn) RepairPut(ctx context.Context, t Tag, elem []byte, vlen int) (bool, error) {
	payload, err := c.unary(ctx, encodeRepairPut(t, elem, vlen))
	if err != nil {
		return false, err
	}
	return decodeRepairResp(payload)
}

func (c *tcpConn) GetData(ctx context.Context, readerID string, deliver func(Delivery)) error {
	conn, err := c.dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	// On cancellation, tell the server the reader is done (best
	// effort) and tear the stream down; the blocked readFrame below
	// then fails and the nil return reports a clean unsubscribe. The
	// mutex keeps the reader-done frame from interleaving with the
	// registration frame if cancellation lands mid-write.
	var wmu sync.Mutex
	stop := context.AfterFunc(ctx, func() {
		wmu.Lock()
		conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		writeFrame(conn, encodeReaderDone())
		wmu.Unlock()
		conn.Close()
	})
	defer stop()
	wmu.Lock()
	err = writeFrame(conn, encodeGetData(readerID))
	wmu.Unlock()
	if err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	var buf []byte
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil // our own cancellation
			}
			return err
		}
		buf = payload // reuse: decodeData copies the element out
		d, err := decodeData(payload)
		if err != nil {
			return err
		}
		d.Server = c.idx
		deliver(d)
	}
}
