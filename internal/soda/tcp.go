package soda

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport, server side plus the dial-per-op client.
//
// The server speaks the multiplexed wire protocol: one connection
// carries any number of concurrent request/response exchanges routed
// by request id, and any number of key-scoped relay streams (get-data
// registrations), each identified by the request id that opened it.
// All outbound frames for a connection funnel through one connWriter
// goroutine with a bounded queue: responses and relay deliveries are
// batched into a single flush whenever the queue has more than one
// frame waiting, which is what makes relay fan-out cheap under load.
//
// Two client transports implement Conn over this server: MuxConn
// (mux.go) — one persistent pipelined connection, the fast path — and
// tcpConn below, which dials per operation. The dialing client is kept
// deliberately: it is the "before" in the transport benchmark and a
// conservative fallback.

// NetServer serves one SODA server over TCP with the wire.go framing.
type NetServer struct {
	core *Server
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenAndServe starts serving core on addr (use "127.0.0.1:0" for
// an ephemeral port) and returns once the listener is live.
func ListenAndServe(core *Server, addr string) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ns := &NetServer{core: core, ln: ln, conns: make(map[net.Conn]struct{})}
	ns.wg.Add(1)
	go ns.acceptLoop()
	return ns, nil
}

// Addr returns the listener's address, for building client conns.
func (ns *NetServer) Addr() string { return ns.ln.Addr().String() }

// Core exposes the state machine being served — the handle a process
// supervisor needs to Sync, SnapshotNow, or Close a durable server
// around the transport's lifecycle.
func (ns *NetServer) Core() *Server { return ns.core }

// NumConns returns the number of client connections currently open —
// how tests prove the mux transport really multiplexes instead of
// dialing.
func (ns *NetServer) NumConns() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.conns)
}

// Close stops the listener, disconnects every client (unregistering
// their readers), and waits for the handlers to finish. The state
// machine itself survives — a NetServer can model a server that
// crashes and later recovers with its storage intact.
func (ns *NetServer) Close() error {
	ns.mu.Lock()
	ns.closed = true
	err := ns.ln.Close()
	for c := range ns.conns {
		c.Close()
	}
	ns.mu.Unlock()
	ns.wg.Wait()
	return err
}

func (ns *NetServer) acceptLoop() {
	defer ns.wg.Done()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ns.mu.Lock()
		if ns.closed {
			ns.mu.Unlock()
			conn.Close()
			return
		}
		ns.conns[conn] = struct{}{}
		ns.wg.Add(1)
		ns.mu.Unlock()
		go ns.handle(conn)
	}
}

// outQueueDepth bounds how many undelivered outbound frames one
// connection may queue. Unary responses block the connection's read
// loop when it fills (backpressure on that client's own pipelining);
// relay deliveries never block — overflow means the reader is not
// draining, and the stream's whole connection is killed rather than
// stalling the put-data path that triggered the relay.
const outQueueDepth = 4096

// streamSub is one live get-data registration on a connection, keyed
// by the request id that opened it.
type streamSub struct {
	key string
	rid string
}

// watchEpochs is a per-connection goroutine that kills relay streams
// when the server's configuration epoch moves: every open get-data
// stream gets an epoch NACK on its own request id (so the client's
// read fails with a typed StaleEpochError and re-registers under the
// new epoch) and its registration is dropped. The status-compare loop
// re-checks after each sweep, so back-to-back transitions cannot slip
// between a wakeup and re-arming the change channel.
func (ns *NetServer) watchEpochs(w *connWriter, subMu *sync.Mutex, subs map[uint64]streamSub, stop <-chan struct{}) {
	var last EpochStatus
	for {
		ch := ns.core.EpochChanged()
		st := ns.core.EpochStatus()
		if st != last {
			want := st.Epoch
			if st.Sealed {
				want = st.Pending
			}
			subMu.Lock()
			for req, sub := range subs {
				ns.core.Unregister(sub.key, sub.rid)
				bp := getFrame()
				*bp = appendEpochNack(*bp, req, st, want)
				w.trySend(bp)
				delete(subs, req)
			}
			subMu.Unlock()
			last = st
			continue
		}
		select {
		case <-ch:
		case <-stop:
			return
		}
	}
}

func (ns *NetServer) handle(conn net.Conn) {
	defer ns.wg.Done()
	w := newConnWriter(conn, outQueueDepth)
	ns.wg.Add(1)
	go func() {
		defer ns.wg.Done()
		w.run()
	}()

	var subMu sync.Mutex
	subs := make(map[uint64]streamSub)
	stopWatch := make(chan struct{})
	ns.wg.Add(1)
	go func() {
		defer ns.wg.Done()
		ns.watchEpochs(w, &subMu, subs, stopWatch)
	}()
	defer func() {
		close(stopWatch)
		subMu.Lock()
		for _, sub := range subs {
			ns.core.Unregister(sub.key, sub.rid)
		}
		subMu.Unlock()
		w.shutdown() // drains queued frames, then closes conn
		ns.mu.Lock()
		delete(ns.conns, conn)
		ns.mu.Unlock()
	}()

	// reject answers a malformed-but-framed request with an explicit
	// error and keeps the connection alive: the framing is still in
	// sync, so one bad request must not kill the other exchanges
	// multiplexed on this connection.
	reject := func(req uint64, msg string) bool {
		bp := getFrame()
		*bp = appendError(*bp, req, msg)
		return w.send(bp)
	}
	// nack answers a request whose configuration epoch the state
	// machine refused; the connection survives — the client refetches
	// its config and retries.
	nack := func(req uint64, se *StaleEpochError) bool {
		bp := getFrame()
		*bp = appendEpochNack(*bp, req, EpochStatus{Epoch: se.ServerEpoch, Sealed: se.Sealed}, se.Want)
		return w.send(bp)
	}
	// epoch responses carry the server's active epoch at reply time.
	cur := func() uint64 { return ns.core.EpochStatus().Epoch }

	br := bufio.NewReader(conn)
	var buf []byte
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			return
		}
		buf = payload
		typ, req, ok := peekHeader(payload)
		if !ok {
			// Not even a header: connection-level error, then close —
			// there is no request id to answer on.
			bp := getFrame()
			*bp = appendError(*bp, 0, fmt.Sprintf("short frame: %d bytes", len(payload)))
			w.send(bp)
			return
		}
		switch typ {
		case msgGetTag:
			_, epoch, key, err := decodeGetTag(payload)
			if err != nil {
				if !reject(req, "malformed get-tag: "+err.Error()) {
					return
				}
				continue
			}
			if se := ns.core.Admit(opClient, epoch); se != nil {
				if !nack(req, se) {
					return
				}
				continue
			}
			bp := getFrame()
			*bp = appendTagResp(*bp, req, cur(), ns.core.GetTag(key))
			if !w.send(bp) {
				return
			}
		case msgPutData:
			_, epoch, key, t, elem, vlen, err := decodePutData(payload)
			if err != nil {
				if !reject(req, "malformed put-data: "+err.Error()) {
					return
				}
				continue
			}
			if se := ns.core.Admit(opClient, epoch); se != nil {
				if !nack(req, se) {
					return
				}
				continue
			}
			ns.core.PutData(key, t, elem, vlen)
			bp := getFrame()
			*bp = appendAck(*bp, req, cur())
			if !w.send(bp) {
				return
			}
		case msgGetElem:
			_, epoch, key, err := decodeGetElem(payload)
			if err != nil {
				if !reject(req, "malformed get-elem: "+err.Error()) {
					return
				}
				continue
			}
			if se := ns.core.Admit(opDonor, epoch); se != nil {
				if !nack(req, se) {
					return
				}
				continue
			}
			t, elem, vlen := ns.core.Snapshot(key)
			ns.core.Metrics().getElems.Add(1)
			bp := getFrame()
			*bp = appendElemResp(*bp, req, cur(), t, elem, vlen)
			if !w.send(bp) {
				return
			}
		case msgRepairPut:
			_, epoch, key, t, elem, vlen, err := decodeRepairPut(payload)
			if err != nil {
				if !reject(req, "malformed repair-put: "+err.Error()) {
					return
				}
				continue
			}
			if se := ns.core.Admit(opRepair, epoch); se != nil {
				if !nack(req, se) {
					return
				}
				continue
			}
			accepted := ns.core.RepairPut(key, t, elem, vlen)
			bp := getFrame()
			*bp = appendRepairResp(*bp, req, cur(), accepted)
			if !w.send(bp) {
				return
			}
		case msgKeys:
			_, epoch, err := decodeKeysReq(payload)
			if err != nil {
				if !reject(req, "malformed keys: "+err.Error()) {
					return
				}
				continue
			}
			if se := ns.core.Admit(opDonor, epoch); se != nil {
				if !nack(req, se) {
					return
				}
				continue
			}
			bp := getFrame()
			*bp = appendKeysResp(*bp, req, cur(), ns.core.Keys())
			if !w.send(bp) {
				return
			}
		case msgReconfig:
			_, op, target, rn, rk, err := decodeReconfig(payload)
			if err != nil {
				if !reject(req, "malformed reconfig: "+err.Error()) {
					return
				}
				continue
			}
			st, rerr := ns.core.Reconfig(op, target, rn, rk)
			if rerr != nil {
				if !reject(req, rerr.Error()) {
					return
				}
				continue
			}
			bp := getFrame()
			*bp = appendReconfigResp(*bp, req, st)
			if !w.send(bp) {
				return
			}
		case msgGetData:
			_, epoch, key, rid, err := decodeGetData(payload)
			if err != nil {
				if !reject(req, "malformed get-data: "+err.Error()) {
					return
				}
				continue
			}
			if se := ns.core.Admit(opClient, epoch); se != nil {
				if !nack(req, se) {
					return
				}
				continue
			}
			subMu.Lock()
			_, dup := subs[req]
			if !dup {
				subs[req] = streamSub{key: key, rid: rid}
			}
			subMu.Unlock()
			if dup {
				if !reject(req, "get-data request id already streaming") {
					return
				}
				continue
			}
			// The relay sink runs on whichever goroutine performs a
			// put-data; it must never block on this connection, so it
			// try-sends and kills the connection on overflow — a reader
			// that stopped draining is indistinguishable from dead.
			streamReq := req
			sink := func(d Delivery) {
				bp := getFrame()
				*bp = appendData(*bp, streamReq, d)
				if !w.trySend(bp) {
					ns.core.Metrics().relayDrops.Add(1)
					w.kill()
				}
			}
			initial := ns.core.Register(key, rid, sink)
			// A flip that lands between the admission check and the
			// registration would leave a stream the epoch watcher already
			// swept; re-checking after Register closes the race.
			if se := ns.core.Admit(opClient, epoch); se != nil {
				ns.core.Unregister(key, rid)
				subMu.Lock()
				delete(subs, req)
				subMu.Unlock()
				if !nack(req, se) {
					return
				}
				continue
			}
			sink(initial)
		case msgReaderDone:
			if _, err := decodeReaderDone(payload); err != nil {
				if !reject(req, "malformed reader-done: "+err.Error()) {
					return
				}
				continue
			}
			// A reader-done for an unknown request id (a stream this
			// server never saw, or one already torn down) is ignored:
			// tear-down is idempotent.
			subMu.Lock()
			if sub, ok := subs[req]; ok {
				ns.core.Unregister(sub.key, sub.rid)
				delete(subs, req)
			}
			subMu.Unlock()
		default:
			// A type byte from a future protocol version (or garbage):
			// tell the peer explicitly instead of a silent close, so a
			// version-skewed client degrades into a legible
			// *RemoteError rather than a mystery EOF. The framing is
			// still in sync, so the connection survives.
			if !reject(req, fmt.Sprintf("unknown message type %#x", typ)) {
				return
			}
		}
	}
}

// connWriter owns a connection's write side: every outbound frame —
// unary responses, relay deliveries, error frames — is queued here and
// written by one goroutine through a bufio.Writer that is flushed only
// when the queue goes momentarily empty. Back-to-back relays and
// pipelined responses therefore coalesce into one syscall.
type connWriter struct {
	conn    net.Conn
	ch      chan *[]byte
	done    chan struct{} // closed by shutdown: stop accepting, drain, exit
	stopped sync.Once
	flushes int // run-loop only; exposed for the batching test
}

func newConnWriter(conn net.Conn, depth int) *connWriter {
	return &connWriter{conn: conn, ch: make(chan *[]byte, depth), done: make(chan struct{})}
}

// send queues a frame, blocking while the queue is full. It reports
// false when the writer has shut down (the frame is recycled).
func (w *connWriter) send(bp *[]byte) bool {
	select {
	case w.ch <- bp:
		return true
	case <-w.done:
		putFrame(bp)
		return false
	}
}

// trySend queues a frame without blocking; false means the queue is
// full or the writer is gone.
func (w *connWriter) trySend(bp *[]byte) bool {
	select {
	case <-w.done:
		putFrame(bp)
		return false
	default:
	}
	select {
	case w.ch <- bp:
		return true
	default:
		putFrame(bp)
		return false
	}
}

// shutdown stops the writer: queued frames are still drained and
// flushed (a reader-done race must not eat the last responses), then
// the connection closes.
func (w *connWriter) shutdown() {
	w.stopped.Do(func() { close(w.done) })
}

// kill abandons the connection immediately — the relay-overflow path.
// Closing the conn fails the read loop, whose teardown runs shutdown.
func (w *connWriter) kill() {
	w.conn.Close()
}

// run is the writer goroutine: drain, write, and flush exactly when
// the queue goes empty — the per-connection batching.
func (w *connWriter) run() {
	bw := bufio.NewWriter(w.conn)
	failed := false
	emit := func(bp *[]byte) {
		if !failed && writeFrame(bw, *bp) != nil {
			failed = true
			w.conn.Close() // fail the read loop too
		}
		putFrame(bp)
	}
	flush := func() {
		if !failed && bw.Flush() != nil {
			failed = true
			w.conn.Close()
		}
		w.flushes++
	}
	for {
		select {
		case bp := <-w.ch:
			emit(bp)
		default:
			// Queue momentarily empty: the batch is as big as it is
			// going to get, push it to the wire.
			if bw.Buffered() > 0 {
				flush()
			}
			select {
			case bp := <-w.ch:
				emit(bp)
			case <-w.done:
				// Drain what racing senders managed to queue, then go.
				for {
					select {
					case bp := <-w.ch:
						emit(bp)
					default:
						if bw.Buffered() > 0 {
							flush()
						}
						w.conn.Close()
						return
					}
				}
			}
		}
	}
}

// dialPolicy is the shared dial behavior of both TCP client
// transports: a per-attempt deadline — a dial that has not completed
// in timeout is as dead as a refused one; without the cap, a
// blackholed server would pin a quorum goroutine until the caller's
// whole context expired — and bounded retry with backoff so a server
// mid-restart is not instantly written off.
type dialPolicy struct {
	timeout  time.Duration
	attempts int
	backoff  Backoff
}

const (
	defaultDialTimeout  = 2 * time.Second
	defaultDialAttempts = 3
)

func defaultDialPolicy() dialPolicy {
	return dialPolicy{timeout: defaultDialTimeout, attempts: defaultDialAttempts}
}

// dial connects with the per-attempt deadline and bounded retry. The
// context always wins: cancellation aborts both an in-flight dial
// (DialContext honors it) and any backoff sleep, so a hung dial can
// never stall a quorum past its caller's cancellation.
func (p dialPolicy) dial(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: p.timeout}
	var conn net.Conn
	err := retry(ctx, p.attempts, p.backoff, func() error {
		var err error
		conn, err = d.DialContext(ctx, "tcp", addr)
		return err
	})
	return conn, err
}

// tcpOpts is the assembled client-conn configuration shared by the
// dialing and multiplexed transports: the dial policy plus the
// configuration epoch the conn stamps on every frame.
type tcpOpts struct {
	policy dialPolicy
	epoch  uint64
}

func defaultTCPOpts() tcpOpts { return tcpOpts{policy: defaultDialPolicy()} }

// TCPOption configures a client-side TCP conn (dialing or mux).
type TCPOption func(*tcpOpts)

// WithDialTimeout caps each dial attempt; the effective deadline is
// the earlier of this and the operation context's.
func WithDialTimeout(d time.Duration) TCPOption {
	return func(o *tcpOpts) { o.policy.timeout = d }
}

// WithDialRetry sets how many times an operation attempts the dial
// (minimum 1) and the backoff schedule between attempts.
func WithDialRetry(attempts int, b Backoff) TCPOption {
	return func(o *tcpOpts) {
		if attempts < 1 {
			attempts = 1
		}
		o.policy.attempts = attempts
		o.policy.backoff = b
	}
}

// WithConnEpoch stamps the conn with a configuration epoch: every
// frame it sends carries the epoch, and the servers NACK anything
// that does not match their own. A conn set built for one Config is
// therefore single-epoch by construction — the heart of the
// no-cross-epoch-quorum guarantee.
func WithConnEpoch(epoch uint64) TCPOption {
	return func(o *tcpOpts) { o.epoch = epoch }
}

// stampStale fills the server index into a StaleEpochError decoded
// from the wire (the frame only knows the connection, not the shard).
func stampStale(err error, idx int) error {
	var se *StaleEpochError
	if errors.As(err, &se) && se.Server == -1 {
		se.Server = idx
	}
	return err
}

// tcpConn is the dial-per-operation client Conn for one server
// address. Every operation opens a fresh connection and uses request
// id 1 on it. MuxConn is the production path; this one survives as
// the benchmark baseline and a zero-shared-state fallback.
type tcpConn struct {
	idx   int
	addr  string
	opts  tcpOpts
}

// TCPConn returns a Conn that dials addr for each operation, acting
// for the server at shard index idx.
func TCPConn(idx int, addr string, opts ...TCPOption) Conn {
	c := &tcpConn{idx: idx, addr: addr, opts: defaultTCPOpts()}
	for _, opt := range opts {
		opt(&c.opts)
	}
	return c
}

// TCPConns builds the dial-per-op conn set for a cluster from its
// address list, in shard-index order.
func TCPConns(addrs []string, opts ...TCPOption) []Conn {
	conns := make([]Conn, len(addrs))
	for i, a := range addrs {
		conns[i] = TCPConn(i, a, opts...)
	}
	return conns
}

func (c *tcpConn) Index() int { return c.idx }

// dialReq is the request id a dial-per-op exchange uses: the
// connection carries exactly one.
const dialReq uint64 = 1

// unary performs one request/response exchange on a fresh connection,
// verifying the response echoes the request id.
func (c *tcpConn) unary(ctx context.Context, req []byte) ([]byte, error) {
	conn, err := c.opts.policy.dial(ctx, c.addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(0, 1)) })
	defer stop()
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	return payload, err
}

// checkReq verifies a unary response was for our exchange. On a
// one-request connection any other id means the server is broken.
func checkReq(req uint64, name string) error {
	if req != dialReq {
		return &FrameError{Want: name, Msg: fmt.Sprintf("response for request %d, want %d", req, dialReq)}
	}
	return nil
}

func (c *tcpConn) GetTag(ctx context.Context, key string) (Tag, error) {
	bp := getFrame()
	*bp = appendGetTag(*bp, dialReq, c.opts.epoch, key)
	payload, err := c.unary(ctx, *bp)
	putFrame(bp)
	if err != nil {
		return Tag{}, err
	}
	req, t, err := decodeTagResp(payload)
	if err != nil {
		return Tag{}, stampStale(err, c.idx)
	}
	return t, checkReq(req, "tag-resp")
}

func (c *tcpConn) PutData(ctx context.Context, key string, t Tag, elem []byte, vlen int) error {
	bp := getFrame()
	*bp = appendPutData(*bp, dialReq, c.opts.epoch, key, t, elem, vlen)
	payload, err := c.unary(ctx, *bp)
	putFrame(bp)
	if err != nil {
		return err
	}
	req, err := decodeAck(payload)
	if err != nil {
		return stampStale(err, c.idx)
	}
	return checkReq(req, "ack")
}

func (c *tcpConn) GetElem(ctx context.Context, key string) (Tag, []byte, int, error) {
	bp := getFrame()
	*bp = appendGetElem(*bp, dialReq, c.opts.epoch, key)
	payload, err := c.unary(ctx, *bp)
	putFrame(bp)
	if err != nil {
		return Tag{}, nil, 0, err
	}
	req, t, elem, vlen, err := decodeElemResp(payload)
	if err != nil {
		return Tag{}, nil, 0, stampStale(err, c.idx)
	}
	return t, elem, vlen, checkReq(req, "elem-resp")
}

func (c *tcpConn) RepairPut(ctx context.Context, key string, t Tag, elem []byte, vlen int) (bool, error) {
	bp := getFrame()
	*bp = appendRepairPut(*bp, dialReq, c.opts.epoch, key, t, elem, vlen)
	payload, err := c.unary(ctx, *bp)
	putFrame(bp)
	if err != nil {
		return false, err
	}
	req, accepted, err := decodeRepairResp(payload)
	if err != nil {
		return false, stampStale(err, c.idx)
	}
	return accepted, checkReq(req, "repair-resp")
}

func (c *tcpConn) Keys(ctx context.Context) ([]string, error) {
	bp := getFrame()
	*bp = appendKeysReq(*bp, dialReq, c.opts.epoch)
	payload, err := c.unary(ctx, *bp)
	putFrame(bp)
	if err != nil {
		return nil, err
	}
	req, keys, err := decodeKeysResp(payload)
	if err != nil {
		return nil, stampStale(err, c.idx)
	}
	return keys, checkReq(req, "keys-resp")
}

// Reconfig drives the server's epoch state machine on behalf of a
// reconfiguration coordinator. Reconfig frames are not themselves
// epoch-checked: they are what moves the epoch.
func (c *tcpConn) Reconfig(ctx context.Context, op ReconfigOp, target uint64, n, k int) (EpochStatus, error) {
	bp := getFrame()
	*bp = appendReconfig(*bp, dialReq, op, target, n, k)
	payload, err := c.unary(ctx, *bp)
	putFrame(bp)
	if err != nil {
		return EpochStatus{}, err
	}
	req, st, err := decodeReconfigResp(payload)
	if err != nil {
		return EpochStatus{}, err
	}
	return st, checkReq(req, "reconfig-resp")
}

func (c *tcpConn) GetData(ctx context.Context, key, readerID string, deliver func(Delivery)) error {
	conn, err := c.opts.policy.dial(ctx, c.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// On cancellation, tell the server the reader is done (best
	// effort) and tear the stream down; the blocked readFrame below
	// then fails and the nil return reports a clean unsubscribe. The
	// mutex keeps the reader-done frame from interleaving with the
	// registration frame if cancellation lands mid-write.
	var wmu sync.Mutex
	stop := context.AfterFunc(ctx, func() {
		wmu.Lock()
		conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		bp := getFrame()
		*bp = appendReaderDone(*bp, dialReq, c.opts.epoch)
		writeFrame(conn, *bp)
		putFrame(bp)
		wmu.Unlock()
		conn.Close()
	})
	defer stop()
	bp := getFrame()
	*bp = appendGetData(*bp, dialReq, c.opts.epoch, key, readerID)
	wmu.Lock()
	err = writeFrame(conn, *bp)
	wmu.Unlock()
	putFrame(bp)
	if err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	var buf []byte
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil // our own cancellation
			}
			return err
		}
		buf = payload // reuse: decodeData copies the element out
		_, d, err := decodeData(payload)
		if err != nil {
			return stampStale(err, c.idx)
		}
		d.Server = c.idx
		deliver(d)
	}
}
