package soda

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rs"
)

// TestMuxInterleavedUnary drives many concurrent exchanges over ONE
// multiplexed connection: per-goroutine keys, pipelined put-data and
// get-tag, every response routed back to the exchange that issued it.
// The server's connection count proves the multiplexing is real.
func TestMuxInterleavedUnary(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	addrs, servers := startTCPServers(t, 1)
	c := TCPMuxConn(0, addrs[0])
	defer c.Close()

	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("mux/key-%d", g)
			for j := 1; j <= each; j++ {
				tag := Tag{TS: uint64(j), Writer: fmt.Sprintf("g%d", g)}
				elem := []byte{byte(g), byte(j)}
				if err := c.PutData(ctx, key, tag, elem, 2); err != nil {
					t.Errorf("g%d put %d: %v", g, j, err)
					return
				}
				got, err := c.GetTag(ctx, key)
				if err != nil {
					t.Errorf("g%d get-tag %d: %v", g, j, err)
					return
				}
				// The response must be for OUR key's exchange: a cross-wired
				// request id would surface another goroutine's tag.
				if got != tag {
					t.Errorf("g%d: GetTag = %v, want %v (response misrouted?)", g, got, tag)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if n := servers[0].NumConns(); n != 1 {
		t.Fatalf("%d goroutines × %d pipelined exchanges used %d connections, want 1", goroutines, each, n)
	}
	snap := servers[0].core.MetricsSnapshot()
	if snap.PutDatas != goroutines*each || snap.GetTags != goroutines*each {
		t.Fatalf("server counted %d puts / %d get-tags, want %d each", snap.PutDatas, snap.GetTags, goroutines*each)
	}
	if snap.Registers != goroutines {
		t.Fatalf("namespace holds %d registers, want %d", snap.Registers, goroutines)
	}
}

// TestMuxRelayStreamSharesConnection runs a standing relay stream and
// a burst of pipelined put-datas over the same single connection: the
// stream sees the puts, the puts see their acks, and nobody dials.
func TestMuxRelayStreamSharesConnection(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	addrs, servers := startTCPServers(t, 1)
	c := TCPMuxConn(0, addrs[0])
	defer c.Close()

	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var streamed atomic.Int64
	got := make(chan Delivery, 256)
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.GetData(subCtx, testKey, "sub#mux", func(d Delivery) {
			streamed.Add(1)
			got <- d
		})
	}()
	first := <-got
	if !first.Initial || !first.Tag.IsZero() {
		t.Fatalf("initial delivery = %+v", first)
	}

	const puts = 100
	for j := 1; j <= puts; j++ {
		tag := Tag{TS: uint64(j), Writer: "w"}
		if err := c.PutData(ctx, testKey, tag, []byte{byte(j)}, 1); err != nil {
			t.Fatalf("put %d: %v", j, err)
		}
	}
	// Every put relays to the registered reader; deliveries are ordered
	// per connection, so the stream ends exactly at the last tag.
	deadline := time.After(10 * time.Second)
	var last Delivery
	for i := 0; i < puts; i++ {
		select {
		case last = <-got:
		case <-deadline:
			t.Fatalf("stream delivered %d/%d relays", i, puts)
		}
	}
	if last.Tag.TS != puts || !bytes.Equal(last.Elem, []byte{byte(puts)}) {
		t.Fatalf("last relay = %+v, want tag TS %d", last, puts)
	}
	if n := servers[0].NumConns(); n != 1 {
		t.Fatalf("stream + %d puts used %d connections, want 1", puts, n)
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("GetData after cancel = %v", err)
	}
	// The cancellation's reader-done reaches the server and drops the
	// registration.
	waitUntil := time.Now().Add(5 * time.Second)
	for servers[0].core.Readers(testKey) != 0 {
		if time.Now().After(waitUntil) {
			t.Fatalf("server still holds %d registrations after reader-done", servers[0].core.Readers(testKey))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMuxIgnoresUnknownRequestIDs pins the demux rule: a response
// carrying a request id nobody is waiting for is dropped on the floor,
// and the real response still reaches its exchange.
func TestMuxIgnoresUnknownRequestIDs(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	want := Tag{TS: 42, Writer: "real"}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		payload, err := readFrame(bufio.NewReader(conn), nil)
		if err != nil {
			return
		}
		req, _, _, err := decodeGetTag(payload)
		if err != nil {
			return
		}
		// A stray response for an exchange that does not exist, then the
		// real one.
		writeFrame(conn, appendTagResp(nil, req+999, SeedEpoch, Tag{TS: 1, Writer: "bogus"}))
		writeFrame(conn, appendTagResp(nil, req, SeedEpoch, want))
	}()

	c := TCPMuxConn(0, ln.Addr().String())
	defer c.Close()
	got, err := c.GetTag(ctx, testKey)
	if err != nil {
		t.Fatalf("GetTag: %v", err)
	}
	if got != want {
		t.Fatalf("GetTag = %v, want %v (stray response misrouted)", got, want)
	}
}

// TestDialConnRejectsMismatchedRequestID pins the dial-per-op client's
// request-id check: a server answering with the wrong id is reported
// as a framing error, not silently accepted.
func TestDialConnRejectsMismatchedRequestID(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := readFrame(bufio.NewReader(conn), nil); err != nil {
			return
		}
		writeFrame(conn, appendTagResp(nil, dialReq+6, SeedEpoch, Tag{TS: 9, Writer: "w"}))
	}()
	c := TCPConn(0, ln.Addr().String())
	_, err = c.GetTag(ctx, testKey)
	var fe *FrameError
	if !errors.As(err, &fe) || !strings.Contains(fe.Msg, "response for request") {
		t.Fatalf("mismatched request id produced %v, want a FrameError naming the id", err)
	}
}

// TestMuxConnSurvivesBadRequests sends malformed keys and garbage
// request types over one mux connection and proves the connection —
// and every exchange multiplexed after the bad ones — keeps working.
func TestMuxConnSurvivesBadRequests(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	addrs, servers := startTCPServers(t, 1)
	c := TCPMuxConn(0, addrs[0])
	defer c.Close()

	// A healthy exchange first, so the connection exists.
	if _, err := c.GetTag(ctx, testKey); err != nil {
		t.Fatalf("GetTag: %v", err)
	}

	// Empty key: the server rejects the request on its id; the error
	// comes back as a RemoteError through the same demux path.
	var re *RemoteError
	if _, err := c.GetTag(ctx, ""); !errors.As(err, &re) {
		t.Fatalf("empty key produced %v, want *RemoteError", err)
	}
	// Oversized key: same.
	if _, err := c.GetTag(ctx, strings.Repeat("k", maxKeyLen+50)); !errors.As(err, &re) {
		t.Fatalf("oversized key produced %v, want *RemoteError", err)
	}
	// Garbage type byte injected through the raw frame path under a
	// pending unary id: the error frame routes back to this exchange.
	payload, err := c.unary(ctx, func(b []byte, req uint64) []byte {
		return appendHeader(b, 0xEE, req, SeedEpoch)
	})
	if err != nil {
		t.Fatalf("unary: %v", err)
	}
	if _, rerr := decodeError(payload); !errors.As(rerr, &re) || !strings.Contains(re.Msg, "unknown message type") {
		t.Fatalf("garbage type byte produced %v, want *RemoteError", rerr)
	}

	// The SAME connection still serves real traffic.
	tag := Tag{TS: 7, Writer: "w"}
	if err := c.PutData(ctx, testKey, tag, []byte{1}, 1); err != nil {
		t.Fatalf("PutData after bad requests: %v", err)
	}
	got, err := c.GetTag(ctx, testKey)
	if err != nil || got != tag {
		t.Fatalf("GetTag after bad requests = %v, %v", got, err)
	}
	if n := servers[0].NumConns(); n != 1 {
		t.Fatalf("bad requests forced a redial: %d connections", n)
	}
}

// TestRawConnSurvivesGarbageRequestID exercises the server over a raw
// TCP connection: a framed unknown-type message with an arbitrary
// request id gets an error echoing that id, and the connection then
// serves a well-formed request — only headerless frames are fatal.
func TestRawConnSurvivesGarbageRequestID(t *testing.T) {
	checkNoLeaks(t)
	addrs, _ := startTCPServers(t, 1)
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	if err := writeFrame(conn, appendHeader(nil, 0xEE, 0xFEEDFACE, SeedEpoch)); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(br, nil)
	if err != nil {
		t.Fatalf("no error frame came back: %v", err)
	}
	req, rerr := decodeError(payload)
	var re *RemoteError
	if req != 0xFEEDFACE || !errors.As(rerr, &re) {
		t.Fatalf("error frame = req %d, %v; want the echoed garbage id", req, rerr)
	}

	// Same connection, now a real request.
	if err := writeFrame(conn, appendGetTag(nil, 5, SeedEpoch, testKey)); err != nil {
		t.Fatal(err)
	}
	payload, err = readFrame(br, nil)
	if err != nil {
		t.Fatalf("connection died after the garbage request: %v", err)
	}
	if req, tag, err := decodeTagResp(payload); err != nil || req != 5 || !tag.IsZero() {
		t.Fatalf("tag-resp after garbage = req %d tag %v, %v", req, tag, err)
	}
}

// TestConnWriterBatchesFlushes pins the write-side coalescing: frames
// queued while the writer is busy go to the wire in a handful of
// flushes, not one syscall per frame.
func TestConnWriterBatchesFlushes(t *testing.T) {
	checkNoLeaks(t)
	client, srv := net.Pipe()
	defer client.Close()
	const frames = 48
	w := newConnWriter(srv, frames)
	// Preload the queue before the writer goroutine starts: every frame
	// is waiting when the first drain begins, so all of them must
	// coalesce into one buffered batch.
	for i := 1; i <= frames; i++ {
		bp := getFrame()
		*bp = appendAck(*bp, uint64(i), SeedEpoch)
		if !w.send(bp) {
			t.Fatalf("send %d refused", i)
		}
	}
	done := make(chan struct{})
	go func() {
		w.run()
		close(done)
	}()
	br := bufio.NewReader(client)
	for i := 1; i <= frames; i++ {
		payload, err := readFrame(br, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if req, err := decodeAck(payload); err != nil || req != uint64(i) {
			t.Fatalf("frame %d = req %d, %v (reordered?)", i, req, err)
		}
	}
	w.shutdown()
	<-done
	if w.flushes < 1 || w.flushes > 3 {
		t.Fatalf("%d frames took %d flushes, want 1-3 (coalescing broken)", frames, w.flushes)
	}
}

// TestMuxRedialsAfterServerRestart: losing the connection fails the
// in-flight exchanges, and the next operation lazily redials — the
// singleflight path — once the server is back.
func TestMuxRedialsAfterServerRestart(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	srv := NewServer(0)
	ns, err := ListenAndServe(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ns.Addr()
	c := TCPMuxConn(0, addr, WithDialRetry(1, Backoff{Base: time.Millisecond}))
	defer c.Close()

	tag := Tag{TS: 3, Writer: "w"}
	if err := c.PutData(ctx, testKey, tag, []byte{1}, 1); err != nil {
		t.Fatalf("PutData: %v", err)
	}
	ns.Close()
	// The dead connection surfaces as an error on some operation soon
	// after (the teardown may race the next call, which then redials
	// against the closed port and fails too — both are failures).
	failBy := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.GetTag(ctx, testKey); err != nil {
			break
		}
		if time.Now().After(failBy) {
			t.Fatal("operations kept succeeding against a closed server")
		}
	}
	// Server restarts on the same address with its storage intact.
	ns2, err := ListenAndServe(srv, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ns2.Close()
	got, err := c.GetTag(ctx, testKey)
	if err != nil {
		t.Fatalf("GetTag after restart: %v", err)
	}
	if got != tag {
		t.Fatalf("GetTag after restart = %v, want %v", got, tag)
	}
}

// TestMuxEndToEndCluster runs the full protocol stack — Writer and
// Reader quorums, relay-completed reads — over a 5-server TCP cluster
// on persistent multiplexed connections, and proves the whole run used
// exactly one connection per server.
func TestMuxEndToEndCluster(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	addrs, servers := startTCPServers(t, 5)
	conns := TCPMuxConns(addrs)
	defer CloseConns(conns)
	w := mustWriter(t, "w1", codec, conns)
	r := mustReader(t, "r1", codec, conns)

	keys := []string{"alpha", "beta", "gamma"}
	tags := make(map[string]Tag)
	for round := 0; round < 3; round++ {
		for _, key := range keys {
			v := []byte(fmt.Sprintf("%s-%d", key, round))
			tag, err := w.Write(ctx, key, v)
			if err != nil {
				t.Fatalf("Write(%s, %d): %v", key, round, err)
			}
			tags[key] = tag
			res, err := r.Read(ctx, key)
			if err != nil {
				t.Fatalf("Read(%s, %d): %v", key, round, err)
			}
			if res.Tag != tag || !bytes.Equal(res.Value, v) {
				t.Fatalf("Read(%s) = %v %q, want %v %q", key, res.Tag, res.Value, tag, v)
			}
		}
	}
	for i, s := range servers {
		if n := s.NumConns(); n != 1 {
			t.Fatalf("server %d saw %d connections across the whole run, want 1", i, n)
		}
		if keys, err := conns[i].Keys(ctx); err != nil || len(keys) != 3 {
			t.Fatalf("server %d Keys = %v, %v", i, keys, err)
		}
	}
}

// TestMultiKeyKillRepairRejoinSoak is the namespace-scale version of
// the kill-repair-rejoin proof: concurrent writers and readers over
// MANY keys, servers crashing and rejoining mid-traffic, the
// anti-entropy loop healing every key it finds via the key-union scan,
// and a per-key linearizability check over the full history. Run under
// -race in CI.
func TestMultiKeyKillRepairRejoinSoak(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 9, 3, rs.WithGenerator(rs.GeneratorRSView))
	m := NewMembership(9)
	rp := mustRepairer(t, codec, lb.Conns(), m,
		WithRepairInterval(20*time.Millisecond),
		WithRepairBackoff(Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}))

	rpCtx, rpCancel := context.WithCancel(ctx)
	rpDone := make(chan struct{})
	go func() {
		defer close(rpDone)
		rp.Run(rpCtx)
	}()
	defer func() {
		rpCancel()
		<-rpDone
	}()

	keys := make([]string, 6)
	hs := make(map[string]*history, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("soak/key-%02d", i)
		hs[keys[i]] = &history{}
	}

	stop := make(chan struct{})
	const writers, readers, minOps = 2, 2, 18
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		w := mustWriter(t, fmt.Sprintf("w%d", wi), codec, lb.Conns(), WithWriterMembership(m))
		wg.Add(1)
		go func(wi int, w *Writer) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					if j >= minOps {
						return
					}
				default:
				}
				key := keys[(wi+j)%len(keys)]
				h := hs[key]
				value := fmt.Sprintf("%s=w%d-%d", key, wi, j)
				inv := h.begin()
				tag, err := w.Write(ctx, key, []byte(value))
				if err != nil {
					t.Errorf("writer %d op %d on %s: %v", wi, j, key, err)
					return
				}
				h.end(true, inv, tag, value)
			}
		}(wi, w)
	}
	for ri := 0; ri < readers; ri++ {
		r := mustReader(t, fmt.Sprintf("r%d", ri), codec, lb.Conns(),
			WithReaderFaults(2), WithReadErrors(2), WithReaderMembership(m))
		wg.Add(1)
		go func(ri int, r *Reader) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					if j >= minOps {
						return
					}
				default:
				}
				key := keys[(ri*3+j)%len(keys)]
				h := hs[key]
				inv := h.begin()
				res, err := r.Read(ctx, key)
				if err != nil {
					t.Errorf("reader %d op %d on %s: %v", ri, j, key, err)
					return
				}
				h.end(false, inv, res.Tag, string(res.Value))
			}
		}(ri, r)
	}

	// Kill-repair-rejoin cycles, a different server each time; the
	// repair loop must heal every key the dead server missed, not just
	// one register.
	for cyc, s := range []int{4, 7, 2} {
		lb.Crash(s)
		m.MarkSuspect(s, ErrServerDown)
		time.Sleep(25 * time.Millisecond) // traffic rides through the hole
		lb.Restart(s)
		actx, acancel := context.WithTimeout(ctx, 15*time.Second)
		err := m.AwaitLive(actx, s)
		acancel()
		if err != nil {
			t.Fatalf("cycle %d: server %d never repaired: %v (health %v, cause %v)",
				cyc, s, err, m.Health(s), m.Cause(s))
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, key := range keys {
		hs[key].check(t)
		if t.Failed() {
			t.Fatalf("linearizability violated on key %s", key)
		}
	}

	// After the dust settles every server holds every written key at a
	// tag no older than the completed writes require; spot-check that
	// the namespace healed by reading each key at full strength.
	r := mustReader(t, "rz", codec, lb.Conns(), WithReaderFaults(0), WithReadErrors(2))
	for _, key := range keys {
		res, err := r.Read(ctx, key)
		if err != nil {
			t.Fatalf("final read of %s: %v", key, err)
		}
		if len(res.Corrupt) != 0 {
			t.Fatalf("final read of %s names corrupt servers: %v", key, res.Corrupt)
		}
		if res.Tag.IsZero() {
			t.Fatalf("final read of %s returned the initial state after the soak", key)
		}
	}
}

// waitNoReaders polls until the server holds zero registrations on
// key — teardown is asynchronous with the client call returning.
func waitNoReaders(t *testing.T, s *Server, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Readers(key) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still holds %d registrations on %s", s.Readers(key), key)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMuxStreamCleanupOnCancel: the baseline exit path — a reader
// cancels mid-stream, the reader-done frame lands, and the server's
// registration count returns to zero.
func TestMuxStreamCleanupOnCancel(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	addrs, servers := startTCPServers(t, 1)
	c := TCPMuxConn(0, addrs[0])
	defer c.Close()

	subCtx, cancel := context.WithCancel(ctx)
	got := make(chan Delivery, 16)
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.GetData(subCtx, testKey, "r#cancel", func(d Delivery) { got <- d })
	}()
	<-got // initial delivery: the stream is live
	if servers[0].core.Readers(testKey) != 1 {
		t.Fatalf("registrations = %d, want 1", servers[0].core.Readers(testKey))
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("GetData after cancel = %v", err)
	}
	waitNoReaders(t, servers[0].core, testKey)
	c.mu.Lock()
	n := len(c.streams)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("client still tracks %d streams after cancel", n)
	}
}

// TestMuxStreamCleanupOnConnClose: closing the MuxConn mid-stream
// (session fail() teardown) must unregister the reader server-side —
// the conn close is the reader-done.
func TestMuxStreamCleanupOnConnClose(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	addrs, servers := startTCPServers(t, 1)
	c := TCPMuxConn(0, addrs[0])

	got := make(chan Delivery, 16)
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.GetData(ctx, testKey, "r#close", func(d Delivery) { got <- d })
	}()
	<-got
	c.Close()
	if err := <-errCh; err == nil {
		t.Fatal("GetData returned nil after its conn closed under it")
	}
	waitNoReaders(t, servers[0].core, testKey)
	c.mu.Lock()
	n := len(c.streams)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("client still tracks %d streams after Close", n)
	}
}

// TestMuxStreamCleanupOnServerLoss: the server dies mid-stream (the
// reader errors out). The client must drop the stream entry instead
// of pinning the sink until the next successful exchange.
func TestMuxStreamCleanupOnServerLoss(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	addrs, servers := startTCPServers(t, 1)
	c := TCPMuxConn(0, addrs[0])
	defer c.Close()

	got := make(chan Delivery, 16)
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.GetData(ctx, testKey, "r#loss", func(d Delivery) { got <- d })
	}()
	<-got
	servers[0].Close() // kills every conn; the session dies
	if err := <-errCh; err == nil {
		t.Fatal("GetData returned nil after the server died under it")
	}
	if n := servers[0].core.Readers(testKey); n != 0 {
		t.Fatalf("dead server's conn teardown left %d registrations", n)
	}
	c.mu.Lock()
	n := len(c.streams)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("client still tracks %d streams after session death", n)
	}
}

// TestMuxGetDataDeadContextNeverRegisters: a context that is already
// cancelled when GetData is called must not open a server-side
// registration at all — there is no one to tear it down.
func TestMuxGetDataDeadContextNeverRegisters(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	addrs, servers := startTCPServers(t, 1)
	c := TCPMuxConn(0, addrs[0])
	defer c.Close()
	// Prime the session so the cancelled call cannot hide behind a
	// dial failure.
	if _, err := c.GetTag(ctx, testKey); err != nil {
		t.Fatalf("GetTag: %v", err)
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := c.GetData(dead, testKey, "r#dead", func(Delivery) {}); err != nil {
		t.Fatalf("GetData with a dead context = %v, want nil (the cancel exit)", err)
	}
	if n := servers[0].core.Readers(testKey); n != 0 {
		t.Fatalf("dead-context GetData registered %d readers", n)
	}
	c.mu.Lock()
	n := len(c.streams)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("dead-context GetData left %d stream entries", n)
	}
}
