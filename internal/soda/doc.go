// Package soda implements the SODA atomic storage protocol (Konwar,
// Prakash, Kantor, Lynch, Médard, Schwarzmann — "Storage-Optimized
// Data-Atomic Algorithms for Handling Erasures and Errors in
// Distributed Storage Systems", IPDPS 2016) over the internal/rs
// codec.
//
// A cluster of n servers implements one multi-writer multi-reader
// atomic register. Every written value is encoded into one [n, k] MDS
// codeword and each server stores exactly one coded element of it —
// the storage optimization in the paper's title: total storage is n/k
// times the value, versus n full copies under replication, and versus
// CASGC's (δ+1)·n/k for δ concurrent writes (Cadambe et al., "A Coded
// Shared Atomic Memory Algorithm for Message Passing Architectures").
// SODA buys the single-version storage bound with a server-relay
// structure on the read path instead of multi-version buffering.
//
// Roles and phases:
//
//   - Tag: every write is identified by a Tag = (ts, writer-id) with
//     the lexicographic total order; tags order all writes.
//
//   - Writer (two phases): get-tag queries all servers for their
//     local tag and waits for n-f responses, then picks
//     (max.ts+1, id); put-data encodes the value with rs.Encoder and
//     sends coded element i to server i, completing on n-f acks.
//
//   - Server (state machine, server.go): stores the one coded element
//     of the highest tag it has seen, keeps per-tag reader
//     registrations (reader, t_req) where t_req is the server's tag
//     at registration time, and relays every arriving put-data
//     element with tag >= t_req to each registered reader until the
//     reader unregisters.
//
//   - Reader: get-data registers at all servers; each server answers
//     with its current (tag, element) and then relays concurrent
//     writes as they arrive. Once initial responses from n-f servers
//     fix the target tag t_target (their maximum), the reader
//     completes with the first tag t >= t_target for which it holds
//     coded elements from k distinct servers, reconstructing the
//     value with rs.ReconstructData; it then unregisters everywhere.
//
// Fault tolerance: with f crash-faulty servers, writes and reads both
// wait on n-f quorums, and any two quorums intersect in n-2f >= k
// servers, so reads see every completed write; liveness therefore
// needs n >= k + 2f. Readers additionally require f < k: a read may
// adopt a half-applied write whose tag lives on only the k servers it
// decoded from, and k > f is what guarantees the next read's n-f
// initial quorum still meets one of them, keeping reads monotone. A reader built with WithReadErrors(e) runs the
// SODA_err variant: it waits for k + 2e coded elements of a matching
// tag (possible while n - f >= k + 2e), runs Verify-then-DecodeErrors
// on the rs-view generator, and reports the located corrupt server
// indices for quarantine, tolerating e servers that return silently
// corrupted elements on top of the crash faults (decoding radius
// 2e + erasures <= n - k).
//
// Transport: messages ride a small length-prefixed binary framing
// (wire.go) either over real TCP connections (tcp.go) or over the
// deterministic in-process Loopback (loopback.go), which adds
// fail-stop, silent-crash, and corrupt-storage fault injection for
// tests and the sodademo binary.
package soda
