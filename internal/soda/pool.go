package soda

import "sync"

// workerPool amortizes goroutine startup for the protocol's fan-outs.
// Every write runs one leg per server and every read one subscription
// per server; spawning those as fresh goroutines means each one starts
// on a minimum stack and grows it through the same deep server call
// chain, only for the runtime to shrink the stack again at exit. The
// pool parks finished workers instead (LIFO, so the hottest worker —
// the one whose stack is already grown and cached — goes out first)
// and grows without bound under load: a leg can block for its whole
// operation, so throttling here would deadlock fault-riding quorums.
// Idle workers beyond the cap exit; the rest park on their channel,
// where the GC is free to shrink their stacks if load never returns.
type workerPool struct {
	mu   sync.Mutex
	idle []chan func()
}

// maxIdleWorkers bounds the parked-goroutine count. It only needs to
// cover the steady-state fan-out concurrency; beyond it, workers fall
// back to exiting like plain goroutines.
const maxIdleWorkers = 1024

// spawnPool is shared by all clients in the process — reads and
// writes fan out through the same workers.
var spawnPool workerPool

// spawn runs fn on a pooled worker, starting a new one only when none
// is idle. fn may block indefinitely.
func (p *workerPool) spawn(fn func()) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		ch := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		ch <- fn
		return
	}
	p.mu.Unlock()
	ch := make(chan func(), 1)
	ch <- fn
	go p.work(ch)
}

func (p *workerPool) work(ch chan func()) {
	for fn := range ch {
		fn()
		p.mu.Lock()
		if len(p.idle) >= maxIdleWorkers {
			p.mu.Unlock()
			return
		}
		p.idle = append(p.idle, ch)
		p.mu.Unlock()
	}
}
