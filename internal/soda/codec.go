package soda

import (
	"errors"
	"fmt"

	"repro/internal/rs"
)

var (
	// ErrEmptyValue is returned by writes of a zero-length value; the
	// register's initial state already is the empty value.
	ErrEmptyValue = errors.New("soda: empty value")
	// ErrConfig is returned for unusable writer/reader/cluster
	// configurations.
	ErrConfig = errors.New("soda: invalid configuration")
)

// Codec turns register values into the n coded elements SODA servers
// store, and back. Server i always receives codeword shard i, so the
// shard index is the server's identity in the code. It is safe for
// concurrent use.
type Codec struct {
	enc *rs.Encoder
}

// NewCodec builds the [n, k] codec a cluster of n servers shares.
// Options pass through to rs.New — in particular
// rs.WithGenerator(rs.GeneratorRSView) is required for SODA_err
// readers (WithReadErrors).
func NewCodec(n, k int, opts ...rs.Option) (*Codec, error) {
	enc, err := rs.New(n, k, opts...)
	if err != nil {
		return nil, err
	}
	return &Codec{enc: enc}, nil
}

// N returns the number of servers (total shards).
func (c *Codec) N() int { return c.enc.N() }

// K returns the number of coded elements a read must gather.
func (c *Codec) K() int { return c.enc.K() }

// Generator reports the underlying generator strategy.
func (c *Codec) Generator() rs.Generator { return c.enc.Generator() }

// MaxReadErrors returns the largest e usable with WithReadErrors: the
// number of corrupt elements the codec can locate with no erasures,
// or 0 when the generator has no syndrome structure.
func (c *Codec) MaxReadErrors() int { return c.enc.MaxErrors(0) }

// shardSize is the coded-element size for a value of vlen bytes: the
// value is cut into k equal data shards, zero-padding the last.
func (c *Codec) shardSize(vlen int) int {
	k := c.enc.K()
	return (vlen + k - 1) / k
}

// EncodeValue encodes a value into its n coded elements: shards
// 0..k-1 are the value itself (systematic code, zero-padded to equal
// size) and shards k..n-1 are parity. Element i belongs to server i.
func (c *Codec) EncodeValue(value []byte) ([][]byte, error) {
	if len(value) == 0 {
		return nil, ErrEmptyValue
	}
	n := c.enc.N()
	s := c.shardSize(len(value))
	buf := make([]byte, n*s)
	copy(buf, value) // the k data shards are the leading k*s bytes
	shards := make([][]byte, n)
	for i := range shards {
		shards[i] = buf[i*s : (i+1)*s]
	}
	if err := c.enc.EncodeInto(shards); err != nil {
		return nil, err
	}
	return shards, nil
}

// encodeValueInto is EncodeValue against a reusable scratch: the
// caller's buffer is grown once to n*s and resliced into shards, so a
// steady-state writer allocates nothing per write. The data region is
// rebuilt from the value (padding re-zeroed — the buffer is recycled
// and EncodeInto reads the pad bytes); the parity region needs no
// clearing because EncodeInto fully overwrites it.
func (c *Codec) encodeValueInto(value []byte, sc *encodeScratch) error {
	if len(value) == 0 {
		return ErrEmptyValue
	}
	n, k := c.enc.N(), c.enc.K()
	s := c.shardSize(len(value))
	if total := n * s; cap(sc.buf) < total {
		sc.buf = make([]byte, total)
	} else {
		sc.buf = sc.buf[:total]
	}
	copy(sc.buf, value)
	clear(sc.buf[len(value) : k*s])
	if cap(sc.shards) < n {
		sc.shards = make([][]byte, n)
	} else {
		sc.shards = sc.shards[:n]
	}
	for i := range sc.shards {
		sc.shards[i] = sc.buf[i*s : (i+1)*s]
	}
	return c.enc.EncodeInto(sc.shards)
}

// DecodeValue reassembles a value of vlen bytes from the k data
// shards (shards[0..k-1] must be present at the element size for
// vlen; parity entries are ignored).
func (c *Codec) DecodeValue(shards [][]byte, vlen int) ([]byte, error) {
	if vlen <= 0 {
		return nil, fmt.Errorf("%w: value length %d", ErrConfig, vlen)
	}
	k := c.enc.K()
	s := c.shardSize(vlen)
	if len(shards) < k {
		return nil, fmt.Errorf("%w: %d shards, need the %d data shards", ErrConfig, len(shards), k)
	}
	out := make([]byte, k*s)
	for i := 0; i < k; i++ {
		if len(shards[i]) != s {
			return nil, fmt.Errorf("%w: data shard %d has %d bytes, want %d", ErrConfig, i, len(shards[i]), s)
		}
		copy(out[i*s:], shards[i])
	}
	return out[:vlen], nil
}
