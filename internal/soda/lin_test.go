package soda

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rs"
)

// Atomicity (linearizability) checking for the MWMR register.
//
// Because every write carries a unique totally-ordered tag and reads
// return the tag they decoded, linearizability of the register
// reduces to four real-time conditions over the recorded history
// (this is the standard argument for tag-based registers, e.g. Lynch,
// "Distributed Algorithms", ch. 13): with "A precedes B" meaning
// A.resp < B.inv,
//
//	W1 precedes W2  =>  tag(W1) < tag(W2)   (writes follow real time)
//	W  precedes R   =>  tag(R) >= tag(W)    (reads see completed writes)
//	R1 precedes R2  =>  tag(R2) >= tag(R1)  (reads do not go back)
//	every read returns the value written at its tag (or the initial
//	value at the zero tag)
//
// Any total order on operations that sorts by tag (writes before the
// reads that return them) is then a legal linearization.

type opRec struct {
	write     bool
	inv, resp uint64
	tag       Tag
	value     string
}

type history struct {
	mu     sync.Mutex
	tick   atomic.Uint64
	ops    []opRec
	maybes map[Tag]string
}

func (h *history) begin() uint64 { return h.tick.Add(1) }

func (h *history) end(write bool, inv uint64, tag Tag, value string) {
	resp := h.tick.Add(1)
	h.mu.Lock()
	h.ops = append(h.ops, opRec{write: write, inv: inv, resp: resp, tag: tag, value: value})
	h.mu.Unlock()
}

// abandoned records a write attempt that minted tag for value but
// failed before its quorum and was retried under a fresh tag. Such a
// half-applied put has no response event — it is concurrent with
// everything after its invocation — so a read MAY legally return its
// tag (with exactly its value), and the real-time write/write and
// write/read orderings do not apply to it. Reads that return it still
// participate in read monotonicity through their tags.
func (h *history) abandoned(tag Tag, value string) {
	h.mu.Lock()
	if h.maybes == nil {
		h.maybes = make(map[Tag]string)
	}
	h.maybes[tag] = value
	h.mu.Unlock()
}

func (h *history) check(t *testing.T) {
	t.Helper()
	written := make(map[Tag]string)
	for _, op := range h.ops {
		if !op.write {
			continue
		}
		if _, dup := written[op.tag]; dup {
			t.Fatalf("two writes under tag %v", op.tag)
		}
		written[op.tag] = op.value
	}
	for _, r := range h.ops {
		if r.write {
			continue
		}
		if r.tag.IsZero() {
			if r.value != "" {
				t.Fatalf("zero-tag read returned %q", r.value)
			}
		} else if want, ok := written[r.tag]; ok {
			if r.value != want {
				t.Fatalf("read at %v returned %q, want %q", r.tag, r.value, want)
			}
		} else if want, ok := h.maybes[r.tag]; ok {
			if r.value != want {
				t.Fatalf("read at abandoned %v returned %q, want %q", r.tag, r.value, want)
			}
		} else {
			t.Fatalf("read returned unwritten tag %v", r.tag)
		}
	}
	for _, a := range h.ops {
		for _, b := range h.ops {
			if a.resp >= b.inv { // a does not precede b
				continue
			}
			switch {
			case a.write && b.write && !a.tag.Less(b.tag):
				t.Fatalf("write order violation: %v (tag %v) precedes %v (tag %v)", a, a.tag, b, b.tag)
			case a.write && !b.write && b.tag.Less(a.tag):
				t.Fatalf("read missed a completed write: write %v precedes read %v", a.tag, b.tag)
			case !a.write && !b.write && b.tag.Less(a.tag):
				t.Fatalf("reads went backwards: %v then %v", a.tag, b.tag)
			}
		}
	}
}

// runLinearizability drives concurrent writers and readers against a
// cluster and checks the recorded history.
func runLinearizability(t *testing.T, codec *Codec, lb *Loopback, writers, readers, opsEach int, ropts ...ReaderOption) {
	t.Helper()
	ctx := testCtx(t)
	h := &history{}
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		w := mustWriter(t, fmt.Sprintf("w%d", wi), codec, lb.Conns())
		wg.Add(1)
		go func(wi int, w *Writer) {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				value := fmt.Sprintf("w%d-%d", wi, j)
				inv := h.begin()
				tag, err := w.Write(ctx, testKey, []byte(value))
				if err != nil {
					t.Errorf("writer %d: %v", wi, err)
					return
				}
				h.end(true, inv, tag, value)
			}
		}(wi, w)
	}
	for ri := 0; ri < readers; ri++ {
		r := mustReader(t, fmt.Sprintf("r%d", ri), codec, lb.Conns(), ropts...)
		wg.Add(1)
		go func(ri int, r *Reader) {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				inv := h.begin()
				res, err := r.Read(ctx, testKey)
				if err != nil {
					t.Errorf("reader %d: %v", ri, err)
					return
				}
				h.end(false, inv, res.Tag, string(res.Value))
			}
		}(ri, r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	h.check(t)
	wrote := writers * opsEach
	if got := len(h.ops); got != wrote+readers*opsEach {
		t.Fatalf("recorded %d ops", got)
	}
}

// TestLinearizability runs concurrent multi-writer multi-reader
// traffic on the loopback transport and checks atomicity of the
// recorded history.
func TestLinearizability(t *testing.T) {
	codec, lb := newCluster(t, 5, 3)
	runLinearizability(t, codec, lb, 3, 3, 15)
}

// TestLinearizabilityWithFault repeats the check with one server
// silently crashed the whole time — the protocol's f=1 budget.
func TestLinearizabilityWithFault(t *testing.T) {
	codec, lb := newCluster(t, 5, 3)
	lb.Hang(3)
	runLinearizability(t, codec, lb, 2, 2, 10)
}

// TestLinearizabilityErrReader runs the checker with SODA_err readers
// and a corrupt server: corruption must not be able to break
// atomicity, only show up in the corrupt report.
func TestLinearizabilityErrReader(t *testing.T) {
	codec, lb := newCluster(t, 5, 3, rs.WithGenerator(rs.GeneratorRSView))
	lb.Corrupt(1, FlipByte(0))
	runLinearizability(t, codec, lb, 2, 2, 10, WithReaderFaults(0), WithReadErrors(1))
}
