package soda

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rs"
)

func mustRepairer(t *testing.T, codec *Codec, conns []Conn, m *Membership, opts ...RepairerOption) *Repairer {
	t.Helper()
	rp, err := NewRepairer(codec, conns, m, opts...)
	if err != nil {
		t.Fatalf("NewRepairer: %v", err)
	}
	return rp
}

func TestMembershipLifecycle(t *testing.T) {
	checkNoLeaks(t)
	m := NewMembership(3)
	for i := 0; i < 3; i++ {
		if !m.IsLive(i) {
			t.Fatalf("server %d not live at birth", i)
		}
	}
	if m.MarkRepairing(0) {
		t.Fatal("MarkRepairing from Live succeeded")
	}
	if m.MarkLive(0) {
		t.Fatal("MarkLive from Live succeeded")
	}

	ch := m.Changed()
	cause := errors.New("observed dead")
	if !m.MarkSuspect(0, cause) {
		t.Fatal("MarkSuspect did not report the server was live")
	}
	select {
	case <-ch:
	default:
		t.Fatal("MarkSuspect did not wake Changed waiters")
	}
	if m.Health(0) != Suspect || m.Cause(0) != cause {
		t.Fatalf("after suspect: %v cause %v", m.Health(0), m.Cause(0))
	}
	if !slices.Equal(m.Suspects(), []int{0}) || m.LiveCount() != 2 {
		t.Fatalf("Suspects = %v, live = %d", m.Suspects(), m.LiveCount())
	}

	// Readmission must pass through Repairing: MarkLive straight from
	// Suspect is a protocol error (nobody repaired anything).
	if m.MarkLive(0) {
		t.Fatal("MarkLive from Suspect succeeded")
	}
	if !m.MarkRepairing(0) {
		t.Fatal("MarkRepairing from Suspect failed")
	}
	if m.MarkRepairing(0) {
		t.Fatal("second MarkRepairing claimed an already-claimed server")
	}
	// Fresh suspicion mid-repair demotes, so the stale repair cannot
	// readmit.
	m.MarkSuspect(0, errors.New("new evidence"))
	if m.MarkLive(0) {
		t.Fatal("MarkLive succeeded after mid-repair suspicion")
	}
	if !m.MarkRepairing(0) || !m.MarkLive(0) {
		t.Fatal("repair cycle after demotion failed")
	}
	if m.Health(0) != Live || m.Cause(0) != nil || !m.IsLive(0) {
		t.Fatalf("after readmission: %v cause %v", m.Health(0), m.Cause(0))
	}

	// AwaitLive observes a transition made elsewhere.
	m.MarkSuspect(2, cause)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- m.AwaitLive(ctx, 2)
	}()
	m.MarkRepairing(2)
	m.MarkLive(2)
	if err := <-done; err != nil {
		t.Fatalf("AwaitLive: %v", err)
	}
}

// TestRepairPutNeverRollsBack pins the server-side repair invariant:
// an install at a tag below the current one is rejected and changes
// nothing; equal-tag installs overwrite (that is how rotten storage is
// replaced); higher tags advance.
func TestRepairPutNeverRollsBack(t *testing.T) {
	checkNoLeaks(t)
	s := NewServer(0)
	t5 := Tag{TS: 5, Writer: "w"}
	s.PutData(testKey, t5, []byte{1, 2, 3}, 9)

	if s.RepairPut(testKey, Tag{TS: 3, Writer: "w"}, []byte{9}, 3) {
		t.Fatal("RepairPut accepted a lower tag")
	}
	if tag, elem, vlen := s.Snapshot(testKey); tag != t5 || vlen != 9 || !bytes.Equal(elem, []byte{1, 2, 3}) {
		t.Fatalf("rejected repair mutated state: %v %v %d", tag, elem, vlen)
	}
	if !s.RepairPut(testKey, t5, []byte{7, 7, 7}, 9) {
		t.Fatal("RepairPut rejected an equal tag")
	}
	if _, elem, _ := s.Snapshot(testKey); !bytes.Equal(elem, []byte{7, 7, 7}) {
		t.Fatal("equal-tag repair did not replace the element")
	}
	t6 := Tag{TS: 6, Writer: "w"}
	if !s.RepairPut(testKey, t6, []byte{8}, 1) {
		t.Fatal("RepairPut rejected a higher tag")
	}
	if tag, _, _ := s.Snapshot(testKey); tag != t6 {
		t.Fatalf("tag after higher repair = %v", tag)
	}

	// An accepted repair relays to registered readers like a put-data.
	got := make(chan Delivery, 1)
	s.Register(testKey, "r#1", func(d Delivery) { got <- d })
	t7 := Tag{TS: 7, Writer: "w"}
	s.RepairPut(testKey, t7, []byte{4, 4}, 2)
	select {
	case d := <-got:
		if d.Tag != t7 || !bytes.Equal(d.Elem, []byte{4, 4}) {
			t.Fatalf("relayed repair = %+v", d)
		}
	default:
		t.Fatal("accepted repair was not relayed")
	}
}

// TestRepairRestoresCrashedServer is the basic kill-repair-rejoin
// cycle: a server crashes, misses a write, restarts stale, and one
// repair round brings it to the newest tag and readmits it.
func TestRepairRestoresCrashedServer(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3, rs.WithGenerator(rs.GeneratorRSView))
	m := NewMembership(5)
	w := mustWriter(t, "w1", codec, lb.Conns(), WithWriterMembership(m))
	rp := mustRepairer(t, codec, lb.Conns(), m)

	if _, err := w.Write(ctx, testKey, []byte("version one")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	lb.Crash(4)
	m.MarkSuspect(4, ErrServerDown)

	v2 := []byte("version two, missed by server 4")
	tag2, err := w.Write(ctx, testKey, v2)
	if err != nil {
		t.Fatalf("Write around the crash: %v", err)
	}

	// Repair cannot reach a still-down server; the attempt fails and
	// the server stays quarantined.
	if _, err := rp.RepairOnce(ctx, 4); err == nil {
		t.Fatal("RepairOnce succeeded against a down server")
	}
	if m.IsLive(4) {
		t.Fatal("failed repair readmitted the server")
	}

	lb.Restart(4)
	out, err := rp.RepairOnce(ctx, 4)
	if err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if out != RepairInstalled {
		t.Fatalf("outcome = %v, want installed", out)
	}
	shards2, _ := codec.EncodeValue(v2)
	tag, elem, vlen := lb.Server(4).Snapshot(testKey)
	if tag != tag2 || vlen != len(v2) || !bytes.Equal(elem, shards2[4]) {
		t.Fatalf("server 4 after repair: %v vlen %d", tag, vlen)
	}
	if !m.IsLive(4) {
		t.Fatal("repaired server not readmitted")
	}

	// The healed server serves full-strength SODA_err reads: all 5
	// respond and nothing is corrupt.
	r := mustReader(t, "r1", codec, lb.Conns(), WithReaderFaults(0), WithReadErrors(1), WithReaderMembership(m))
	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read after repair: %v", err)
	}
	if res.Tag != tag2 || !bytes.Equal(res.Value, v2) || len(res.Corrupt) != 0 {
		t.Fatalf("Read after repair = %v %q corrupt %v", res.Tag, res.Value, res.Corrupt)
	}
}

// TestRepairEmptyRegister: a suspect in an unwritten cluster has
// nothing to regenerate; repair degenerates into a reachability probe
// and readmits it.
func TestRepairEmptyRegister(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	m := NewMembership(5)
	rp := mustRepairer(t, codec, lb.Conns(), m)
	m.MarkSuspect(2, errors.New("operator hunch"))
	out, err := rp.RepairOnce(ctx, 2)
	if err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if out != RepairEmptyRegister || !m.IsLive(2) {
		t.Fatalf("outcome = %v, live = %v", out, m.IsLive(2))
	}
}

// TestRepairAlreadyCurrent: the suspect holds a newer tag than any
// version k live servers agree on (it took a write the others have
// not completed). Repair must not roll it back; the rejected install
// doubles as a health probe and the server is readmitted.
func TestRepairAlreadyCurrent(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	conns := lb.Conns()
	m := NewMembership(5)
	rp := mustRepairer(t, codec, lb.Conns(), m)
	w := mustWriter(t, "w1", codec, lb.Conns())
	v1 := []byte("complete everywhere")
	tag1, err := w.Write(ctx, testKey, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	// A half-applied newer write reaches only the future suspect.
	t2 := Tag{TS: tag1.TS + 1, Writer: "w2"}
	v2 := []byte("ahead of the pack")
	shards2, _ := codec.EncodeValue(v2)
	if err := conns[4].PutData(ctx, testKey, t2, shards2[4], len(v2)); err != nil {
		t.Fatalf("PutData: %v", err)
	}
	m.MarkSuspect(4, errors.New("false alarm"))
	out, err := rp.RepairOnce(ctx, 4)
	if err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if out != RepairAlreadyCurrent {
		t.Fatalf("outcome = %v, want already-current", out)
	}
	if tag, _, _ := lb.Server(4).Snapshot(testKey); tag != t2 {
		t.Fatalf("repair rolled the server back to %v", tag)
	}
	if !m.IsLive(4) {
		t.Fatal("healthy server not readmitted")
	}
}

// TestRepairRacesTornWrite: repair runs while a newer write is applied
// on only a minority of servers. The torn version cannot muster k
// matching elements, so repair installs the last complete version —
// never the torn one, and never anything below the suspect's current
// tag — and the torn write still completes afterwards.
func TestRepairRacesTornWrite(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 9, 3, rs.WithGenerator(rs.GeneratorRSView))
	conns := lb.Conns()
	m := NewMembership(9)
	rp := mustRepairer(t, codec, lb.Conns(), m)
	w := mustWriter(t, "w1", codec, lb.Conns())

	v1 := []byte("the last complete version")
	tag1, err := w.Write(ctx, testKey, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	lb.Crash(8)
	m.MarkSuspect(8, ErrServerDown)
	lb.Restart(8)

	// The torn write: t2 lands on a minority (2 < k) before the writer
	// stalls, racing the repair of server 8.
	t2 := Tag{TS: tag1.TS + 1, Writer: "w2"}
	v2 := []byte("torn, in flight")
	shards2, _ := codec.EncodeValue(v2)
	for _, i := range []int{0, 1} {
		if err := conns[i].PutData(ctx, testKey, t2, shards2[i], len(v2)); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
	}

	out, err := rp.RepairOnce(ctx, 8)
	if err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if out != RepairInstalled {
		t.Fatalf("outcome = %v", out)
	}
	shards1, _ := codec.EncodeValue(v1)
	tag, elem, _ := lb.Server(8).Snapshot(testKey)
	if tag != tag1 || !bytes.Equal(elem, shards1[8]) {
		t.Fatalf("repair installed %v, want the complete version %v (torn %v must lose)", tag, tag1, t2)
	}

	// The torn write completes; the healed server takes it like any
	// other and a read returns it.
	for i := 2; i < 9; i++ {
		if err := conns[i].PutData(ctx, testKey, t2, shards2[i], len(v2)); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
	}
	r := mustReader(t, "r1", codec, lb.Conns(), WithReaderMembership(m))
	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.Tag != t2 || !bytes.Equal(res.Value, v2) {
		t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, t2, v2)
	}
}

// lyingVLenConn is a donor that reports a bogus value length for its
// (genuine) tag, with the element resized to match the lie so it
// cannot be dismissed as malformed.
type lyingVLenConn struct {
	Conn
	codec *Codec
}

func (c lyingVLenConn) GetElem(ctx context.Context, key string) (Tag, []byte, int, error) {
	t, elem, vlen, err := c.Conn.GetElem(ctx, key)
	if err != nil || t.IsZero() {
		return t, elem, vlen, err
	}
	lie := vlen + 900
	lied := make([]byte, c.codec.shardSize(lie))
	copy(lied, elem)
	return t, lied, lie, nil
}

// TestRepairSurvivesVLenLyingDonor: collected elements are keyed by
// (tag, vlen) exactly like the read path, so a donor lying about the
// value length pollutes only its own bucket and the honest k still
// drive the repair.
func TestRepairSurvivesVLenLyingDonor(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3, rs.WithGenerator(rs.GeneratorRSView))
	// f=0: the write must land on every server before the crash, or a
	// lagging honest donor could leave the liar outnumbering k.
	w := mustWriter(t, "w1", codec, lb.Conns(), WithWriterFaults(0))
	v1 := []byte("value the liar misdescribes")
	tag1, err := w.Write(ctx, testKey, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	lb.Crash(4)
	m := NewMembership(5)
	m.MarkSuspect(4, ErrServerDown)
	lb.Restart(4)
	lb.Server(4).Wipe(testKey) // the crash took the disk with it

	conns := lb.Conns()
	conns[3] = lyingVLenConn{Conn: conns[3], codec: codec}
	rp := mustRepairer(t, codec, conns, m)
	out, err := rp.RepairOnce(ctx, 4)
	if err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if out != RepairInstalled {
		t.Fatalf("outcome = %v", out)
	}
	shards1, _ := codec.EncodeValue(v1)
	tag, elem, vlen := lb.Server(4).Snapshot(testKey)
	if tag != tag1 || vlen != len(v1) || !bytes.Equal(elem, shards1[4]) {
		t.Fatalf("server 4 after repair: %v vlen %d (liar won?)", tag, vlen)
	}
}

// TestRepairDetectsCorruptDonor: with the rs-view codec and donors to
// spare, the rebuild cross-checks its inputs — a donor serving rotten
// bytes is located, excluded from the regenerated element, and queued
// for its own repair.
func TestRepairDetectsCorruptDonor(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 9, 3, rs.WithGenerator(rs.GeneratorRSView))
	w := mustWriter(t, "w1", codec, lb.Conns())
	v1 := []byte("regenerated despite a rotten donor")
	tag1, err := w.Write(ctx, testKey, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	lb.Crash(8)
	m := NewMembership(9)
	m.MarkSuspect(8, ErrServerDown)
	lb.Restart(8)
	lb.Server(8).Wipe(testKey)
	lb.Corrupt(3, FlipByte(0)) // donor 3 rots before it donates

	var events []RepairEvent
	rp := mustRepairer(t, codec, lb.Conns(), m,
		WithRepairEvents(func(ev RepairEvent) { events = append(events, ev) }))
	out, err := rp.RepairOnce(ctx, 8)
	if err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if out != RepairInstalled {
		t.Fatalf("outcome = %v", out)
	}
	shards1, _ := codec.EncodeValue(v1)
	tag, elem, _ := lb.Server(8).Snapshot(testKey)
	if tag != tag1 || !bytes.Equal(elem, shards1[8]) {
		t.Fatal("corrupt donor poisoned the regenerated element")
	}
	if m.Health(3) == Live {
		t.Fatal("located corrupt donor was not quarantined")
	}
	if len(events) != 1 || events[0].Key != testKey || !slices.Equal(events[0].Corrupt, []int{3}) {
		t.Fatalf("events = %+v, want one for %q with Corrupt [3]", events, testKey)
	}

	// The disk swap: clear the rot, repair the donor, whole cluster live.
	lb.Corrupt(3, nil)
	if _, err := rp.RepairOnce(ctx, 3); err != nil {
		t.Fatalf("RepairOnce(3): %v", err)
	}
	if m.LiveCount() != 9 {
		t.Fatalf("live = %d after healing everyone", m.LiveCount())
	}
}

// TestRejoinMidReadCompletedByRepairRelay: a reader registers at a
// rejoined-but-stale server; its pending read cannot complete (the
// SODA_err rule needs all five elements) until the repair install is
// relayed through the server's registration — the "catches up readers
// it missed" half of readmission.
func TestRejoinMidReadCompletedByRepairRelay(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3, rs.WithGenerator(rs.GeneratorRSView))
	conns := lb.Conns()
	w := mustWriter(t, "w1", codec, conns)
	tag1, err := w.Write(ctx, testKey, []byte("v1"))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	// v2 lands on servers 0..3 by hand — a writer's own put-data
	// stragglers could race the restart below and leak the element onto
	// server 4, deflating the test.
	v2 := []byte("written while 4 was down")
	tag2 := tag1.Next("w2")
	shards2, _ := codec.EncodeValue(v2)
	for i := 0; i < 4; i++ {
		if err := conns[i].PutData(ctx, testKey, tag2, shards2[i], len(v2)); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
	}
	lb.Crash(4)
	lb.Restart(4) // rejoins stale: still holds v1's element

	// e=1, f=0: the read needs k+2e = 5 elements of tag2, but only 4
	// exist until repair catches server 4 up.
	r := mustReader(t, "r1", codec, lb.Conns(), WithReaderFaults(0), WithReadErrors(1))
	type outcome struct {
		res ReadResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := r.Read(ctx, testKey)
		resCh <- outcome{res, err}
	}()
	registerBy := time.Now().Add(30 * time.Second)
	for i := 0; i < 5; i++ {
		for lb.Server(i).Readers(testKey) == 0 {
			select {
			case o := <-resCh:
				t.Fatalf("read finished before registering everywhere: %v %v", o.res, o.err)
			default:
			}
			if time.Now().After(registerBy) {
				t.Fatalf("reader never registered at server %d", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case o := <-resCh:
		t.Fatalf("read completed with only 4 elements of its target: %v %v", o.res, o.err)
	case <-time.After(50 * time.Millisecond):
	}

	m := NewMembership(5)
	m.MarkSuspect(4, errors.New("stale after restart"))
	rp := mustRepairer(t, codec, lb.Conns(), m)
	if _, err := rp.RepairOnce(ctx, 4); err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	o := <-resCh
	if o.err != nil {
		t.Fatalf("Read: %v", o.err)
	}
	if o.res.Tag != tag2 || !bytes.Equal(o.res.Value, v2) || len(o.res.Corrupt) != 0 {
		t.Fatalf("Read = %v %q corrupt %v, want %v %q", o.res.Tag, o.res.Value, o.res.Corrupt, tag2, v2)
	}
}

// countingConn counts get-tag and put-data RPCs per server.
type countingConn struct {
	Conn
	gets, puts *atomic.Int64
}

func (c countingConn) GetTag(ctx context.Context, key string) (Tag, error) {
	c.gets.Add(1)
	return c.Conn.GetTag(ctx, key)
}

func (c countingConn) PutData(ctx context.Context, key string, t Tag, elem []byte, vlen int) error {
	c.puts.Add(1)
	return c.Conn.PutData(ctx, key, t, elem, vlen)
}

// TestWriterExcludesQuarantinedServers: a membership-aware writer
// never dials quarantined servers — they are charged to the fault
// budget f — and contacts them again after readmission. Quarantine
// beyond the budget fails fast instead of waiting out the context.
func TestWriterExcludesQuarantinedServers(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	m := NewMembership(5)
	raw := lb.Conns()
	conns := make([]Conn, 5)
	gets := make([]atomic.Int64, 5)
	puts := make([]atomic.Int64, 5)
	for i := range raw {
		conns[i] = countingConn{Conn: raw[i], gets: &gets[i], puts: &puts[i]}
	}
	w := mustWriter(t, "w1", codec, conns, WithWriterMembership(m))

	m.MarkSuspect(4, errCorruptElement)
	if _, err := w.Write(ctx, testKey, []byte("around the quarantine")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if gets[4].Load() != 0 || puts[4].Load() != 0 {
		t.Fatalf("writer contacted quarantined server 4: %d gets, %d puts", gets[4].Load(), puts[4].Load())
	}

	// Readmit: the next write includes it again.
	m.MarkRepairing(4)
	m.MarkLive(4)
	if _, err := w.Write(ctx, testKey, []byte("back in the quorum")); err != nil {
		t.Fatalf("Write after readmission: %v", err)
	}
	if gets[4].Load() == 0 || puts[4].Load() == 0 {
		t.Fatal("writer still skipping the readmitted server")
	}

	// Quarantine past the fault budget (f=1 here) fails fast.
	m.MarkSuspect(3, errCorruptElement)
	m.MarkSuspect(4, errCorruptElement)
	if _, err := w.Write(ctx, testKey, []byte("doomed")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Write with 2 quarantined, f=1: %v, want ErrUnavailable", err)
	}
}

// TestKillRepairRejoinSoak is the end-to-end proof obligation:
// repeated kill → repair → rejoin cycles, each crashing a *different*
// server, racing concurrent multi-writer multi-reader traffic, with
// the whole history checked for atomicity. The Repairer runs as the
// background anti-entropy loop it is in production: suspects arrive
// via the shared membership view (fed by the traffic's own transport
// errors plus the explicit marks below) and healed servers rejoin
// quorums automatically.
func TestKillRepairRejoinSoak(t *testing.T) {
	checkNoLeaks(t)
	ctx := testCtx(t)
	codec, lb := newCluster(t, 9, 3, rs.WithGenerator(rs.GeneratorRSView))
	m := NewMembership(9)
	rp := mustRepairer(t, codec, lb.Conns(), m,
		WithRepairInterval(20*time.Millisecond),
		WithRepairBackoff(Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}))

	rpCtx, rpCancel := context.WithCancel(ctx)
	rpDone := make(chan struct{})
	go func() {
		defer close(rpDone)
		rp.Run(rpCtx)
	}()
	defer func() {
		rpCancel()
		<-rpDone
	}()

	h := &history{}
	stop := make(chan struct{})
	const writers, readers, minOps = 2, 2, 15
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		w := mustWriter(t, fmt.Sprintf("w%d", wi), codec, lb.Conns(), WithWriterMembership(m))
		wg.Add(1)
		go func(wi int, w *Writer) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					if j >= minOps {
						return
					}
				default:
				}
				value := fmt.Sprintf("w%d-%d", wi, j)
				inv := h.begin()
				tag, err := w.Write(ctx, testKey, []byte(value))
				if err != nil {
					t.Errorf("writer %d op %d: %v", wi, j, err)
					return
				}
				h.end(true, inv, tag, value)
			}
		}(wi, w)
	}
	for ri := 0; ri < readers; ri++ {
		r := mustReader(t, fmt.Sprintf("r%d", ri), codec, lb.Conns(),
			WithReaderFaults(2), WithReadErrors(2), WithReaderMembership(m))
		wg.Add(1)
		go func(ri int, r *Reader) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					if j >= minOps {
						return
					}
				default:
				}
				inv := h.begin()
				res, err := r.Read(ctx, testKey)
				if err != nil {
					t.Errorf("reader %d op %d: %v", ri, j, err)
					return
				}
				h.end(false, inv, res.Tag, string(res.Value))
			}
		}(ri, r)
	}

	// The kill-repair-rejoin cycles, a different server each time.
	for cyc, s := range []int{4, 7, 2} {
		lb.Crash(s)
		m.MarkSuspect(s, ErrServerDown)
		time.Sleep(25 * time.Millisecond) // traffic rides through the hole
		tagDown, _, _ := lb.Server(s).Snapshot(testKey)
		lb.Restart(s)
		actx, acancel := context.WithTimeout(ctx, 15*time.Second)
		err := m.AwaitLive(actx, s)
		acancel()
		if err != nil {
			t.Fatalf("cycle %d: server %d never repaired: %v (health %v, cause %v)",
				cyc, s, err, m.Health(s), m.Cause(s))
		}
		tagUp, _, _ := lb.Server(s).Snapshot(testKey)
		if tagUp.Less(tagDown) {
			t.Fatalf("cycle %d: repair rolled server %d back from %v to %v", cyc, s, tagDown, tagUp)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	h.check(t)

	// The healed cluster at full strength: every server answers, and a
	// zero-fault-budget SODA_err read across all nine reports nothing
	// corrupt — formerly quarantined servers included.
	for i := 0; i < 9; i++ {
		if _, err := lb.Conns()[i].GetTag(ctx, testKey); err != nil {
			t.Fatalf("server %d does not serve after the soak: %v", i, err)
		}
	}
	r := mustReader(t, "rz", codec, lb.Conns(), WithReaderFaults(0), WithReadErrors(2))
	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if len(res.Corrupt) != 0 {
		t.Fatalf("final read still names corrupt servers: %v", res.Corrupt)
	}
	if res.Tag.IsZero() {
		t.Fatal("final read returned the initial state after all that traffic")
	}
}

// TestBackoffSchedule pins the shared retry helper: exponential
// growth to the cap, reset, defaults, and context-bounded sleeping.
func TestBackoffSchedule(t *testing.T) {
	checkNoLeaks(t)
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("Next #%d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset, Next = %v", got)
	}

	var zero Backoff
	if got := zero.Next(); got != defaultBackoffBase {
		t.Fatalf("zero-value Next = %v, want %v", got, defaultBackoffBase)
	}

	// A cancelled context cuts the sleep short with its error.
	slow := Backoff{Base: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := slow.Sleep(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under cancellation = %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("Sleep ignored cancellation")
	}

	// retry: eventual success, exhaustion, and context abort.
	calls := 0
	err := retry(context.Background(), 5, Backoff{Base: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retry = %v after %d calls", err, calls)
	}
	calls = 0
	sentinel := errors.New("always")
	err = retry(context.Background(), 3, Backoff{Base: time.Microsecond}, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 3 {
		t.Fatalf("exhausted retry = %v after %d calls", err, calls)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	calls = 0
	err = retry(cctx, 10, Backoff{Base: time.Hour}, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("cancelled retry = %v after %d calls (must not sleep)", err, calls)
	}
}
