package soda

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"
)

// Reconfigurator drives the two-phase online geometry flip:
//
//	seal ──▶ migrate ──▶ activate ──▶ install
//
// Seal freezes the old epoch on every member (old and new): sealed
// servers NACK client operations but keep serving donor reads of the
// frozen state, so writers and readers pause (their epoch-stamped
// frames bounce with "want = pending") while nothing moves underneath
// the migration. Migrate drains every key out of the old geometry —
// collect k agreeing elements from the old members, decode under the
// old [n,k] code, re-encode under the new one — and lays the new
// elements down on every new member with RepairPut at the pending
// epoch (the one frame class sealed servers accept, and tag-monotone,
// so re-running a crashed migration is idempotent). Activate flips
// every new member to the new epoch, and Install publishes the new
// Config to the shared view, releasing the waiting clients.
//
// Safety: a completed write has elements on n−f ≥ k old members, and
// the seal means no tag moves during the drain, so chooseVersion's
// k-agreement requirement finds every completed write's latest
// version; re-encoding preserves the value and the tag, so a read
// under the new epoch returns exactly what the old epoch would have.
// In-flight operations that straddle the flip either completed their
// quorum entirely before the seal (they count) or are NACKed and
// retried entirely under the new epoch (they re-assemble from
// scratch); no quorum ever spans both.
//
// Crash-safety: every transition is WAL-logged and force-synced on
// durable members before it applies, and all three phases are
// idempotent, so a coordinator (or member) that power-cuts mid-flip
// re-runs Apply and converges: a member that already sealed reports
// the seal, re-installed elements bounce off the tag floor, and a
// member that already activated acknowledges the retry. Any activated
// member proves the migration completed (activation is only ever
// issued after a full drain), so a re-run skips straight to finishing
// the activation.
type Reconfigurator struct {
	view    *ConfigView
	backoff Backoff
	logf    func(format string, args ...any)
}

// ReconfigOption configures a Reconfigurator.
type ReconfigOption func(*Reconfigurator)

// WithReconfigBackoff sets the retry schedule used inside each phase
// when a member is unreachable (default 20ms..2s). A flip does not
// give up on a member: a node power-cut mid-flip blocks the phase
// until it recovers, which is what keeps activation from outrunning
// the drain.
func WithReconfigBackoff(b Backoff) ReconfigOption {
	return func(rc *Reconfigurator) { rc.backoff = b }
}

// WithReconfigLogf installs a progress logger (phase transitions and
// per-member retries).
func WithReconfigLogf(logf func(format string, args ...any)) ReconfigOption {
	return func(rc *Reconfigurator) { rc.logf = logf }
}

// NewReconfigurator builds the coordinator around the cluster's
// shared ConfigView.
func NewReconfigurator(view *ConfigView, opts ...ReconfigOption) *Reconfigurator {
	rc := &Reconfigurator{
		view:    view,
		backoff: Backoff{Base: 20 * time.Millisecond, Max: 2 * time.Second},
		logf:    func(string, ...any) {},
	}
	for _, opt := range opts {
		opt(rc)
	}
	return rc
}

// reconfigConn asserts the Reconfigurer capability on a member conn.
func reconfigConn(c Conn) (Reconfigurer, error) {
	if r, ok := c.(Reconfigurer); ok {
		return r, nil
	}
	return nil, fmt.Errorf("%w: conn for server %d does not support reconfiguration", ErrConfig, c.Index())
}

// members is the seal set of a flip: every server in the old or new
// configuration, each exactly once. Old and new conns for one shard
// index address the same server (membership is index-prefix: growing
// appends indices, shrinking drops the tail), so the set is the
// longer conn list's indices, preferring the old conn for indices
// both cover — retired members must seal too, or a lagging writer
// could complete an old-epoch quorum against them.
func members(old, next *Config) []Conn {
	out := slices.Clone(old.Conns)
	for _, c := range next.Conns {
		if c.Index() >= len(old.Conns) {
			out = append(out, c)
		}
	}
	return out
}

// sleep waits one backoff step or until ctx ends.
func (rc *Reconfigurator) sleep(ctx context.Context, b *Backoff) error {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// eachUntil applies fn to every conn, retrying the failures with
// backoff until all succeed or ctx ends.
func (rc *Reconfigurator) eachUntil(ctx context.Context, phase string, conns []Conn, fn func(Conn) error) error {
	pending := slices.Clone(conns)
	b := rc.backoff
	for {
		var failed []Conn
		var firstErr error
		for _, c := range pending {
			if err := fn(c); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				failed = append(failed, c)
			}
		}
		if len(failed) == 0 {
			return nil
		}
		rc.logf("reconfig: %s: %d member(s) pending (%v), retrying", phase, len(failed), firstErr)
		if err := rc.sleep(ctx, &b); err != nil {
			return fmt.Errorf("reconfig %s: %w (last member error: %w)", phase, err, firstErr)
		}
		pending = failed
	}
}

// Apply performs one online reconfiguration from the view's current
// configuration to next, blocking until the new epoch is active and
// installed. Safe to re-run after a coordinator crash; returns only
// on success or context end.
func (rc *Reconfigurator) Apply(ctx context.Context, next *Config) error {
	if err := next.validate(); err != nil {
		return err
	}
	old := rc.view.Current()
	if next.Epoch <= old.Epoch {
		return fmt.Errorf("%w: reconfiguring to epoch %d from %d", ErrConfig, next.Epoch, old.Epoch)
	}

	// Phase 0: status probe. Any new member already at (or past) the
	// target epoch proves a previous run finished the drain and began
	// activating; skip straight to re-issuing the activation.
	activated := 0
	for _, c := range next.Conns {
		r, err := reconfigConn(c)
		if err != nil {
			return err
		}
		if st, err := r.Reconfig(ctx, ReconfigStatus, 0, 0, 0); err == nil && st.Epoch >= next.Epoch {
			activated++
		}
	}

	if activated == 0 {
		// Phase 1: seal every member of both configurations.
		rc.logf("reconfig: sealing epoch %d pending %d across %d member(s)", old.Epoch, next.Epoch, len(members(old, next)))
		err := rc.eachUntil(ctx, "seal", members(old, next), func(c Conn) error {
			r, err := reconfigConn(c)
			if err != nil {
				return err
			}
			_, err = r.Reconfig(ctx, ReconfigSeal, next.Epoch, next.N(), next.K())
			return err
		})
		if err != nil {
			return err
		}

		// Phase 2: drain the frozen namespace into the new geometry.
		if err := rc.migrate(ctx, old, next); err != nil {
			return err
		}
	} else {
		rc.logf("reconfig: %d member(s) already at epoch %d; resuming activation", activated, next.Epoch)
	}

	// Phase 3: activate every new member. Retired members stay sealed
	// forever — their epoch never answers another client quorum.
	err := rc.eachUntil(ctx, "activate", next.Conns, func(c Conn) error {
		r, err := reconfigConn(c)
		if err != nil {
			return err
		}
		_, err = r.Reconfig(ctx, ReconfigActivate, next.Epoch, next.N(), next.K())
		return err
	})
	if err != nil {
		return err
	}

	// Phase 4: publish. Waiting clients (EpochWriter/EpochReader in
	// Await) wake here and retry under the new geometry.
	if err := rc.view.Install(next); err != nil {
		// A concurrent coordinator may have installed past us; epoch
		// monotonicity already holds, so only a genuinely conflicting
		// install is an error.
		if rc.view.Current().Epoch >= next.Epoch {
			return nil
		}
		return err
	}
	rc.logf("reconfig: epoch %d active (n=%d k=%d)", next.Epoch, next.N(), next.K())
	return nil
}

// migrate drains every key from the old configuration into the new
// one: enumerate the frozen namespace from the old members, and for
// each key collect k agreeing elements, decode under the old code,
// re-encode under the new, and install on every new member at the
// pending epoch. Keys that cannot reach k agreement yet (a donor
// mid-recovery) retry with backoff; the drain does not finish without
// them.
func (rc *Reconfigurator) migrate(ctx context.Context, old, next *Config) error {
	oldF := old.F
	if oldF < 0 {
		oldF = (old.N() - old.K()) / 2
	}

	// Enumerate from at least n−f old members: a completed write's key
	// lives on n−f of them, and (n−f)+(n−f) > n means any two such
	// quorums intersect, so the union over n−f enumerations cannot miss
	// a completed write.
	var keys []string
	b := rc.backoff
	for {
		union := make(map[string]struct{})
		answers := 0
		var firstErr error
		for _, c := range old.Conns {
			ks, err := c.Keys(ctx)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			answers++
			for _, k := range ks {
				union[k] = struct{}{}
			}
		}
		if answers >= old.N()-oldF {
			keys = make([]string, 0, len(union))
			for k := range union {
				keys = append(keys, k)
			}
			slices.Sort(keys)
			break
		}
		rc.logf("reconfig: migrate: only %d of %d donors enumerated (%v), retrying", answers, old.N(), firstErr)
		if err := rc.sleep(ctx, &b); err != nil {
			return fmt.Errorf("reconfig migrate: enumerating keys: %w (last donor error: %w)", err, firstErr)
		}
	}

	rc.logf("reconfig: migrating %d key(s) from [n=%d,k=%d] to [n=%d,k=%d]", len(keys), old.N(), old.K(), next.N(), next.K())
	for _, key := range keys {
		if err := rc.migrateKey(ctx, old, next, key); err != nil {
			return err
		}
	}
	return nil
}

// migrateKey drains one key, retrying collection until k old members
// agree on a version.
func (rc *Reconfigurator) migrateKey(ctx context.Context, old, next *Config, key string) error {
	b := rc.backoff
	for {
		ver, elems, err := rc.collectOld(ctx, old, key)
		if err == nil {
			return rc.installNew(ctx, old, next, key, ver, elems)
		}
		if !errors.Is(err, ErrRepairQuorum) {
			return err
		}
		rc.logf("reconfig: migrate %q: %v, retrying", key, err)
		if serr := rc.sleep(ctx, &b); serr != nil {
			return fmt.Errorf("reconfig migrate %q: %w (last collection error: %w)", key, serr, err)
		}
	}
}

// collectOld gathers the key's elements from the old members and picks
// the highest version at least k of them vouch for. The cluster is
// sealed, so "no k-agreement" can only mean donors are down or still
// recovering — a retryable state, reported as ErrRepairQuorum.
func (rc *Reconfigurator) collectOld(ctx context.Context, old *Config, key string) (version, map[int][]byte, error) {
	var donations []donation
	for _, c := range old.Conns {
		t, elem, vlen, err := c.GetElem(ctx, key)
		if err != nil {
			if ctx.Err() != nil {
				return version{}, nil, ctx.Err()
			}
			continue
		}
		if !t.IsZero() && (vlen <= 0 || len(elem) != old.Codec.shardSize(vlen)) {
			continue // malformed donor element; contributes nothing
		}
		donations = append(donations, donation{server: c.Index(), ver: version{tag: t, vlen: vlen}, elem: elem})
	}
	ver, elems := chooseVersion(donations, old.K())
	if elems == nil {
		return version{}, nil, fmt.Errorf("%w: key %q, %d donors", ErrRepairQuorum, key, len(donations))
	}
	return ver, elems, nil
}

// installNew re-encodes one version under the new geometry and lays it
// down on every new member at the pending epoch.
func (rc *Reconfigurator) installNew(ctx context.Context, old, next *Config, key string, ver version, elems map[int][]byte) error {
	var shards [][]byte
	if !ver.tag.IsZero() {
		// Decode the value under the old code...
		oldShards := make([][]byte, old.N())
		for i, el := range elems {
			oldShards[i] = slices.Clone(el)
		}
		if err := old.Codec.enc.ReconstructData(oldShards); err != nil {
			return fmt.Errorf("reconfig migrate %q: decoding under old geometry: %w", key, err)
		}
		value, err := old.Codec.DecodeValue(oldShards, ver.vlen)
		if err != nil {
			return fmt.Errorf("reconfig migrate %q: decoding under old geometry: %w", key, err)
		}
		// ...and re-encode it under the new one.
		shards, err = next.Codec.EncodeValue(value)
		if err != nil {
			return fmt.Errorf("reconfig migrate %q: re-encoding under new geometry: %w", key, err)
		}
	}
	return rc.eachUntil(ctx, "install "+key, next.Conns, func(c Conn) error {
		var elem []byte
		if shards != nil {
			elem = shards[c.Index()]
		}
		// Tag-monotone and idempotent: a re-run's install bounces off
		// the tag floor, and accepted=false (the member already holds
		// something at least as new) is success, not conflict.
		_, err := c.RepairPut(ctx, key, ver.tag, elem, ver.vlen)
		return err
	})
}
