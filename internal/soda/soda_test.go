package soda

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rs"
)

// testKey is the register every single-key protocol test works on;
// the namespace tests exercise multi-key behaviour separately.
const testKey = "test/register"

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func newCluster(t *testing.T, n, k int, opts ...rs.Option) (*Codec, *Loopback) {
	t.Helper()
	codec, err := NewCodec(n, k, opts...)
	if err != nil {
		t.Fatalf("NewCodec(%d,%d): %v", n, k, err)
	}
	return codec, NewLoopback(n)
}

func mustWriter(t *testing.T, id string, codec *Codec, conns []Conn, opts ...WriterOption) *Writer {
	t.Helper()
	w, err := NewWriter(id, codec, conns, opts...)
	if err != nil {
		t.Fatalf("NewWriter(%s): %v", id, err)
	}
	return w
}

func mustReader(t *testing.T, id string, codec *Codec, conns []Conn, opts ...ReaderOption) *Reader {
	t.Helper()
	r, err := NewReader(id, codec, conns, opts...)
	if err != nil {
		t.Fatalf("NewReader(%s): %v", id, err)
	}
	return r
}

func TestCodecValueRoundTrip(t *testing.T) {
	codec, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 3, 16, 31, 32, 1000} {
		value := make([]byte, size)
		for i := range value {
			value[i] = byte(i * 7)
		}
		shards, err := codec.EncodeValue(value)
		if err != nil {
			t.Fatalf("EncodeValue(%d): %v", size, err)
		}
		if len(shards) != 5 {
			t.Fatalf("EncodeValue(%d) = %d shards", size, len(shards))
		}
		got, err := codec.DecodeValue(shards, size)
		if err != nil {
			t.Fatalf("DecodeValue(%d): %v", size, err)
		}
		if !bytes.Equal(got, value) {
			t.Fatalf("value of %d bytes did not round trip", size)
		}
	}
	if _, err := codec.EncodeValue(nil); err != ErrEmptyValue {
		t.Fatalf("EncodeValue(nil) = %v, want ErrEmptyValue", err)
	}
}

// TestWriteReadRoundTrip is the protocol happy path: two-phase write,
// then a relayed read, on a healthy loopback cluster.
func TestWriteReadRoundTrip(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	w := mustWriter(t, "w1", codec, lb.Conns())
	r := mustReader(t, "r1", codec, lb.Conns())

	v1 := []byte("SODA stores one coded element per server")
	tag1, err := w.Write(ctx, testKey, v1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if tag1.TS != 1 || tag1.Writer != "w1" {
		t.Fatalf("first write tag = %v", tag1)
	}
	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.Tag != tag1 || !bytes.Equal(res.Value, v1) {
		t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, tag1, v1)
	}
	if len(res.Corrupt) != 0 {
		t.Fatalf("healthy read reported corrupt servers %v", res.Corrupt)
	}

	// A second write supersedes the first for subsequent reads.
	v2 := []byte("second version, bigger than the first one was")
	tag2, err := w.Write(ctx, testKey, v2)
	if err != nil {
		t.Fatalf("Write 2: %v", err)
	}
	if !tag1.Less(tag2) {
		t.Fatalf("tags not increasing: %v then %v", tag1, tag2)
	}
	if res, err = r.Read(ctx, testKey); err != nil || res.Tag != tag2 || !bytes.Equal(res.Value, v2) {
		t.Fatalf("Read 2 = %v %q (%v), want %v", res.Tag, res.Value, err, tag2)
	}

	// Every server ended up holding exactly one coded element — the
	// storage bound the paper is named for.
	shards, _ := codec.EncodeValue(v2)
	for i := 0; i < 5; i++ {
		tag, elem, vlen := lb.Server(i).Snapshot(testKey)
		if tag != tag2 || vlen != len(v2) || !bytes.Equal(elem, shards[i]) {
			t.Fatalf("server %d snapshot = %v vlen %d", i, tag, vlen)
		}
		// Unregistration is asynchronous with Read returning; give the
		// teardown a moment.
		deadline := time.Now().Add(2 * time.Second)
		for lb.Server(i).Readers(testKey) != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("server %d still has %d registered readers", i, lb.Server(i).Readers(testKey))
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestReadEmptyRegister: a read before any write returns the initial
// (zero-tag, empty) value.
func TestReadEmptyRegister(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	r := mustReader(t, "r1", codec, lb.Conns())
	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !res.Tag.IsZero() || len(res.Value) != 0 {
		t.Fatalf("empty register read = %v %q", res.Tag, res.Value)
	}
}

// TestWriterCrashBetweenPhases fault-injects the classic two-phase
// failure: a writer that performs get-tag but dies before put-data.
// The phantom tag must be invisible — reads keep returning the old
// state — and must not block later writers or readers.
func TestWriterCrashBetweenPhases(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	w1 := mustWriter(t, "w1", codec, lb.Conns())
	w2 := mustWriter(t, "w2", codec, lb.Conns())
	r := mustReader(t, "r1", codec, lb.Conns())

	phantom, err := w1.NextTag(ctx, testKey)
	if err != nil {
		t.Fatalf("NextTag: %v", err)
	}
	// w1 crashes here: phantom is never put anywhere.

	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read after phantom get-tag: %v", err)
	}
	if !res.Tag.IsZero() || len(res.Value) != 0 {
		t.Fatalf("read after phantom get-tag = %v %q, want the initial state", res.Tag, res.Value)
	}

	v2 := []byte("a write that actually completes")
	tag2, err := w2.Write(ctx, testKey, v2)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	res, err = r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.Tag != tag2 || !bytes.Equal(res.Value, v2) {
		t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, tag2, v2)
	}
	if res.Tag == phantom {
		t.Fatalf("read returned the phantom tag %v", phantom)
	}
}

// TestReadRidesThroughServerFailures covers f server failures around
// a read: one server silently dead before the read starts, and one
// fail-stop crash mid-read, right after its initial response.
func TestReadRidesThroughServerFailures(t *testing.T) {
	ctx := testCtx(t)
	v1 := []byte("still readable with f failures")

	t.Run("silent crash before read", func(t *testing.T) {
		codec, lb := newCluster(t, 5, 3)
		w := mustWriter(t, "w1", codec, lb.Conns())
		tag1, err := w.Write(ctx, testKey, v1)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		lb.Hang(2) // crashes: never answers again, connections stay up
		r := mustReader(t, "r1", codec, lb.Conns())
		res, err := r.Read(ctx, testKey)
		if err != nil {
			t.Fatalf("Read with a hung server: %v", err)
		}
		if res.Tag != tag1 || !bytes.Equal(res.Value, v1) {
			t.Fatalf("Read = %v %q", res.Tag, res.Value)
		}
	})

	t.Run("fail-stop crash mid-read", func(t *testing.T) {
		codec, lb := newCluster(t, 5, 3)
		w := mustWriter(t, "w1", codec, lb.Conns())
		tag1, err := w.Write(ctx, testKey, v1)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		// The moment server 2's initial response reaches the reader,
		// kill server 2: the crash is concurrent with the read, after
		// the response is on the wire.
		lb.OnDeliver(func(server int, _, _ string, d Delivery) {
			if server == 2 && d.Initial {
				lb.Crash(2)
			}
		})
		r := mustReader(t, "r1", codec, lb.Conns())
		res, err := r.Read(ctx, testKey)
		if err != nil {
			t.Fatalf("Read with a mid-read crash: %v", err)
		}
		if res.Tag != tag1 || !bytes.Equal(res.Value, v1) {
			t.Fatalf("Read = %v %q", res.Tag, res.Value)
		}
		if _, err := lb.Conns()[2].GetTag(ctx, testKey); err != ErrServerDown {
			t.Fatalf("server 2 should be down, GetTag err = %v", err)
		}
	})

	t.Run("too many failures fails fast", func(t *testing.T) {
		codec, lb := newCluster(t, 5, 3)
		lb.Crash(0)
		lb.Crash(1)
		r := mustReader(t, "r1", codec, lb.Conns()) // f = 1
		if _, err := r.Read(ctx, testKey); err == nil {
			t.Fatal("Read with 2 crashed servers and f=1 succeeded")
		}
	})
}

// TestRelayCompletesPendingRead pins down the relay mechanism itself:
// a read that starts while a write is only partially applied cannot
// finish from initial responses — its target tag has too few elements
// — and must complete the moment a third server receives the write
// and relays its element. A concurrent fail-stop of an unrelated
// server rides along.
func TestRelayCompletesPendingRead(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	conns := lb.Conns()
	w := mustWriter(t, "w1", codec, lb.Conns())
	v1 := []byte("version one, fully written")
	if _, err := w.Write(ctx, testKey, v1); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Half-apply a second write by hand: tag t2 reaches servers 0 and
	// 1 only, as if the writer were slow mid-put-data.
	v2 := []byte("version two, in flight")
	t2 := Tag{TS: 2, Writer: "w2"}
	shards2, err := codec.EncodeValue(v2)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		if err := conns[i].PutData(ctx, testKey, t2, shards2[i], len(v2)); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
	}

	// The read's target tag becomes t2 (servers 0 and 1 answer with
	// it), but only two t2 elements exist: the read must block.
	r := mustReader(t, "r1", codec, lb.Conns())
	type outcome struct {
		res ReadResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := r.Read(ctx, testKey)
		resCh <- outcome{res, err}
	}()

	// Wait until the read is registered everywhere, then prove it is
	// genuinely pending.
	for i := 0; i < 5; i++ {
		for lb.Server(i).Readers(testKey) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case o := <-resCh:
		t.Fatalf("read completed with only 2 elements of its target tag: %v %v", o.res, o.err)
	case <-time.After(50 * time.Millisecond):
	}

	lb.Crash(4) // an unrelated server dies mid-read

	// The write makes progress on one more server; its relay is what
	// completes the read.
	if err := conns[2].PutData(ctx, testKey, t2, shards2[2], len(v2)); err != nil {
		t.Fatalf("PutData(2): %v", err)
	}
	o := <-resCh
	if o.err != nil {
		t.Fatalf("Read: %v", o.err)
	}
	if o.res.Tag != t2 || !bytes.Equal(o.res.Value, v2) {
		t.Fatalf("Read = %v %q, want %v %q", o.res.Tag, o.res.Value, t2, v2)
	}
}

// TestPendingReadFailsFastWhenHopeless: a read that is pending on
// relays must not hang forever once so many servers have crashed that
// no version can ever reach k elements — it fails with
// ErrUnavailable instead of waiting out the caller's context. (The
// flip side of the crash model: as long as the missing elements COULD
// still arrive — a slow writer finishing its puts through live
// servers — the read keeps waiting; only provable impossibility
// aborts it.)
func TestPendingReadFailsFastWhenHopeless(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	conns := lb.Conns()
	w := mustWriter(t, "w1", codec, lb.Conns())
	if _, err := w.Write(ctx, testKey, []byte("v1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Pending state: target tag t2 exists on two servers only.
	t2 := Tag{TS: 2, Writer: "w2"}
	v2 := []byte("half-applied")
	shards2, err := codec.EncodeValue(v2)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		if err := conns[i].PutData(ctx, testKey, t2, shards2[i], len(v2)); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
	}
	r := mustReader(t, "r1", codec, lb.Conns())
	errCh := make(chan error, 1)
	go func() {
		_, err := r.Read(ctx, testKey)
		errCh <- err
	}()
	for i := 0; i < 5; i++ {
		for lb.Server(i).Readers(testKey) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	// Kill everything: no element of any tag can ever arrive again,
	// and t2 is stuck at two elements.
	for i := 0; i < 5; i++ {
		lb.Crash(i)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("hopeless read returned a value")
		}
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("hopeless read error = %v, want ErrUnavailable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hopeless read hung instead of failing fast")
	}
}

// TestReadNeverGoesBackwards pins the read-after-read corner that
// forces the f < k constraint: a read that adopts a *half-applied*
// write returns a tag held by only k servers. With f < k, a later
// read's n-f initial quorum always meets one of those holders, so it
// can never fix a target tag below the returned one — at worst it
// blocks until the write makes progress. (With f >= k the later read
// could quorum entirely on the other servers and return the older
// tag; NewReader rejects that configuration, see TestConfigValidation.)
func TestReadNeverGoesBackwards(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 9, 3)
	conns := lb.Conns()
	w := mustWriter(t, "w1", codec, lb.Conns())
	if _, err := w.Write(ctx, testKey, []byte("old value")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// tag2 half-applied: exactly k=3 servers hold it.
	t2 := Tag{TS: 2, Writer: "w2"}
	v2 := []byte("new value")
	shards2, err := codec.EncodeValue(v2)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2} {
		if err := conns[i].PutData(ctx, testKey, t2, shards2[i], len(v2)); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
	}
	// R1 adopts the half-applied write (its initials include servers
	// 0-2, so t* = t2 and the three elements decode).
	r1 := mustReader(t, "r1", codec, lb.Conns(), WithReaderFaults(2))
	res1, err := r1.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("R1: %v", err)
	}
	if res1.Tag != t2 || !bytes.Equal(res1.Value, v2) {
		t.Fatalf("R1 = %v %q, want the half-applied %v", res1.Tag, res1.Value, t2)
	}
	// f of the k holders die. The one survivor (server 2) is in every
	// n-f=7 initial quorum, so R2's target stays t2: it must block
	// rather than return the old tag...
	lb.Hang(0)
	lb.Hang(1)
	r2 := mustReader(t, "r2", codec, lb.Conns(), WithReaderFaults(2))
	type outcome struct {
		res ReadResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := r2.Read(ctx, testKey)
		resCh <- outcome{res, err}
	}()
	select {
	case o := <-resCh:
		if o.err == nil && o.res.Tag.Less(res1.Tag) {
			t.Fatalf("reads went backwards: R1 returned %v, then R2 returned %v", res1.Tag, o.res.Tag)
		}
		t.Fatalf("R2 completed early: %v %v", o.res, o.err)
	case <-time.After(100 * time.Millisecond):
	}
	// ...until the write makes progress and the relays complete it.
	for _, i := range []int{3, 4} {
		if err := conns[i].PutData(ctx, testKey, t2, shards2[i], len(v2)); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
	}
	o := <-resCh
	if o.err != nil {
		t.Fatalf("R2: %v", o.err)
	}
	if o.res.Tag.Less(res1.Tag) {
		t.Fatalf("reads went backwards: R1 returned %v, then R2 returned %v", res1.Tag, o.res.Tag)
	}
	if o.res.Tag != t2 || !bytes.Equal(o.res.Value, v2) {
		t.Fatalf("R2 = %v %q, want %v %q", o.res.Tag, o.res.Value, t2, v2)
	}
}

// TestSodaErrReadNamesCorruptServers exercises the SODA_err read
// path: with the rs-view generator and k+2e matching responses, the
// reader locates silently corrupt servers, returns the written value
// anyway, and reports the corrupt indices for quarantine.
func TestSodaErrReadNamesCorruptServers(t *testing.T) {
	ctx := testCtx(t)
	v1 := []byte("the adversary flips bits, the dual code sees them")

	t.Run("one corrupt server at n=5 k=3", func(t *testing.T) {
		codec, lb := newCluster(t, 5, 3, rs.WithGenerator(rs.GeneratorRSView))
		w := mustWriter(t, "w1", codec, lb.Conns())
		tag1, err := w.Write(ctx, testKey, v1)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		lb.Corrupt(4, FlipByte(1))
		r := mustReader(t, "r1", codec, lb.Conns(), WithReaderFaults(0), WithReadErrors(1))
		res, err := r.Read(ctx, testKey)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if res.Tag != tag1 || !bytes.Equal(res.Value, v1) {
			t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, tag1, v1)
		}
		if !slices.Equal(res.Corrupt, []int{4}) {
			t.Fatalf("Corrupt = %v, want [4]", res.Corrupt)
		}

		// Quarantining the named server lets a plain reader avoid it.
		q := mustReader(t, "r2", codec, lb.Conns(), WithQuarantine(res.Corrupt...))
		qres, err := q.Read(ctx, testKey)
		if err != nil {
			t.Fatalf("quarantined Read: %v", err)
		}
		if qres.Tag != tag1 || !bytes.Equal(qres.Value, v1) {
			t.Fatalf("quarantined Read = %v %q", qres.Tag, qres.Value)
		}
	})

	t.Run("no corruption passes Verify", func(t *testing.T) {
		codec, lb := newCluster(t, 5, 3, rs.WithGenerator(rs.GeneratorRSView))
		w := mustWriter(t, "w1", codec, lb.Conns())
		if _, err := w.Write(ctx, testKey, v1); err != nil {
			t.Fatalf("Write: %v", err)
		}
		r := mustReader(t, "r1", codec, lb.Conns(), WithReaderFaults(0), WithReadErrors(1))
		res, err := r.Read(ctx, testKey)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if len(res.Corrupt) != 0 || !bytes.Equal(res.Value, v1) {
			t.Fatalf("Read = %q corrupt %v", res.Value, res.Corrupt)
		}
	})

	t.Run("two corrupt plus two crashed at n=9 k=3", func(t *testing.T) {
		codec, lb := newCluster(t, 9, 3, rs.WithGenerator(rs.GeneratorRSView))
		w := mustWriter(t, "w1", codec, lb.Conns())
		tag1, err := w.Write(ctx, testKey, v1)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		lb.Hang(7)
		lb.Hang(8)
		lb.Corrupt(1, FlipByte(0))
		lb.Corrupt(5, FlipByte(2))
		// n-f = 7 = k+2e responses: erasures 2, errors 2, radius
		// 2*2+2 = 6 = n-k. Exactly at the decoding bound.
		r := mustReader(t, "r1", codec, lb.Conns(), WithReaderFaults(2), WithReadErrors(2))
		res, err := r.Read(ctx, testKey)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if res.Tag != tag1 || !bytes.Equal(res.Value, v1) {
			t.Fatalf("Read = %v %q", res.Tag, res.Value)
		}
		if !slices.Equal(res.Corrupt, []int{1, 5}) {
			t.Fatalf("Corrupt = %v, want [1 5]", res.Corrupt)
		}
	})

	t.Run("error reader requires the rs-view generator", func(t *testing.T) {
		codec, lb := newCluster(t, 5, 3) // default Cauchy: no syndromes
		if _, err := NewReader("r1", codec, lb.Conns(), WithReadErrors(1)); err == nil {
			t.Fatal("NewReader(WithReadErrors) accepted a Cauchy codec")
		}
	})
}

// TestSharedWriterConcurrentWrites: Write serializes itself, so one
// Writer used from many goroutines must mint strictly distinct tags —
// overlapping get-tag phases would otherwise assign one tag to two
// different values and split the servers between two codewords.
func TestSharedWriterConcurrentWrites(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	w := mustWriter(t, "w1", codec, lb.Conns())
	const goroutines, each = 4, 5
	tagCh := make(chan Tag, goroutines*each)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				tag, err := w.Write(ctx, testKey, []byte(fmt.Sprintf("g%d-%d", g, j)))
				if err != nil {
					t.Errorf("Write: %v", err)
					return
				}
				tagCh <- tag
			}
		}(g)
	}
	wg.Wait()
	close(tagCh)
	seen := make(map[Tag]bool)
	for tag := range tagCh {
		if seen[tag] {
			t.Fatalf("tag %v minted twice by one writer", tag)
		}
		seen[tag] = true
	}
	if len(seen) != goroutines*each {
		t.Fatalf("%d distinct tags, want %d", len(seen), goroutines*each)
	}
	r := mustReader(t, "r1", codec, lb.Conns())
	if _, err := r.Read(ctx, testKey); err != nil {
		t.Fatalf("Read after concurrent writes: %v", err)
	}
}

// TestReadSurvivesVLenLie: a server that reports a bogus value length
// for a tag must not be able to stall the read — elements are keyed
// by (tag, vlen), so the lie pollutes only its own bucket while the
// honest servers' version still decodes.
func TestReadSurvivesVLenLie(t *testing.T) {
	codec, lb := newCluster(t, 5, 3)
	r := mustReader(t, "r1", codec, lb.Conns())
	value := []byte("ten bytes!")
	shards, err := codec.EncodeValue(value)
	if err != nil {
		t.Fatal(err)
	}
	t1 := Tag{TS: 1, Writer: "w1"}

	st := r.getState()
	// The liar answers first: right tag, absurd vlen, element sized to
	// match the lie so it cannot be dismissed as malformed.
	lieVLen := 999
	lieElem := make([]byte, codec.shardSize(lieVLen))
	st.add(Delivery{Server: 4, Tag: t1, Elem: lieElem, VLen: lieVLen, Initial: true})
	// Three honest servers then deliver the real write.
	for i := 0; i < 3; i++ {
		st.add(Delivery{Server: i, Tag: t1, Elem: shards[i], VLen: len(value), Initial: true})
	}
	select {
	case <-st.done:
	default:
		t.Fatal("read stalled: the vlen lie starved the honest version")
	}
	if st.err != nil {
		t.Fatalf("read failed: %v", st.err)
	}
	if st.result.Tag != t1 || !bytes.Equal(st.result.Value, value) {
		t.Fatalf("read = %v %q, want %v %q", st.result.Tag, st.result.Value, t1, value)
	}
}

func TestConfigValidation(t *testing.T) {
	codec, lb := newCluster(t, 5, 3)
	conns := lb.Conns()
	if _, err := NewWriter("", codec, conns); err == nil {
		t.Fatal("empty writer id accepted")
	}
	if _, err := NewWriter(strings.Repeat("x", maxWriterID+1), codec, conns); err == nil {
		t.Fatal("oversized writer id accepted (it would not round trip the uint16 wire length)")
	}
	if _, err := NewWriter("w", codec, conns[:4]); err == nil {
		t.Fatal("short conn set accepted")
	}
	if _, err := NewWriter("w", codec, conns, WithWriterFaults(5)); err == nil {
		t.Fatal("f=n accepted")
	}
	if _, err := NewReader("r", codec, conns, WithReaderFaults(3)); err == nil {
		t.Fatal("n-f < k accepted")
	}
	// f >= k lets reads go backwards (see TestReadNeverGoesBackwards).
	big, blb := newCluster(t, 9, 3)
	if _, err := NewReader("r", big, blb.Conns(), WithReaderFaults(3)); err == nil {
		t.Fatal("reader f >= k accepted")
	}
	if r, err := NewReader("r", big, blb.Conns()); err != nil {
		t.Fatalf("default reader at n=9 k=3: %v", err)
	} else if r.f != 2 {
		t.Fatalf("default reader faults = %d, want the f < k clamp 2", r.f)
	}
	if _, err := NewReader("r", codec, conns, WithQuarantine(9)); err == nil {
		t.Fatal("out-of-range quarantine accepted")
	}
	dup := []Conn{conns[0], conns[0], conns[2], conns[3], conns[4]}
	if _, err := NewWriter("w", codec, dup); err == nil {
		t.Fatal("duplicate server indices accepted")
	}
}

// TestReregisterKeepsTreq pins the re-registration rule: a reader
// registering again (a read retrying after a transient failure) must
// keep min(existing treq, current tag), not jump to the server's
// current tag — a raised treq would filter out exactly the relay the
// pending read is waiting for.
func TestReregisterKeepsTreq(t *testing.T) {
	s := NewServer(0)
	t1, t2, t9 := Tag{TS: 1, Writer: "w"}, Tag{TS: 2, Writer: "w"}, Tag{TS: 9, Writer: "w"}
	s.PutData(testKey, t1, []byte{1}, 1)
	s.Register(testKey, "r#1", func(Delivery) {}) // treq = t1

	// The server's tag races ahead of the registration.
	s.PutData(testKey, t9, []byte{9}, 1)

	// Retry: same reader registers again with a fresh sink.
	got := make(chan Delivery, 4)
	s.Register(testKey, "r#1", func(d Delivery) { got <- d })

	// A put under t2 does not install (t2 < t9) but still relays — and
	// the re-registered reader, whose treq must still be t1, hears it.
	s.PutData(testKey, t2, []byte{2}, 1)
	select {
	case d := <-got:
		if d.Tag != t2 {
			t.Fatalf("relayed %v, want %v", d.Tag, t2)
		}
	default:
		t.Fatalf("re-registration raised treq: the t2 relay was filtered out")
	}
}

// TestReadCompletesThroughReregistration is the end-to-end version: a
// pending read whose register retries on a server that has since seen
// a newer tag must still hear the relay that completes it.
func TestReadCompletesThroughReregistration(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	conns := lb.Conns()

	// v1 everywhere, then t2 half-applied to servers 0 and 1 only.
	w := mustWriter(t, "w1", codec, lb.Conns())
	if _, err := w.Write(ctx, testKey, []byte("v1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	t2 := Tag{TS: 2, Writer: "w2"}
	v2 := []byte("completed by a relay after a re-registration")
	shards2, err := codec.EncodeValue(v2)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		if err := conns[i].PutData(ctx, testKey, t2, shards2[i], len(v2)); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
	}

	// A capture conn on server 2 remembers the reader's registration so
	// the test can replay it, exactly as a retrying read leg would.
	cap2 := &captureConn{Conn: conns[2]}
	rconns := lb.Conns()
	rconns[2] = cap2
	// f=0: all five initials required, so the read's target is t2 and
	// it blocks on the third element.
	r := mustReader(t, "r1", codec, rconns, WithReaderFaults(0))
	type outcome struct {
		res ReadResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := r.Read(ctx, testKey)
		resCh <- outcome{res, err}
	}()
	for i := 0; i < 5; i++ {
		for lb.Server(i).Readers(testKey) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case o := <-resCh:
		t.Fatalf("read completed with 2/3 elements: %v %v", o.res, o.err)
	case <-time.After(50 * time.Millisecond):
	}

	// Server 2's tag races past the read's target...
	t9 := Tag{TS: 9, Writer: "w9"}
	if err := conns[2].PutData(ctx, testKey, t9, shards2[2], len(v2)); err != nil {
		t.Fatalf("PutData(t9): %v", err)
	}
	// ...and the reader's leg on server 2 re-registers (the retry).
	// The buggy treq reset would now filter every relay below t9,
	// starving the read forever.
	readerID, deliver := cap2.captured()
	deliver(lb.Server(2).Register(testKey, readerID, deliver))

	// The half-applied write finally reaches server 2. Its relay —
	// tag t2, below the server's t9 — is what must complete the read.
	if err := conns[2].PutData(ctx, testKey, t2, shards2[2], len(v2)); err != nil {
		t.Fatalf("PutData(t2): %v", err)
	}
	select {
	case o := <-resCh:
		if o.err != nil {
			t.Fatalf("Read: %v", o.err)
		}
		if o.res.Tag != t2 || !bytes.Equal(o.res.Value, v2) {
			t.Fatalf("Read = %v %q, want %v %q", o.res.Tag, o.res.Value, t2, v2)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read starved after re-registration: the completing relay was filtered")
	}
}

// captureConn wraps a Conn and remembers the last GetData
// registration so tests can replay it.
type captureConn struct {
	Conn
	mu       sync.Mutex
	readerID string
	deliver  func(Delivery)
}

func (c *captureConn) GetData(ctx context.Context, key, readerID string, deliver func(Delivery)) error {
	c.mu.Lock()
	c.readerID, c.deliver = readerID, deliver
	c.mu.Unlock()
	return c.Conn.GetData(ctx, key, readerID, deliver)
}

func (c *captureConn) captured() (string, func(Delivery)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deliver == nil {
		panic("captureConn: no registration captured")
	}
	return c.readerID, c.deliver
}

// TestWipeAllSweepsUnwrittenRegisters: WipeAll models wholesale node
// replacement, so it must remove every register — including zero-tag
// ones Keys() never reports, which only exist to hold registrations —
// and drop those registrations with them.
func TestWipeAllSweepsUnwrittenRegisters(t *testing.T) {
	s := NewServer(0)
	t1 := Tag{TS: 1, Writer: "w"}
	s.PutData("written", t1, []byte{1}, 1)
	relayed := make(chan Delivery, 4)
	s.Register("unwritten", "r#1", func(d Delivery) { relayed <- d })
	if s.Readers("unwritten") != 1 {
		t.Fatalf("registrations on unwritten = %d, want 1", s.Readers("unwritten"))
	}

	s.WipeAll()

	if keys := s.Keys(); len(keys) != 0 {
		t.Fatalf("keys after WipeAll = %v", keys)
	}
	if n := s.Readers("unwritten"); n != 0 {
		t.Fatalf("WipeAll left %d registrations on the unwritten register", n)
	}
	snap := s.MetricsSnapshot()
	if snap.Registers != 0 {
		t.Fatalf("Registers gauge = %d after WipeAll, want 0", snap.Registers)
	}
	if snap.RegisterGCs != 2 {
		t.Fatalf("RegisterGCs = %d, want 2 (written + unwritten)", snap.RegisterGCs)
	}
	if snap.RegGCs != 1 {
		t.Fatalf("RegGCs = %d, want 1 (the dropped registration)", snap.RegGCs)
	}
	// The replaced node relays to nobody: a new put must not reach the
	// pre-wipe sink.
	s.PutData("unwritten", t1, []byte{2}, 1)
	select {
	case d := <-relayed:
		t.Fatalf("stale registration heard %v after WipeAll", d.Tag)
	default:
	}
}
