package soda

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/rs"
)

// newDurableCluster is newCluster with persistent nodes: each server
// logs to its own directory under a fresh TempDir, FsyncAlways.
func newDurableCluster(t *testing.T, n, k int, opts ...rs.Option) (*Codec, *Loopback) {
	t.Helper()
	codec, err := NewCodec(n, k, opts...)
	if err != nil {
		t.Fatalf("NewCodec(%d,%d): %v", n, k, err)
	}
	lb, err := NewDurableLoopback(n, t.TempDir())
	if err != nil {
		t.Fatalf("NewDurableLoopback: %v", err)
	}
	t.Cleanup(func() { lb.CloseServers() })
	return codec, lb
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []walRecord{
		{lsn: 1, op: walOpPut, key: "a", tag: Tag{TS: 1, Writer: "w1"}, elem: []byte{1, 2, 3}, vlen: 9},
		{lsn: 2, op: walOpRepair, key: "some/longer key", tag: Tag{TS: 7, Writer: "repairer"}, elem: []byte{0xFF}, vlen: 1},
		{lsn: 3, op: walOpWipe, key: "a"},
		{lsn: 4, op: walOpPut, key: "empty-elem", tag: Tag{TS: 2, Writer: "w"}, elem: nil, vlen: 0},
	}
	var buf []byte
	for _, rec := range recs {
		buf = appendWALRecord(buf, rec)
	}
	off := 0
	for i, want := range recs {
		got, n, err := parseWALRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.lsn != want.lsn || got.op != want.op || got.key != want.key ||
			got.tag != want.tag || !bytes.Equal(got.elem, want.elem) || got.vlen != want.vlen {
			t.Fatalf("record %d round trip = %+v, want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("parsed %d of %d bytes", off, len(buf))
	}

	// Every strict prefix of a record is a torn tail, never a record.
	one := appendWALRecord(nil, recs[0])
	for cut := 0; cut < len(one); cut++ {
		if _, _, err := parseWALRecord(one[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed as a record", cut, len(one))
		}
	}
	// A flipped payload byte is caught by the checksum.
	bad := append([]byte(nil), one...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := parseWALRecord(bad); err == nil {
		t.Fatal("corrupt record parsed cleanly")
	}
}

// TestDurableServerRoundTrip: mutate, close cleanly, reopen — the
// recovered namespace is byte-identical, including the repair floor
// and the wiped key.
func TestDurableServerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := Tag{TS: 1, Writer: "w"}, Tag{TS: 2, Writer: "w"}
	s.PutData("k1", t1, []byte{10}, 5)
	s.PutData("k1", t2, []byte{20}, 6)
	s.PutData("k2", t1, []byte{30}, 7)
	s.RepairPut("k3", t2, []byte{40}, 8)
	s.Wipe("k2")
	if got := s.MetricsSnapshot().WALAppends; got != 5 {
		t.Fatalf("WALAppends = %d, want 5", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.MetricsSnapshot().Recoveries; got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
	if tag, elem, vlen := s2.Snapshot("k1"); tag != t2 || !bytes.Equal(elem, []byte{20}) || vlen != 6 {
		t.Fatalf("k1 recovered as %v %v %d", tag, elem, vlen)
	}
	if tag, _, _ := s2.Snapshot("k2"); !tag.IsZero() {
		t.Fatalf("wiped k2 recovered as %v", tag)
	}
	if tag, elem, vlen := s2.Snapshot("k3"); tag != t2 || !bytes.Equal(elem, []byte{40}) || vlen != 8 {
		t.Fatalf("k3 recovered as %v %v %d", tag, elem, vlen)
	}
	// The re-established tag floor rejects a stale repair immediately.
	if s2.RepairPut("k1", t1, []byte{99}, 5) {
		t.Fatal("recovered server accepted a repair below its tag floor")
	}
	// ...and still allows the equal-tag reinstall repair relies on.
	if !s2.RepairPut("k1", t2, []byte{20}, 6) {
		t.Fatal("recovered server rejected an equal-tag reinstall")
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	s, err := NewDurableServer(3, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Durable() {
		t.Fatal("durable server reports Durable() == false")
	}
	if keys := s.Keys(); len(keys) != 0 {
		t.Fatalf("fresh durable server holds keys %v", keys)
	}
}

// TestPowerCutAtEveryOffset is the recovery property test: take a WAL
// of scripted mutations and cut the power at EVERY byte offset — each
// record boundary and every position inside a record. Recovery must
// land on exactly the state of the longest record prefix the disk
// holds, and a mid-record cut must be detected (checksum/length),
// truncated, and counted, never replayed.
func TestPowerCutAtEveryOffset(t *testing.T) {
	t1, t3, t4, t5 := Tag{TS: 1, Writer: "w"}, Tag{TS: 3, Writer: "w"}, Tag{TS: 4, Writer: "w"}, Tag{TS: 5, Writer: "w"}
	type mut struct {
		op   byte
		key  string
		tag  Tag
		elem []byte
		vlen int
	}
	muts := []mut{
		{walOpPut, "k1", t1, []byte{1, 1}, 2},
		{walOpPut, "k2", t1, []byte{2, 2}, 2},
		{walOpPut, "k1", t3, []byte{3, 3}, 2},
		{walOpRepair, "k2", t3, []byte{4, 4}, 2},
		{walOpWipe, "k2", Tag{}, nil, 0},
		{walOpPut, "k2", t4, []byte{5, 5}, 2},
		{walOpPut, "k3", t5, []byte{6, 6}, 2},
	}

	// The reference states: states[i] is the namespace after the first
	// i mutations.
	type regState struct {
		tag  Tag
		elem []byte
		vlen int
	}
	states := make([]map[string]regState, len(muts)+1)
	states[0] = map[string]regState{}
	for i, m := range muts {
		next := make(map[string]regState, len(states[i]))
		for k, v := range states[i] {
			next[k] = v
		}
		switch m.op {
		case walOpPut, walOpRepair:
			next[m.key] = regState{tag: m.tag, elem: m.elem, vlen: m.vlen}
		case walOpWipe:
			delete(next, m.key)
		}
		states[i+1] = next
	}

	// Produce the log once, with every record synced.
	dir := t.TempDir()
	s, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		switch m.op {
		case walOpPut:
			s.PutData(m.key, m.tag, append([]byte(nil), m.elem...), m.vlen)
		case walOpRepair:
			s.RepairPut(m.key, m.tag, append([]byte(nil), m.elem...), m.vlen)
		case walOpWipe:
			s.Wipe(m.key)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walSegmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	// bounds[i] is the offset right after record i.
	bounds := []int{0}
	for off := 0; off < len(data); {
		_, n, err := parseWALRecord(data[off:])
		if err != nil {
			t.Fatalf("full log does not parse at %d: %v", off, err)
		}
		off += n
		bounds = append(bounds, off)
	}
	if len(bounds) != len(muts)+1 {
		t.Fatalf("%d records on disk, want %d", len(bounds)-1, len(muts))
	}

	for cut := 0; cut <= len(data); cut++ {
		complete := 0
		for complete+1 < len(bounds) && bounds[complete+1] <= cut {
			complete++
		}
		atBoundary := bounds[complete] == cut

		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, walSegmentName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := NewDurableServer(0, cdir)
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		want := states[complete]
		for key, st := range want {
			tag, elem, vlen := s2.Snapshot(key)
			if tag != st.tag || !bytes.Equal(elem, st.elem) || vlen != st.vlen {
				t.Fatalf("cut %d (%d complete records): %s = %v %v %d, want %v %v %d",
					cut, complete, key, tag, elem, vlen, st.tag, st.elem, st.vlen)
			}
		}
		for _, key := range []string{"k1", "k2", "k3"} {
			if _, held := want[key]; held {
				continue
			}
			if tag, _, _ := s2.Snapshot(key); !tag.IsZero() {
				t.Fatalf("cut %d: %s replayed past the prefix to %v", cut, key, tag)
			}
		}
		torn := s2.MetricsSnapshot().WALTornDrops
		if atBoundary && torn != 0 {
			t.Fatalf("cut %d on a record boundary counted %d torn drops", cut, torn)
		}
		if !atBoundary && torn != 1 {
			t.Fatalf("cut %d mid-record counted %d torn drops, want 1", cut, torn)
		}
		if !atBoundary {
			// The tear is gone from the disk, not just skipped.
			st, err := os.Stat(filepath.Join(cdir, walSegmentName(1)))
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != int64(bounds[complete]) {
				t.Fatalf("cut %d: segment still %d bytes, want truncated to %d", cut, st.Size(), bounds[complete])
			}
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestTornFinalRecordNeverReplayed: a record the server wrote but the
// disk kept only partially must be checksum-detected, truncated, and
// gone for good — later incarnations never resurrect it.
func TestTornFinalRecordNeverReplayed(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2, t3 := Tag{TS: 1, Writer: "w"}, Tag{TS: 2, Writer: "w"}, Tag{TS: 3, Writer: "w"}
	s.PutData(testKey, t1, []byte{1}, 1)
	s.PutData(testKey, t2, []byte{2}, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tearWALTail(dir, 3); err != nil {
		t.Fatal(err)
	}

	s2, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.MetricsSnapshot().WALTornDrops; got != 1 {
		t.Fatalf("WALTornDrops = %d, want 1", got)
	}
	if tag, _, _ := s2.Snapshot(testKey); tag != t1 {
		t.Fatalf("recovered tag = %v, want the pre-tear %v", tag, t1)
	}
	// The log accepts appends after the truncated tear, and the next
	// incarnation sees them — not the torn record.
	s2.PutData(testKey, t3, []byte{3}, 1)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if tag, elem, _ := s3.Snapshot(testKey); tag != t3 || !bytes.Equal(elem, []byte{3}) {
		t.Fatalf("third incarnation = %v %v, want %v [3]", tag, elem, t3)
	}
}

// TestSnapshotTruncatesLog: a snapshot checkpoints the namespace,
// rotates the WAL, and deletes the covered segments; recovery layers
// the surviving log over the snapshot.
func TestSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2, t3 := Tag{TS: 1, Writer: "w"}, Tag{TS: 2, Writer: "w"}, Tag{TS: 3, Writer: "w"}
	s.PutData("k1", t1, []byte{1}, 1)
	s.PutData("k2", t2, []byte{2}, 1)
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	segs, err := walSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].seq != 2 {
		t.Fatalf("segments after snapshot = %+v, want only the fresh active one", segs)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot on disk: %v", err)
	}
	if got := s.MetricsSnapshot().Snapshots; got != 1 {
		t.Fatalf("Snapshots = %d, want 1", got)
	}
	// Mutations after the snapshot land in the fresh segment and replay
	// on top of it.
	s.PutData("k1", t3, []byte{3}, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if tag, elem, _ := s2.Snapshot("k1"); tag != t3 || !bytes.Equal(elem, []byte{3}) {
		t.Fatalf("k1 = %v %v, want the post-snapshot %v", tag, elem, t3)
	}
	if tag, elem, _ := s2.Snapshot("k2"); tag != t2 || !bytes.Equal(elem, []byte{2}) {
		t.Fatalf("k2 = %v %v, want the snapshotted %v", tag, elem, t2)
	}
}

// TestFsyncModeLossSemantics pins what each fsync discipline loses at
// a power cut: FsyncAlways nothing, FsyncNone the unsynced tail, and
// an explicit Sync closes the FsyncNone window.
func TestFsyncModeLossSemantics(t *testing.T) {
	t1 := Tag{TS: 1, Writer: "w"}
	recoverAfterCut := func(t *testing.T, opt DurableOption, sync bool) Tag {
		t.Helper()
		dir := t.TempDir()
		s, err := NewDurableServer(0, dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		s.PutData(testKey, t1, []byte{1}, 1)
		if sync {
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		s.dur.powerCut()
		s2, err := NewDurableServer(0, dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		tag, _, _ := s2.Snapshot(testKey)
		return tag
	}
	if tag := recoverAfterCut(t, WithFsync(FsyncAlways), false); tag != t1 {
		t.Fatalf("FsyncAlways lost an acked put: recovered %v", tag)
	}
	if tag := recoverAfterCut(t, WithFsync(FsyncNone), false); !tag.IsZero() {
		t.Fatalf("FsyncNone kept an unsynced put through a power cut: %v (simulated disk should drop it)", tag)
	}
	if tag := recoverAfterCut(t, WithFsync(FsyncNone), true); tag != t1 {
		t.Fatalf("explicit Sync did not persist under FsyncNone: recovered %v", tag)
	}
}

// TestPowerCutRecoverNoDonorRepair is the tentpole's acceptance path:
// a server power-cut mid-traffic comes back from its own WAL — state
// identical to the instant of the cut, with no Repairer running and
// no donor contacted — and rejoins quorums through Membership.Readmit.
func TestPowerCutRecoverNoDonorRepair(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newDurableCluster(t, 5, 3)
	m := NewMembership(5)
	w := mustWriter(t, "w1", codec, lb.Conns(), WithWriterMembership(m))

	v1 := []byte("written before the cut")
	if _, err := w.Write(ctx, testKey, v1); err != nil {
		t.Fatalf("Write: %v", err)
	}

	lb.PowerCut(2)
	m.MarkSuspect(2, ErrServerDown)
	// The crashed state machine is frozen; capture what the node must
	// come back as.
	wantTag, wantElem, wantVLen := lb.Server(2).Snapshot(testKey)
	if wantTag.IsZero() {
		t.Fatal("server 2 never held the write")
	}

	// The cluster keeps going through the hole; server 2 misses this.
	v2 := []byte("written during the outage")
	tag2, err := w.Write(ctx, testKey, v2)
	if err != nil {
		t.Fatalf("Write during outage: %v", err)
	}

	s2, err := lb.Recover(2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// Identical to the crashed state: recovery came from the disk
	// alone. (No Repairer exists in this test, so a matching tag can
	// only have been replayed, not donated.)
	gotTag, gotElem, gotVLen := s2.Snapshot(testKey)
	if gotTag != wantTag || !bytes.Equal(gotElem, wantElem) || gotVLen != wantVLen {
		t.Fatalf("recovered state = %v %d bytes vlen %d, want the crashed %v %d bytes vlen %d",
			gotTag, len(gotElem), gotVLen, wantTag, len(wantElem), wantVLen)
	}
	if got := s2.MetricsSnapshot().Recoveries; got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}

	// FsyncAlways held everything acked, so direct readmission is safe.
	if !m.Readmit(2) {
		t.Fatalf("Readmit(2) failed from health %v", m.Health(2))
	}
	if !m.IsLive(2) {
		t.Fatalf("server 2 health = %v after Readmit", m.Health(2))
	}

	// The readmitted server participates: reads see the outage-era
	// write, and the next write lands on all five servers.
	r := mustReader(t, "r1", codec, lb.Conns(), WithReaderMembership(m))
	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("Read after readmit: %v", err)
	}
	if res.Tag != tag2 || !bytes.Equal(res.Value, v2) {
		t.Fatalf("Read = %v %q, want %v %q", res.Tag, res.Value, tag2, v2)
	}
	v3 := []byte("written after the rejoin")
	tag3, err := w.Write(ctx, testKey, v3)
	if err != nil {
		t.Fatalf("Write after rejoin: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if tag, _, _ := lb.Server(2).Snapshot(testKey); tag == tag3 {
			break
		}
		if time.Now().After(deadline) {
			tag, _, _ := lb.Server(2).Snapshot(testKey)
			t.Fatalf("server 2 never received the post-rejoin write: at %v, want %v", tag, tag3)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKillRecoverRejoinSoak is the durable twin of the repair soak:
// repeated power-cut → recover-from-disk → Readmit cycles racing
// concurrent multi-writer multi-reader traffic, with NO Repairer —
// every rejoin is the node's own WAL — and the whole history checked
// for atomicity.
func TestKillRecoverRejoinSoak(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newDurableCluster(t, 9, 3, rs.WithGenerator(rs.GeneratorRSView))
	m := NewMembership(9)

	h := &history{}
	stop := make(chan struct{})
	const writers, readers, minOps = 2, 2, 10
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		w := mustWriter(t, fmt.Sprintf("w%d", wi), codec, lb.Conns(), WithWriterMembership(m))
		wg.Add(1)
		go func(wi int, w *Writer) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					if j >= minOps {
						return
					}
				default:
				}
				value := fmt.Sprintf("w%d-%d", wi, j)
				inv := h.begin()
				tag, err := w.Write(ctx, testKey, []byte(value))
				if err != nil {
					t.Errorf("writer %d op %d: %v", wi, j, err)
					return
				}
				h.end(true, inv, tag, value)
			}
		}(wi, w)
	}
	for ri := 0; ri < readers; ri++ {
		r := mustReader(t, fmt.Sprintf("r%d", ri), codec, lb.Conns(),
			WithReaderFaults(2), WithReadErrors(2), WithReaderMembership(m))
		wg.Add(1)
		go func(ri int, r *Reader) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					if j >= minOps {
						return
					}
				default:
				}
				inv := h.begin()
				res, err := r.Read(ctx, testKey)
				if err != nil {
					t.Errorf("reader %d op %d: %v", ri, j, err)
					return
				}
				h.end(false, inv, res.Tag, string(res.Value))
			}
		}(ri, r)
	}

	// Power-cut → recover → readmit cycles, a different server each
	// time. Under FsyncAlways the recovered state must equal the
	// crashed state exactly: nothing lost, nothing donated.
	for cyc, srv := range []int{4, 7, 2} {
		lb.PowerCut(srv)
		m.MarkSuspect(srv, ErrServerDown)
		time.Sleep(25 * time.Millisecond) // traffic rides through the hole
		tagDown, _, _ := lb.Server(srv).Snapshot(testKey)
		rec, err := lb.Recover(srv)
		if err != nil {
			t.Fatalf("cycle %d: Recover(%d): %v", cyc, srv, err)
		}
		tagUp, _, _ := rec.Snapshot(testKey)
		if tagUp != tagDown {
			t.Fatalf("cycle %d: server %d recovered to %v, crashed at %v", cyc, srv, tagUp, tagDown)
		}
		if !m.Readmit(srv) {
			t.Fatalf("cycle %d: Readmit(%d) failed from health %v", cyc, srv, m.Health(srv))
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	h.check(t)

	// Full strength again: every server answers, and a zero-fault-
	// budget error-locating read across all nine finds nothing corrupt.
	for i := 0; i < 9; i++ {
		if _, err := lb.Conns()[i].GetTag(ctx, testKey); err != nil {
			t.Fatalf("server %d does not serve after the soak: %v", i, err)
		}
	}
	r := mustReader(t, "rz", codec, lb.Conns(), WithReaderFaults(0), WithReadErrors(2))
	res, err := r.Read(ctx, testKey)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if len(res.Corrupt) != 0 {
		t.Fatalf("final read names corrupt servers: %v", res.Corrupt)
	}
	if res.Tag.IsZero() {
		t.Fatal("final read returned the initial state after all that traffic")
	}
}

// TestDurableTCPServerLifecycle runs a durable core under the TCP
// transport: serve, mutate over the wire, close everything, recover,
// serve again.
func TestDurableTCPServerLifecycle(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	core, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := ListenAndServe(core, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := TCPMuxConn(0, ns.Addr())
	t1 := Tag{TS: 1, Writer: "w"}
	if err := c.PutData(ctx, testKey, t1, []byte{7}, 1); err != nil {
		t.Fatalf("PutData over TCP: %v", err)
	}
	c.Close()
	ns.Close()
	if err := ns.Core().Close(); err != nil {
		t.Fatalf("Core().Close(): %v", err)
	}

	core2, err := NewDurableServer(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer core2.Close()
	ns2, err := ListenAndServe(core2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	c2 := TCPMuxConn(0, ns2.Addr())
	defer c2.Close()
	tag, err := c2.GetTag(ctx, testKey)
	if err != nil {
		t.Fatalf("GetTag after recovery: %v", err)
	}
	if tag != t1 {
		t.Fatalf("recovered server serves %v over TCP, want %v", tag, t1)
	}
}
