package soda

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Crash recovery: a durable server comes back as
//
//	snapshot load → WAL replay → tag floor re-established
//
// readSnapshot installs the checkpointed namespace, then every WAL
// record past the snapshot's covered lsn is re-applied under the same
// acceptance rule as the live path (put: tag > current, repair-put:
// tag >= current, wipe: clear), so the recovered state cannot hold a
// tag below anything it durably acknowledged — the invariant RepairPut
// enforces online holds across restarts too. A torn or corrupt record
// ends the replayable prefix: it is truncated off the segment (later
// segments, which cannot legitimately exist past a tear, are removed)
// and never replayed, leaving a prefix-consistent state.
//
// Recovery runs entirely inside NewDurableServer, before the *Server
// escapes: no transport can register a reader or land a RepairPut on a
// half-replayed namespace, which is what makes "recover, then rejoin
// via the ordinary MarkLive path" safe against repair racing recovery.

// durConfig is the assembled durability configuration.
type durConfig struct {
	mode          FsyncMode
	interval      time.Duration
	snapThreshold int64
	failAfter     int64
}

// DurableOption configures a durable server.
type DurableOption func(*durConfig)

// WithFsync selects the fsync discipline (default FsyncAlways).
func WithFsync(m FsyncMode) DurableOption {
	return func(c *durConfig) { c.mode = m }
}

// WithFsyncEvery selects FsyncInterval with the given period.
func WithFsyncEvery(d time.Duration) DurableOption {
	return func(c *durConfig) { c.mode, c.interval = FsyncInterval, d }
}

// WithSnapshotThreshold sets the active-segment size that triggers a
// background snapshot + log truncation (default 4 MiB).
func WithSnapshotThreshold(bytes int64) DurableOption {
	return func(c *durConfig) { c.snapThreshold = bytes }
}

// WithWALFailAfter injects a disk fault for the IO-error soak: the WAL
// append that would push the active segment past the given size fails
// and latches, degrading the server to memory-only durability (counted
// by WALFailures). Zero disables the injection.
func WithWALFailAfter(bytes int64) DurableOption {
	return func(c *durConfig) { c.failAfter = bytes }
}

// durability is a Server's persistence engine: the WAL it appends to,
// the snapshot policy, and the background goroutine running interval
// fsync and threshold snapshots.
type durability struct {
	srv *Server
	wal *wal
	cfg durConfig

	snapMu    sync.Mutex // serializes snapshots
	snapC     chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// NewDurableServer opens (or creates) the durable state machine for
// codeword shard idx rooted at dir, recovering whatever a previous
// incarnation persisted there. The returned server is fully recovered
// — requests never observe a half-replayed namespace.
func NewDurableServer(idx int, dir string, opts ...DurableOption) (*Server, error) {
	cfg := durConfig{mode: FsyncAlways, interval: 50 * time.Millisecond, snapThreshold: 4 << 20}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.interval <= 0 {
		cfg.interval = 50 * time.Millisecond
	}
	if cfg.snapThreshold <= 0 {
		cfg.snapThreshold = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := NewServer(idx)
	d := &durability{
		srv:   s,
		wal:   &wal{dir: dir, mode: cfg.mode, failAfter: cfg.failAfter, metrics: &s.metrics},
		cfg:   cfg,
		snapC: make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	if err := d.recover(); err != nil {
		return nil, fmt.Errorf("soda: recovering server %d from %s: %w", idx, dir, err)
	}
	s.dur = d
	s.metrics.recoveries.Add(1)
	d.wg.Add(1)
	go d.background()
	return s, nil
}

// recover loads the snapshot, replays the log over it, and leaves the
// wal open on the tail segment.
func (d *durability) recover() error {
	os.Remove(filepath.Join(d.wal.dir, snapshotTmp)) // a crashed half-written snapshot is garbage
	covered, est, entries, err := readSnapshot(d.wal.dir)
	if err != nil {
		return err
	}
	if est != (epochState{}) {
		e := est
		d.srv.installEpochState(&e)
	}
	for _, e := range entries {
		d.srv.installRecovered(e.key, e.tag, e.elem, e.vlen)
	}
	segs, err := walSegments(d.wal.dir)
	if err != nil {
		return err
	}
	maxLSN := covered
	tailSeq := uint64(1)
	if len(segs) > 0 {
		tailSeq = segs[len(segs)-1].seq
	}
	for si, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		off, torn := 0, false
		for off < len(data) {
			rec, n, perr := parseWALRecord(data[off:])
			if perr != nil {
				// The replayable prefix ends here. Truncate the tear off
				// this segment and drop any later ones — records past a
				// tear are not a prefix of history and must never apply.
				if err := os.Truncate(seg.path, int64(off)); err != nil {
					return err
				}
				for _, later := range segs[si+1:] {
					if err := os.Remove(later.path); err != nil {
						return err
					}
				}
				d.srv.metrics.walTornDrops.Add(1)
				tailSeq, torn = seg.seq, true
				break
			}
			if rec.lsn > maxLSN {
				maxLSN = rec.lsn
			}
			if rec.lsn > covered {
				d.srv.replayRecord(rec)
			}
			off += n
		}
		if torn {
			break
		}
	}
	if err := d.wal.openSegment(tailSeq); err != nil {
		return err
	}
	d.wal.lsn = maxLSN
	return nil
}

// background runs the interval fsync (when configured) and serves
// snapshot nudges until close.
func (d *durability) background() {
	defer d.wg.Done()
	var tickC <-chan time.Time
	if d.cfg.mode == FsyncInterval {
		tick := time.NewTicker(d.cfg.interval)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-d.stop:
			return
		case <-tickC:
			d.wal.sync()
		case <-d.snapC:
			d.snapshot()
		}
	}
}

// logMutation appends one accepted mutation, nudging the snapshotter
// when the active segment has grown past the threshold. Called with
// the key's register lock held, so the log's per-key record order is
// exactly the apply order. A degraded WAL (disk error) counts a
// failure and the server keeps serving from memory — the operator
// signal is the metric, not a wedged cluster.
func (d *durability) logMutation(op byte, key string, t Tag, elem []byte, vlen int) {
	size, err := d.wal.append(walRecord{op: op, key: key, tag: t, elem: elem, vlen: vlen}, false)
	if err != nil {
		d.srv.metrics.walFailures.Add(1)
		return
	}
	d.srv.metrics.walAppends.Add(1)
	if size >= d.cfg.snapThreshold {
		select {
		case d.snapC <- struct{}{}:
		default:
		}
	}
}

// logEpoch appends one configuration-epoch transition, synced
// regardless of the fsync mode: a node must come back from a power cut
// knowing which geometry it belongs to, whatever it risks for data
// records. Called under the server's epochMu, before the state
// applies.
func (d *durability) logEpoch(est *epochState) {
	_, err := d.wal.append(walRecord{op: walOpEpoch, est: *est}, true)
	if err != nil {
		d.srv.metrics.walFailures.Add(1)
		return
	}
	d.srv.metrics.walAppends.Add(1)
}

// snapshot checkpoints the namespace and truncates the log: rotate the
// WAL (the finished segments define the covered lsn), write the
// snapshot atomically, then delete the segments it covers. Concurrent
// mutations keep appending to the fresh segment throughout; anything
// the snapshot iteration misses is past the covered lsn and replays on
// top.
func (d *durability) snapshot() error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	//lint:ignore lockhold snapMu exists to serialize snapshot writers against each other; the rotate fsync under it is the serialized work itself, and no hot path takes snapMu
	covered, err := d.wal.rotate()
	if err != nil {
		return err
	}
	if err := writeSnapshot(d.wal.dir, covered, *d.srv.epochSt.Load(), d.srv.snapEntries()); err != nil {
		return err
	}
	d.srv.metrics.snapshots.Add(1)
	return d.wal.removeBefore(d.wal.activeSeq())
}

// halt stops the background goroutine (idempotent).
func (d *durability) halt() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// close flushes and closes the log.
func (d *durability) close() error {
	d.closeOnce.Do(func() {
		d.halt()
		d.closeErr = d.wal.close()
	})
	return d.closeErr
}

// powerCut kills the durability layer the unclean way: no final sync,
// and unsynced bytes are dropped, as the disk would after a real cut.
func (d *durability) powerCut() {
	d.halt()
	d.wal.powerCut()
}

// Durable reports whether the server persists its state.
func (s *Server) Durable() bool { return s.dur != nil }

// Sync flushes the WAL to disk; memory-only servers no-op.
func (s *Server) Sync() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.wal.sync()
}

// SnapshotNow forces a snapshot + log truncation; memory-only servers
// no-op.
func (s *Server) SnapshotNow() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.snapshot()
}

// Close shuts the durability layer down cleanly (final fsync, files
// closed); memory-only servers no-op. The state machine itself keeps
// answering — Close is about the disk, not the process.
func (s *Server) Close() error {
	if s.dur == nil {
		return nil
	}
	err := s.dur.close()
	if errors.Is(err, errWALClosed) {
		return nil
	}
	return err
}

// installRecovered seeds a register from a snapshot entry. Recovery
// only; runs before the server is reachable.
func (s *Server) installRecovered(key string, t Tag, elem []byte, vlen int) {
	if t == (Tag{}) {
		return
	}
	r := s.lookup(key, true)
	r.mu.Lock()
	r.tag, r.elem, r.vlen = t, elem, vlen
	r.mu.Unlock()
}

// replayRecord applies one WAL record with the live path's acceptance
// rules, re-establishing the tag floor record by record. No relays, no
// metrics: replay precedes serving.
func (s *Server) replayRecord(rec walRecord) {
	switch rec.op {
	case walOpPut:
		r := s.lookup(rec.key, true)
		r.mu.Lock()
		if r.tag.Less(rec.tag) {
			r.tag, r.elem, r.vlen = rec.tag, rec.elem, rec.vlen
		}
		r.mu.Unlock()
	case walOpRepair:
		r := s.lookup(rec.key, true)
		r.mu.Lock()
		if !rec.tag.Less(r.tag) {
			r.tag, r.elem, r.vlen = rec.tag, rec.elem, rec.vlen
		}
		r.mu.Unlock()
	case walOpWipe:
		if r := s.lookup(rec.key, false); r != nil {
			r.mu.Lock()
			r.tag, r.elem, r.vlen = Tag{}, nil, 0
			r.mu.Unlock()
			s.collect(rec.key)
		}
	case walOpEpoch:
		est := rec.est
		s.installEpochState(&est)
	}
}

// snapEntries copies the written namespace out for a snapshot. Element
// buffers are cloned under the register lock, so the snapshot never
// aliases live storage.
func (s *Server) snapEntries() []snapEntry {
	var entries []snapEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, r := range sh.regs {
			r.mu.Lock()
			if r.tag != (Tag{}) {
				elem := make([]byte, len(r.elem))
				copy(elem, r.elem)
				entries = append(entries, snapEntry{key: key, tag: r.tag, elem: elem, vlen: r.vlen})
			}
			r.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	return entries
}
