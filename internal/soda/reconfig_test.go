package soda

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fastReconfig is the retry schedule tests drive flips with.
var fastReconfig = WithReconfigBackoff(Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond})

// TestEpochAdmitMatrix pins the admission rule per operation class
// across the three server states (active, sealed, activated-next):
// client traffic needs the active epoch unsealed, donor reads serve
// the active epoch even sealed, and repair installs are accepted at
// the active epoch or — sealed only — at the pending epoch.
func TestEpochAdmitMatrix(t *testing.T) {
	s := NewServer(0)

	// Active epoch 0, unsealed.
	for _, class := range []opClass{opClient, opDonor, opRepair} {
		if nack := s.Admit(class, SeedEpoch); nack != nil {
			t.Fatalf("class %d at active epoch 0: %v", class, nack)
		}
		if nack := s.Admit(class, 1); nack == nil {
			t.Fatalf("class %d at future epoch 1 admitted on an active server", class)
		}
	}

	// Sealed pending 1.
	if _, err := s.Reconfig(ReconfigSeal, 1, 5, 3); err != nil {
		t.Fatalf("seal: %v", err)
	}
	if nack := s.Admit(opClient, SeedEpoch); nack == nil {
		t.Fatal("client frame admitted on a sealed server")
	} else if nack.Want != 1 || !nack.Sealed {
		t.Fatalf("sealed client NACK = %+v, want Want=1 Sealed=true", nack)
	}
	if nack := s.Admit(opClient, 1); nack == nil {
		t.Fatal("client frame at the pending epoch admitted before activation")
	}
	if nack := s.Admit(opDonor, SeedEpoch); nack != nil {
		t.Fatalf("donor read of the frozen epoch refused: %v", nack)
	}
	if nack := s.Admit(opRepair, 1); nack != nil {
		t.Fatalf("migration install at the pending epoch refused: %v", nack)
	}
	if nack := s.Admit(opRepair, SeedEpoch); nack == nil {
		t.Fatal("repair at the sealed epoch admitted (would mutate the frozen state)")
	}

	// Activated epoch 1.
	if _, err := s.Reconfig(ReconfigActivate, 1, 5, 3); err != nil {
		t.Fatalf("activate: %v", err)
	}
	for _, class := range []opClass{opClient, opDonor, opRepair} {
		if nack := s.Admit(class, 1); nack != nil {
			t.Fatalf("class %d at active epoch 1: %v", class, nack)
		}
		nack := s.Admit(class, SeedEpoch)
		if nack == nil {
			t.Fatalf("class %d at retired epoch 0 admitted", class)
		}
		if nack.Want != 1 || nack.ServerEpoch != 1 {
			t.Fatalf("retired-epoch NACK = %+v, want Want=1 ServerEpoch=1", nack)
		}
	}
	if s.MetricsSnapshot().EpochFlips != 2 {
		t.Fatalf("EpochFlips = %d, want 2", s.MetricsSnapshot().EpochFlips)
	}

	// Both transitions are idempotent retries, and a conflicting seal is
	// refused.
	if _, err := s.Reconfig(ReconfigSeal, 1, 5, 3); err != nil {
		t.Fatalf("seal retry after activation: %v", err)
	}
	if _, err := s.Reconfig(ReconfigActivate, 1, 5, 3); err != nil {
		t.Fatalf("activate retry: %v", err)
	}
	if _, err := s.Reconfig(ReconfigSeal, 2, 5, 3); err != nil {
		t.Fatalf("seal for epoch 2: %v", err)
	}
	if _, err := s.Reconfig(ReconfigSeal, 3, 5, 3); err == nil {
		t.Fatal("conflicting seal for epoch 3 accepted over a pending flip to 2")
	}
	if _, err := s.Reconfig(ReconfigActivate, 3, 5, 3); err == nil {
		t.Fatal("activation without a matching seal accepted")
	}
}

// TestNoCrossEpochQuorum is the quorum-atomicity unit test: with the
// cluster split across two epochs (three servers activated at 1, two
// still at 0), NO writer and NO reader can assemble a quorum — the
// epoch-0 conns bounce off the activated majority and the epoch-1
// conns bounce off the laggards — because a quorum is only ever
// assembled from servers serving one epoch. Completing the flip
// restores service under the new epoch alone.
func TestNoCrossEpochQuorum(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	w0 := mustWriter(t, "w-old", codec, lb.ConnsAt(SeedEpoch, 5))
	r0 := mustReader(t, "r-old", codec, lb.ConnsAt(SeedEpoch, 5))
	if _, err := w0.Write(ctx, testKey, []byte("before the split")); err != nil {
		t.Fatalf("Write at epoch 0: %v", err)
	}

	// Flip servers 0-2 to epoch 1; 3-4 lag at epoch 0. Five servers are
	// up and answering, but no four of them share an epoch.
	for i := 0; i < 3; i++ {
		if _, err := lb.Server(i).Reconfig(ReconfigSeal, 1, 5, 3); err != nil {
			t.Fatalf("seal %d: %v", i, err)
		}
		if _, err := lb.Server(i).Reconfig(ReconfigActivate, 1, 5, 3); err != nil {
			t.Fatalf("activate %d: %v", i, err)
		}
	}

	w1 := mustWriter(t, "w-new", codec, lb.ConnsAt(1, 5))
	r1 := mustReader(t, "r-new", codec, lb.ConnsAt(1, 5))
	for name, op := range map[string]func() error{
		"epoch-0 write": func() error { _, err := w0.Write(ctx, testKey, []byte("x")); return err },
		"epoch-1 write": func() error { _, err := w1.Write(ctx, testKey, []byte("x")); return err },
		"epoch-0 read":  func() error { _, err := r0.Read(ctx, testKey); return err },
		"epoch-1 read":  func() error { _, err := r1.Read(ctx, testKey); return err },
	} {
		err := op()
		if err == nil {
			t.Fatalf("%s completed a quorum across a split-epoch cluster", name)
		}
		if !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("%s failed without surfacing the epoch mismatch: %v", name, err)
		}
		var se *StaleEpochError
		if !errors.As(err, &se) || se.Server < 0 {
			t.Fatalf("%s error does not name the NACKing server: %v", name, err)
		}
	}

	// Completing the flip on the laggards restores a single-epoch
	// cluster, and only the epoch-1 clients serve.
	for i := 3; i < 5; i++ {
		if _, err := lb.Server(i).Reconfig(ReconfigSeal, 1, 5, 3); err != nil {
			t.Fatalf("seal %d: %v", i, err)
		}
		if _, err := lb.Server(i).Reconfig(ReconfigActivate, 1, 5, 3); err != nil {
			t.Fatalf("activate %d: %v", i, err)
		}
	}
	if _, err := w1.Write(ctx, testKey, []byte("after the flip")); err != nil {
		t.Fatalf("Write at epoch 1 after full activation: %v", err)
	}
	res, err := r1.Read(ctx, testKey)
	if err != nil || string(res.Value) != "after the flip" {
		t.Fatalf("Read at epoch 1 = %q, %v", res.Value, err)
	}
	if _, err := w0.Write(ctx, testKey, []byte("zombie")); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("retired-epoch write = %v, want ErrStaleEpoch", err)
	}
}

// TestReconfigGrowMigratesState drives one coordinator flip n=5 -> n=7
// (k 3 -> 4) on a quiet cluster and proves the drain: every key
// written under the old geometry reads back under the new one with
// its tag preserved, retired conns are NACKed, and the standby nodes
// joined at the new epoch.
func TestReconfigGrowMigratesState(t *testing.T) {
	ctx := testCtx(t)
	lb := NewLoopback(7)
	codec5, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	codec7, err := NewCodec(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg0 := &Config{Epoch: 0, Codec: codec5, Conns: lb.ConnsAt(SeedEpoch, 5), F: -1}
	view, err := NewConfigView(cfg0)
	if err != nil {
		t.Fatal(err)
	}

	w := mustWriter(t, "w", codec5, cfg0.Conns)
	tags := make(map[string]Tag)
	values := map[string][]byte{
		"mig/a": []byte("first register"),
		"mig/b": bytes.Repeat([]byte{0xAB}, 1000),
		"mig/c": []byte("z"),
	}
	for key, v := range values {
		tag, err := w.Write(ctx, key, v)
		if err != nil {
			t.Fatalf("Write(%s): %v", key, err)
		}
		tags[key] = tag
	}

	cfg1 := &Config{Epoch: 1, Codec: codec7, Conns: lb.ConnsAt(1, 7), F: -1}
	rc := NewReconfigurator(view, fastReconfig)
	if err := rc.Apply(ctx, cfg1); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := view.Current().Epoch; got != 1 {
		t.Fatalf("view epoch after Apply = %d", got)
	}

	// Every key reads back under the new geometry at full strength, tag
	// intact — migration preserved every completed write.
	r := mustReader(t, "r", codec7, cfg1.Conns, WithReaderFaults(0))
	for key, v := range values {
		res, err := r.Read(ctx, key)
		if err != nil {
			t.Fatalf("Read(%s) under epoch 1: %v", key, err)
		}
		if res.Tag != tags[key] || !bytes.Equal(res.Value, v) {
			t.Fatalf("Read(%s) = %v %q, want %v %q", key, res.Tag, res.Value, tags[key], v)
		}
	}

	// The old conn set is retired: its quorums can never assemble again.
	if _, err := w.Write(ctx, "mig/a", []byte("stale")); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("retired writer = %v, want ErrStaleEpoch", err)
	}

	// A re-run of the same flip converges without re-migrating (the
	// status probe sees activated members) and without error.
	if err := rc.Apply(ctx, cfg1); err == nil {
		t.Fatal("Apply of an already-installed epoch should refuse (epoch must advance)")
	}
	for i := 0; i < 7; i++ {
		st := lb.Server(i).EpochStatus()
		if st.Epoch != 1 || st.Sealed || st.N != 7 || st.K != 4 {
			t.Fatalf("server %d status = %+v, want active epoch 1 n=7 k=4", i, st)
		}
	}
	if snap := lb.Server(0).MetricsSnapshot(); snap.EpochNacks == 0 {
		t.Fatal("no epoch NACK was ever counted despite retired-epoch traffic")
	}
}

// TestReconfigRepairerAborts is the satellite-6 regression: a Repairer
// whose conns are stamped with a retired epoch must abort its Run loop
// with a stale-epoch error instead of spinning forever against NACKs.
func TestReconfigRepairerAborts(t *testing.T) {
	ctx := testCtx(t)
	codec, lb := newCluster(t, 5, 3)
	w := mustWriter(t, "w", codec, lb.ConnsAt(SeedEpoch, 5))
	if _, err := w.Write(ctx, testKey, []byte("pre-flip state")); err != nil {
		t.Fatalf("Write: %v", err)
	}

	m := NewMembership(5)
	rp := mustRepairer(t, codec, lb.ConnsAt(SeedEpoch, 5), m,
		WithRepairInterval(5*time.Millisecond),
		WithRepairBackoff(Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond}))

	// The cluster reconfigures out from under the repairer (same
	// geometry, new epoch), then a suspect appears.
	for i := 0; i < 5; i++ {
		if _, err := lb.Server(i).Reconfig(ReconfigSeal, 1, 5, 3); err != nil {
			t.Fatalf("seal %d: %v", i, err)
		}
		if _, err := lb.Server(i).Reconfig(ReconfigActivate, 1, 5, 3); err != nil {
			t.Fatalf("activate %d: %v", i, err)
		}
	}
	m.MarkSuspect(3, ErrServerDown)

	errCh := make(chan error, 1)
	go func() { errCh <- rp.Run(ctx) }()
	select {
	case err := <-errCh:
		if err == nil || !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("Run returned %v, want a stale-epoch abort", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run kept spinning against a retired epoch instead of aborting")
	}
}

// TestReconfigWALRecoversEpochState pins crash-safety of the epoch
// records alone: a node power-cut after sealing recovers sealed (its
// WAL said so), and one power-cut after activating recovers at the
// new epoch with the new geometry.
func TestReconfigWALRecoversEpochState(t *testing.T) {
	lb, err := NewDurableLoopback(1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer lb.CloseServers()

	if _, err := lb.Server(0).Reconfig(ReconfigSeal, 1, 7, 4); err != nil {
		t.Fatalf("seal: %v", err)
	}
	lb.PowerCut(0)
	s, err := lb.Recover(0)
	if err != nil {
		t.Fatalf("Recover after sealed power cut: %v", err)
	}
	st := s.EpochStatus()
	if st.Epoch != 0 || !st.Sealed || st.Pending != 1 {
		t.Fatalf("recovered mid-flip status = %+v, want epoch 0 sealed pending 1", st)
	}

	// The flip resumes from the recovered state and survives a second
	// cut after activation.
	if _, err := s.Reconfig(ReconfigActivate, 1, 7, 4); err != nil {
		t.Fatalf("activate after recovery: %v", err)
	}
	lb.PowerCut(0)
	s, err = lb.Recover(0)
	if err != nil {
		t.Fatalf("Recover after activated power cut: %v", err)
	}
	st = s.EpochStatus()
	if st.Epoch != 1 || st.Sealed || st.N != 7 || st.K != 4 {
		t.Fatalf("recovered post-flip status = %+v, want active epoch 1 n=7 k=4", st)
	}
}

// TestReconfigGrowShrinkSoak is the acceptance soak: a durable n=5
// cluster grows to n=7 and shrinks back to n=5 while two writers and
// two readers race both flips through the shared ConfigView; one node
// is power-cut mid-grow and recovered into the correct epoch from its
// WAL; the full history — including tags abandoned by seal-interrupted
// writes — is linearizability-checked. Run under -race in CI.
func TestReconfigGrowShrinkSoak(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	lb, err := NewDurableLoopback(7, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer lb.CloseServers()
	codec5, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	codec7, err := NewCodec(7, 3)
	if err != nil {
		t.Fatal(err)
	}

	cfg0 := &Config{Epoch: 0, Codec: codec5, Conns: lb.ConnsAt(SeedEpoch, 5), F: -1}
	view, err := NewConfigView(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	const key = "reconfig/soak"
	h := &history{}

	// Seed so migration always has a key to drain.
	seed, err := NewEpochWriter("w-seed", view)
	if err != nil {
		t.Fatal(err)
	}
	inv := h.begin()
	tag, err := seed.Write(ctx, key, []byte("seed"))
	if err != nil {
		t.Fatalf("seed write: %v", err)
	}
	h.end(true, inv, tag, "seed")

	stop := make(chan struct{})
	const writers, readers, minOps = 2, 2, 15
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		value := func(j int) string { return fmt.Sprintf("w%d-%d", wi, j) }
		var pending string
		ew, err := NewEpochWriter(fmt.Sprintf("w%d", wi), view,
			WithAbandonedTags(func(at Tag, _ error) { h.abandoned(at, pending) }))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(wi int, ew *EpochWriter) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					if j >= minOps {
						return
					}
				default:
				}
				pending = value(j)
				inv := h.begin()
				tag, err := ew.Write(ctx, key, []byte(pending))
				if err != nil {
					t.Errorf("writer %d op %d: %v", wi, j, err)
					return
				}
				h.end(true, inv, tag, pending)
			}
		}(wi, ew)
	}
	for ri := 0; ri < readers; ri++ {
		er, err := NewEpochReader(fmt.Sprintf("r%d", ri), view)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ri int, er *EpochReader) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					if j >= minOps {
						return
					}
				default:
				}
				inv := h.begin()
				res, err := er.Read(ctx, key)
				if err != nil {
					t.Errorf("reader %d op %d: %v", ri, j, err)
					return
				}
				h.end(false, inv, res.Tag, string(res.Value))
			}
		}(ri, er)
	}

	rc := NewReconfigurator(view, fastReconfig)

	// Grow to n=7, power-cutting node 6 mid-flip. The coordinator blocks
	// on the dead node (a flip never abandons a member), the recovery
	// rebuilds its epoch state from the WAL, and the flip then converges.
	cfg1 := &Config{Epoch: 1, Codec: codec7, Conns: lb.ConnsAt(1, 7), F: -1}
	applyErr := make(chan error, 1)
	go func() { applyErr <- rc.Apply(ctx, cfg1) }()
	sealBy := time.Now().Add(30 * time.Second)
	for {
		st := lb.Server(6).EpochStatus()
		if (st.Sealed && st.Pending == 1) || st.Epoch == 1 {
			break
		}
		if time.Now().After(sealBy) {
			t.Fatal("node 6 never entered the flip")
		}
		time.Sleep(time.Millisecond)
	}
	lb.PowerCut(6)
	time.Sleep(10 * time.Millisecond) // let the coordinator bounce off it
	s6, err := lb.Recover(6)
	if err != nil {
		t.Fatalf("Recover(6): %v", err)
	}
	if st := s6.EpochStatus(); !(st.Epoch == 1 || (st.Sealed && st.Pending == 1)) {
		t.Fatalf("node 6 recovered into %+v, not a legal mid-flip epoch state", st)
	}
	if err := <-applyErr; err != nil {
		t.Fatalf("grow Apply: %v", err)
	}

	// Let traffic run under the grown geometry, then shrink back.
	time.Sleep(20 * time.Millisecond)
	cfg2 := &Config{Epoch: 2, Codec: codec5, Conns: lb.ConnsAt(2, 5), F: -1}
	if err := rc.Apply(ctx, cfg2); err != nil {
		t.Fatalf("shrink Apply: %v", err)
	}

	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	h.check(t)

	// Geometry end-state: members 0-4 active at epoch 2; retired members
	// 5-6 sealed forever at epoch 1.
	for i := 0; i < 5; i++ {
		if st := lb.Server(i).EpochStatus(); st.Epoch != 2 || st.Sealed || st.N != 5 || st.K != 3 {
			t.Fatalf("server %d = %+v, want active epoch 2 n=5 k=3", i, st)
		}
	}
	for i := 5; i < 7; i++ {
		if st := lb.Server(i).EpochStatus(); st.Epoch != 1 || !st.Sealed || st.Pending != 2 {
			t.Fatalf("retired server %d = %+v, want sealed at epoch 1 pending 2", i, st)
		}
	}

	// A full-strength read under the final configuration returns the
	// last completed state.
	r := mustReader(t, "r-final", codec5, cfg2.Conns, WithReaderFaults(0))
	res, err := r.Read(ctx, key)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if res.Tag.IsZero() {
		t.Fatal("final read returned the initial state after the soak")
	}
}

// TestEpochWriterReaderFollowFlip pins the client-side retry loop in
// isolation: a Write and a Read launched while the cluster is sealed
// park in ConfigView.Await and complete under the new epoch as soon as
// the coordinator installs it.
func TestEpochWriterReaderFollowFlip(t *testing.T) {
	ctx := testCtx(t)
	lb := NewLoopback(7)
	codec5, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	codec7, err := NewCodec(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg0 := &Config{Epoch: 0, Codec: codec5, Conns: lb.ConnsAt(SeedEpoch, 5), F: -1}
	view, err := NewConfigView(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := NewEpochWriter("w", view)
	if err != nil {
		t.Fatal(err)
	}
	er, err := NewEpochReader("r", view)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ew.Write(ctx, testKey, []byte("sealed away")); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Seal by hand: every client op now bounces with want=1, and the
	// epoch clients park awaiting the install.
	for i := 0; i < 5; i++ {
		if _, err := lb.Server(i).Reconfig(ReconfigSeal, 1, 7, 4); err != nil {
			t.Fatalf("seal %d: %v", i, err)
		}
	}
	type wres struct {
		tag Tag
		err error
	}
	wCh := make(chan wres, 1)
	rCh := make(chan error, 1)
	go func() {
		tag, err := ew.Write(ctx, testKey, []byte("across the flip"))
		wCh <- wres{tag, err}
	}()
	go func() {
		res, err := er.Read(ctx, testKey)
		if err == nil && string(res.Value) != "sealed away" && string(res.Value) != "across the flip" {
			err = fmt.Errorf("read returned %q", res.Value)
		}
		rCh <- err
	}()
	select {
	case res := <-wCh:
		t.Fatalf("Write completed against a sealed cluster: %+v", res)
	case err := <-rCh:
		t.Fatalf("Read completed against a sealed cluster: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Finish the flip by hand (same data on 0-4; migrate is not needed
	// for the parked clients to resume, only activation + install).
	cfg1 := &Config{Epoch: 1, Codec: codec7, Conns: lb.ConnsAt(1, 7), F: -1}
	rc := NewReconfigurator(view, fastReconfig)
	if err := rc.Apply(ctx, cfg1); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	res := <-wCh
	if res.err != nil {
		t.Fatalf("Write across the flip: %v", res.err)
	}
	if err := <-rCh; err != nil {
		t.Fatalf("Read across the flip: %v", err)
	}
	// The written value is readable at full strength under epoch 1.
	r := mustReader(t, "r2", codec7, cfg1.Conns, WithReaderFaults(0))
	got, err := r.Read(ctx, testKey)
	if err != nil || string(got.Value) != "across the flip" {
		t.Fatalf("final read = %q, %v", got.Value, err)
	}
}
