package soda

import (
	"context"
	"errors"
	"sync"
)

// Health is one server's standing in the cluster's shared membership
// view. The quarantine lifecycle is
//
//	Live ──MarkSuspect──▶ Suspect ──MarkRepairing──▶ Repairing
//	  ▲                      ▲                           │
//	  │                      └───────MarkSuspect─────────┤ (repair failed,
//	  └──────────────────MarkLive────────────────────────┘  or new evidence)
//
// Live servers participate in read/write quorums. Suspect and
// Repairing servers are quarantined: membership-aware writers and
// readers never contact them and charge them to the fault budget f
// instead, exactly like WithQuarantine. Only a completed repair
// (Repairer) moves a server back to Live.
type Health int

const (
	// Live: in every quorum.
	Live Health = iota
	// Suspect: quarantined and awaiting repair. Entered when a
	// SODA_err read names the server corrupt, a transport reports it
	// dead, or an operator calls MarkSuspect.
	Suspect
	// Repairing: quarantined, with a repair attempt in flight.
	Repairing
)

func (h Health) String() string {
	switch h {
	case Live:
		return "live"
	case Suspect:
		return "suspect"
	case Repairing:
		return "repairing"
	}
	return "unknown"
}

// errCorruptElement is the suspicion cause recorded when a SODA_err
// read locates a server's element as corrupt.
var errCorruptElement = errors.New("soda: read located a corrupt element")

// Membership is the concurrency-safe server-health view one cluster's
// writers, readers, and Repairer share. It is advisory state about the
// *clients'* behavior — servers never see it — so it can be wrong in
// either direction without violating safety: a falsely suspected
// server is merely excluded (costing fault budget) until the Repairer
// probes it and readmits it, and an undetected-bad server is the case
// the SODA_err read path already tolerates within its e budget.
type Membership struct {
	mu          sync.Mutex
	state       []Health
	cause       []error
	epoch       uint64
	quarantines uint64
	// changed is closed and replaced on every transition, so waiters
	// (the repair loop) wake without polling.
	changed chan struct{}
}

// NewMembership returns an all-Live view of an n-server cluster.
func NewMembership(n int) *Membership {
	return &Membership{
		state:   make([]Health, n),
		cause:   make([]error, n),
		changed: make(chan struct{}),
	}
}

// N returns the cluster size the view was built for.
func (m *Membership) N() int { return len(m.state) }

// broadcast wakes everyone blocked on Changed. Callers hold mu.
func (m *Membership) broadcast() {
	m.epoch++
	close(m.changed)
	m.changed = make(chan struct{})
}

// Changed returns a channel that is closed at the next membership
// transition after the call. Wait on it, then re-read the view.
func (m *Membership) Changed() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.changed
}

// Epoch returns a counter that increments on every transition; two
// equal epochs bracket an unchanged view.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Health returns server i's current standing.
func (m *Membership) Health(i int) Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state[i]
}

// IsLive reports whether server i participates in quorums.
func (m *Membership) IsLive(i int) bool { return m.Health(i) == Live }

// Cause returns the evidence recorded when server i left Live, or nil
// for a live server.
func (m *Membership) Cause(i int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cause[i]
}

// Suspects returns the ascending indices of every quarantined server
// (Suspect or Repairing).
func (m *Membership) Suspects() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for i, h := range m.state {
		if h != Live {
			out = append(out, i)
		}
	}
	return out
}

// LiveCount returns the number of Live servers.
func (m *Membership) LiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, h := range m.state {
		if h == Live {
			n++
		}
	}
	return n
}

// MarkSuspect quarantines server i, recording why. Marking an
// already-quarantined server refreshes the cause and demotes Repairing
// back to Suspect — new evidence invalidates an in-flight repair's
// claim to be finishing. It reports whether the server was Live.
func (m *Membership) MarkSuspect(i int, cause error) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	wasLive := m.state[i] == Live
	if wasLive {
		m.quarantines++
	}
	m.state[i] = Suspect
	m.cause[i] = cause
	m.broadcast()
	return wasLive
}

// Quarantines counts Live→Suspect transitions since the view was
// built — how many times the cluster has pulled a server out of
// quorums (re-suspecting an already-quarantined server doesn't
// count).
func (m *Membership) Quarantines() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quarantines
}

// MarkRepairing claims server i for a repair attempt. It succeeds only
// from Suspect, so two repair loops cannot both think they own the
// server, and fresh suspicion (which resets to Suspect) is never
// silently swallowed by a stale repair.
func (m *Membership) MarkRepairing(i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state[i] != Suspect {
		return false
	}
	m.state[i] = Repairing
	m.broadcast()
	return true
}

// MarkLive readmits server i to quorums — the Repairer calls this
// after installing the repaired element (or proving the server already
// holds something at least as new). It succeeds only from Repairing:
// if suspicion arrived while the repair was in flight, the server
// stays quarantined and the repair loop goes around again.
func (m *Membership) MarkLive(i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state[i] != Repairing {
		return false
	}
	m.state[i] = Live
	m.cause[i] = nil
	m.broadcast()
	return true
}

// Readmit moves server i Suspect → Repairing → Live in one step: the
// operator path for a node that recovered its own state from disk
// (snapshot + WAL replay) and needs no donor repair. Safe only when
// the disk provably holds everything the node acknowledged — i.e. the
// node ran FsyncAlways; under a weaker fsync discipline the lost
// active-segment tail must be healed, so leave the server Suspect and
// let the Repairer readmit it. Returns false if i was not Suspect
// (already live, or a repair loop claimed it first).
func (m *Membership) Readmit(i int) bool {
	if !m.MarkRepairing(i) {
		return false
	}
	return m.MarkLive(i)
}

// AwaitLive blocks until server i is Live or ctx ends — how callers
// wait out a repair they know is in flight.
func (m *Membership) AwaitLive(ctx context.Context, i int) error {
	for {
		ch := m.Changed()
		if m.Health(i) == Live {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// ReportRead feeds a completed SODA_err read's corruption report into
// the view: every server the decoder located as corrupt becomes
// Suspect. Readers built WithReaderMembership call this themselves.
func (m *Membership) ReportRead(res ReadResult) {
	for _, i := range res.Corrupt {
		m.MarkSuspect(i, errCorruptElement)
	}
}
