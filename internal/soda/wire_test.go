package soda

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestTagOrder(t *testing.T) {
	a := Tag{}
	b := Tag{TS: 1, Writer: "w1"}
	c := Tag{TS: 1, Writer: "w2"}
	d := Tag{TS: 2, Writer: "w1"}
	order := []Tag{a, b, c, d}
	for i := range order {
		for j := range order {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := order[i].Compare(order[j]); got != want {
				t.Fatalf("Compare(%v, %v) = %d, want %d", order[i], order[j], got, want)
			}
		}
	}
	if !a.IsZero() || b.IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	if next := c.Next("w9"); next.TS != 2 || next.Writer != "w9" || !c.Less(next) {
		t.Fatalf("Next = %v", next)
	}
	// Next beats every tag sharing the observed timestamp, whatever
	// the writer ids: that is what makes minted tags fresh.
	if !c.Less(b.Next("w0")) {
		t.Fatal("Next(w0) after (1,w1) must exceed (1,w2)")
	}
}

// TestWireRoundTrip frames and parses every message type, checking the
// request id echoes through each one.
func TestWireRoundTrip(t *testing.T) {
	tag := Tag{TS: 77, Writer: "writer-α"}
	elem := []byte{1, 2, 3, 4, 5}
	const key = "accounts/42"
	const req = uint64(0xDEADBEEF01)
	const ep = uint64(7)

	roundtrip := func(payload []byte) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		got, err := readFrame(&buf, nil)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		typ, r, ok := peekHeader(got)
		if !ok || typ != payload[0] || r != req {
			t.Fatalf("peekHeader = (%#x, %d, %v), want (%#x, %d, true)", typ, r, ok, payload[0], req)
		}
		return got
	}

	gr, gep, gk, err := decodeGetTag(roundtrip(appendGetTag(nil, req, ep, key)))
	if err != nil || gr != req || gep != ep || gk != key {
		t.Fatalf("get-tag round trip = %d %d %q, %v", gr, gep, gk, err)
	}
	if gr, got, err := decodeTagResp(roundtrip(appendTagResp(nil, req, ep, tag))); err != nil || gr != req || got != tag {
		t.Fatalf("tag-resp round trip = %d %v, %v", gr, got, err)
	}
	gr, gep, gk, gt, ge, gv, err := decodePutData(roundtrip(appendPutData(nil, req, ep, key, tag, elem, 99)))
	if err != nil || gr != req || gep != ep || gk != key || gt != tag || gv != 99 || !bytes.Equal(ge, elem) {
		t.Fatalf("put-data round trip = %d %d %q %v %v %d, %v", gr, gep, gk, gt, ge, gv, err)
	}
	gr, gep, gk, rid, err := decodeGetData(roundtrip(appendGetData(nil, req, ep, key, "r#7")))
	if err != nil || gr != req || gep != ep || gk != key || rid != "r#7" {
		t.Fatalf("get-data round trip = %d %d %q %q, %v", gr, gep, gk, rid, err)
	}
	d := Delivery{Tag: tag, Elem: elem, VLen: 99, Initial: true}
	gr, got, err := decodeData(roundtrip(appendData(nil, req, d)))
	if err != nil || gr != req || got.Tag != tag || !bytes.Equal(got.Elem, elem) || got.VLen != 99 || !got.Initial {
		t.Fatalf("data round trip = %d %+v, %v", gr, got, err)
	}
	// The zero-tag empty-server delivery also survives.
	gr, got, err = decodeData(roundtrip(appendData(nil, req, Delivery{Initial: true})))
	if err != nil || gr != req || !got.Tag.IsZero() || len(got.Elem) != 0 || !got.Initial {
		t.Fatalf("empty data round trip = %d %+v, %v", gr, got, err)
	}
	if gr, err := decodeReaderDone(roundtrip(appendReaderDone(nil, req, ep))); err != nil || gr != req {
		t.Fatalf("reader-done round trip = %d, %v", gr, err)
	}
	if gr, gep, err := decodeKeysReq(roundtrip(appendKeysReq(nil, req, ep))); err != nil || gr != req || gep != ep {
		t.Fatalf("keys round trip = %d %d, %v", gr, gep, err)
	}
	keys := []string{"a", "b/c", strings.Repeat("k", maxKeyLen)}
	gr, gks, err := decodeKeysResp(roundtrip(appendKeysResp(nil, req, ep, keys)))
	if err != nil || gr != req || len(gks) != len(keys) {
		t.Fatalf("keys-resp round trip = %d %v, %v", gr, gks, err)
	}
	for i := range keys {
		if gks[i] != keys[i] {
			t.Fatalf("keys-resp[%d] = %q, want %q", i, gks[i], keys[i])
		}
	}
	// An empty enumeration survives too.
	gr, gks, err = decodeKeysResp(roundtrip(appendKeysResp(nil, req, ep, nil)))
	if err != nil || gr != req || len(gks) != 0 {
		t.Fatalf("empty keys-resp round trip = %d %v, %v", gr, gks, err)
	}
}

// TestWireRepairRoundTrip frames and parses the repair-subsystem
// messages.
func TestWireRepairRoundTrip(t *testing.T) {
	tag := Tag{TS: 41, Writer: "repairer"}
	elem := []byte{8, 6, 7, 5, 3, 0, 9}
	const key = "k"
	const req = uint64(31337)
	const ep = uint64(4)

	gr, gt, ge, gv, err := decodeElemResp(appendElemResp(nil, req, ep, tag, elem, 21))
	if err != nil || gr != req || gt != tag || gv != 21 || !bytes.Equal(ge, elem) {
		t.Fatalf("elem-resp round trip = %d %v %v %d, %v", gr, gt, ge, gv, err)
	}
	// The zero-tag empty-register response survives too.
	gr, gt, ge, gv, err = decodeElemResp(appendElemResp(nil, req, ep, Tag{}, nil, 0))
	if err != nil || gr != req || !gt.IsZero() || len(ge) != 0 || gv != 0 {
		t.Fatalf("empty elem-resp round trip = %d %v %v %d, %v", gr, gt, ge, gv, err)
	}
	if gr, gep, gk, err := decodeGetElem(appendGetElem(nil, req, ep, key)); err != nil || gr != req || gep != ep || gk != key {
		t.Fatalf("get-elem round trip = %d %d %q, %v", gr, gep, gk, err)
	}
	gr, gep, gk, gt, ge, gv, err := decodeRepairPut(appendRepairPut(nil, req, ep, key, tag, elem, 21))
	if err != nil || gr != req || gep != ep || gk != key || gt != tag || gv != 21 || !bytes.Equal(ge, elem) {
		t.Fatalf("repair-put round trip = %d %d %q %v %v %d, %v", gr, gep, gk, gt, ge, gv, err)
	}
	for _, accepted := range []bool{true, false} {
		if gr, got, err := decodeRepairResp(appendRepairResp(nil, req, ep, accepted)); err != nil || gr != req || got != accepted {
			t.Fatalf("repair-resp(%v) round trip = %d %v, %v", accepted, gr, got, err)
		}
	}
}

// TestWireKeyBounds pins the key validation rules: empty keys and
// oversized keys are refused by encoder-side validation and by the
// cursor on decode.
func TestWireKeyBounds(t *testing.T) {
	if err := validateKey(""); !errors.Is(err, ErrFrame) {
		t.Fatalf("validateKey(\"\") = %v", err)
	}
	long := strings.Repeat("x", maxKeyLen+1)
	if err := validateKey(long); !errors.Is(err, ErrFrame) {
		t.Fatalf("validateKey(256 bytes) = %v", err)
	}
	if err := validateKey(strings.Repeat("x", maxKeyLen)); err != nil {
		t.Fatalf("validateKey(255 bytes) = %v", err)
	}
	// A forged frame with a zero-length key fails decode.
	b := appendHeader(nil, msgGetTag, 1, 0)
	b = append(b, 0, 0) // uint16 key length 0
	if _, _, _, err := decodeGetTag(b); !errors.Is(err, ErrFrame) {
		t.Fatalf("zero-length key decode = %v", err)
	}
	// A forged length larger than maxKeyLen fails even when the bytes
	// are present.
	b = appendHeader(nil, msgGetTag, 1, 0)
	b = append(b, 0x01, 0x00) // claims 256
	b = append(b, bytes.Repeat([]byte{'x'}, 256)...)
	if _, _, _, err := decodeGetTag(b); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized key decode = %v", err)
	}
}

// TestWireTypedErrors pins the decode-failure taxonomy: truncation and
// trailing bytes yield *FrameError (still matching ErrFrame), and an
// explicit msgError frame surfaces as *RemoteError from any decoder.
func TestWireTypedErrors(t *testing.T) {
	const req = uint64(5)
	// Truncated payload: typed, named, and ErrFrame-compatible.
	full := appendElemResp(nil, req, 0, Tag{TS: 3, Writer: "w"}, []byte{1, 2}, 2)
	_, _, _, _, err := decodeElemResp(full[:len(full)-1])
	var fe *FrameError
	if !errors.As(err, &fe) || !errors.Is(err, ErrFrame) {
		t.Fatalf("truncated elem-resp error = %v (%T)", err, err)
	}
	if fe.Want != "elem-resp" || fe.Msg != "truncated payload" {
		t.Fatalf("FrameError = %+v", fe)
	}

	// Trailing bytes.
	_, _, _, _, err = decodeElemResp(append(append([]byte(nil), full...), 0xAB))
	if !errors.As(err, &fe) || fe.Msg != "1 trailing bytes" {
		t.Fatalf("trailing-bytes error = %v", err)
	}

	// Wrong type byte names both sides of the disagreement.
	_, err = decodeAck(appendRepairResp(nil, req, 0, true))
	if !errors.As(err, &fe) || fe.Want != "ack" || fe.Got != msgRepairResp {
		t.Fatalf("wrong-type error = %v (%+v)", err, fe)
	}

	// An explicit error frame beats a type mismatch in every decoder,
	// and the offending request id comes back with it.
	frame := appendError(nil, req, "unknown message type 0xff")
	var re *RemoteError
	gr, err := decodeAck(frame)
	if gr != req || !errors.As(err, &re) || re.Msg != "unknown message type 0xff" {
		t.Fatalf("error frame via decodeAck = %d, %v", gr, err)
	}
	if _, _, err := decodeTagResp(frame); !errors.As(err, &re) {
		t.Fatalf("error frame via decodeTagResp = %v", err)
	}
	if _, _, _, _, err := decodeElemResp(frame); !errors.As(err, &re) {
		t.Fatalf("error frame via decodeElemResp = %v", err)
	}
	// decodeError parses it directly, echoing the request id.
	if gr, err := decodeError(frame); gr != req || !errors.As(err, &re) {
		t.Fatalf("decodeError = %d, %v", gr, err)
	}

	// Error-frame text is capped in both directions.
	huge := string(bytes.Repeat([]byte{'x'}, 4*maxErrorMsg))
	if _, err := decodeAck(appendError(nil, req, huge)); !errors.As(err, &re) || len(re.Msg) != maxErrorMsg {
		t.Fatalf("oversized error frame = %v", err)
	}

	// Empty payloads are typed failures, not panics.
	if _, err := decodeAck(nil); !errors.As(err, &fe) || fe.Msg != "empty payload" {
		t.Fatalf("empty payload error = %v", err)
	}
	if _, _, ok := peekHeader([]byte{msgAck, 0, 0}); ok {
		t.Fatal("peekHeader accepted a short header")
	}
}

func TestWireMalformed(t *testing.T) {
	// Truncated payloads must error, not panic or misparse.
	full := appendPutData(nil, 9, 0, "k", Tag{TS: 5, Writer: "w"}, []byte{9, 9, 9}, 3)
	for cut := 1; cut < len(full); cut++ {
		if _, _, _, _, _, _, err := decodePutData(full[:cut]); err == nil {
			t.Fatalf("decodePutData accepted a %d/%d byte prefix", cut, len(full))
		}
	}
	// Trailing garbage is rejected too.
	if _, _, err := decodeTagResp(append(appendTagResp(nil, 9, 0, Tag{TS: 1}), 0xFF)); err == nil {
		t.Fatal("decodeTagResp accepted trailing bytes")
	}
	// Wrong message type.
	if _, _, err := decodeTagResp(appendAck(nil, 9, 0)); err == nil {
		t.Fatal("decodeTagResp accepted an ack")
	}
	// A keys-resp claiming an absurd count fails instead of allocating.
	b := appendHeader(nil, msgKeysResp, 9, 0)
	b = append(b, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, _, err := decodeKeysResp(b); err == nil {
		t.Fatal("decodeKeysResp accepted a 4-billion-key enumeration")
	}
	// Oversized and zero-length frames are refused at the framing layer.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized frame error = %v", err)
	}
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := readFrame(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("zero frame error = %v", err)
	}
	// A truncated stream surfaces as an IO error.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 9, 1, 2})
	if _, err := readFrame(&buf, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame error = %v", err)
	}
}
