package soda

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestTagOrder(t *testing.T) {
	a := Tag{}
	b := Tag{TS: 1, Writer: "w1"}
	c := Tag{TS: 1, Writer: "w2"}
	d := Tag{TS: 2, Writer: "w1"}
	order := []Tag{a, b, c, d}
	for i := range order {
		for j := range order {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := order[i].Compare(order[j]); got != want {
				t.Fatalf("Compare(%v, %v) = %d, want %d", order[i], order[j], got, want)
			}
		}
	}
	if !a.IsZero() || b.IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	if next := c.Next("w9"); next.TS != 2 || next.Writer != "w9" || !c.Less(next) {
		t.Fatalf("Next = %v", next)
	}
	// Next beats every tag sharing the observed timestamp, whatever
	// the writer ids: that is what makes minted tags fresh.
	if !c.Less(b.Next("w0")) {
		t.Fatal("Next(w0) after (1,w1) must exceed (1,w2)")
	}
}

// TestWireRoundTrip frames and parses every message type.
func TestWireRoundTrip(t *testing.T) {
	tag := Tag{TS: 77, Writer: "writer-α"}
	elem := []byte{1, 2, 3, 4, 5}

	roundtrip := func(payload []byte) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		got, err := readFrame(&buf, nil)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		return got
	}

	if got, err := decodeTagResp(roundtrip(encodeTagResp(tag))); err != nil || got != tag {
		t.Fatalf("tag-resp round trip = %v, %v", got, err)
	}
	gt, ge, gv, err := decodePutData(roundtrip(encodePutData(tag, elem, 99)))
	if err != nil || gt != tag || gv != 99 || !bytes.Equal(ge, elem) {
		t.Fatalf("put-data round trip = %v %v %d, %v", gt, ge, gv, err)
	}
	if rid, err := decodeGetData(roundtrip(encodeGetData("r#7"))); err != nil || rid != "r#7" {
		t.Fatalf("get-data round trip = %q, %v", rid, err)
	}
	d := Delivery{Tag: tag, Elem: elem, VLen: 99, Initial: true}
	got, err := decodeData(roundtrip(encodeData(d)))
	if err != nil || got.Tag != tag || !bytes.Equal(got.Elem, elem) || got.VLen != 99 || !got.Initial {
		t.Fatalf("data round trip = %+v, %v", got, err)
	}
	// The zero-tag empty-server delivery also survives.
	got, err = decodeData(roundtrip(encodeData(Delivery{Initial: true})))
	if err != nil || !got.Tag.IsZero() || len(got.Elem) != 0 || !got.Initial {
		t.Fatalf("empty data round trip = %+v, %v", got, err)
	}
}

// TestWireRepairRoundTrip frames and parses the repair-subsystem
// messages.
func TestWireRepairRoundTrip(t *testing.T) {
	tag := Tag{TS: 41, Writer: "repairer"}
	elem := []byte{8, 6, 7, 5, 3, 0, 9}

	gt, ge, gv, err := decodeElemResp(encodeElemResp(tag, elem, 21))
	if err != nil || gt != tag || gv != 21 || !bytes.Equal(ge, elem) {
		t.Fatalf("elem-resp round trip = %v %v %d, %v", gt, ge, gv, err)
	}
	// The zero-tag empty-register response survives too.
	gt, ge, gv, err = decodeElemResp(encodeElemResp(Tag{}, nil, 0))
	if err != nil || !gt.IsZero() || len(ge) != 0 || gv != 0 {
		t.Fatalf("empty elem-resp round trip = %v %v %d, %v", gt, ge, gv, err)
	}
	gt, ge, gv, err = decodeRepairPut(encodeRepairPut(tag, elem, 21))
	if err != nil || gt != tag || gv != 21 || !bytes.Equal(ge, elem) {
		t.Fatalf("repair-put round trip = %v %v %d, %v", gt, ge, gv, err)
	}
	for _, accepted := range []bool{true, false} {
		if got, err := decodeRepairResp(encodeRepairResp(accepted)); err != nil || got != accepted {
			t.Fatalf("repair-resp(%v) round trip = %v, %v", accepted, got, err)
		}
	}
}

// TestWireTypedErrors pins the decode-failure taxonomy: truncation and
// trailing bytes yield *FrameError (still matching ErrFrame), and an
// explicit msgError frame surfaces as *RemoteError from any decoder.
func TestWireTypedErrors(t *testing.T) {
	// Truncated payload: typed, named, and ErrFrame-compatible.
	full := encodeElemResp(Tag{TS: 3, Writer: "w"}, []byte{1, 2}, 2)
	_, _, _, err := decodeElemResp(full[:len(full)-1])
	var fe *FrameError
	if !errors.As(err, &fe) || !errors.Is(err, ErrFrame) {
		t.Fatalf("truncated elem-resp error = %v (%T)", err, err)
	}
	if fe.Want != "elem-resp" || fe.Msg != "truncated payload" {
		t.Fatalf("FrameError = %+v", fe)
	}

	// Trailing bytes.
	_, _, _, err = decodeElemResp(append(append([]byte(nil), full...), 0xAB))
	if !errors.As(err, &fe) || fe.Msg != "1 trailing bytes" {
		t.Fatalf("trailing-bytes error = %v", err)
	}

	// Wrong type byte names both sides of the disagreement.
	err = decodeAck(encodeRepairResp(true))
	if !errors.As(err, &fe) || fe.Want != "ack" || fe.Got != msgRepairResp {
		t.Fatalf("wrong-type error = %v (%+v)", err, fe)
	}

	// An explicit error frame beats a type mismatch in every decoder.
	frame := encodeError("unknown message type 0xff")
	var re *RemoteError
	if err := decodeAck(frame); !errors.As(err, &re) || re.Msg != "unknown message type 0xff" {
		t.Fatalf("error frame via decodeAck = %v", err)
	}
	if _, err := decodeTagResp(frame); !errors.As(err, &re) {
		t.Fatalf("error frame via decodeTagResp = %v", err)
	}
	if _, _, _, err := decodeElemResp(frame); !errors.As(err, &re) {
		t.Fatalf("error frame via decodeElemResp = %v", err)
	}

	// Error-frame text is capped in both directions.
	huge := string(bytes.Repeat([]byte{'x'}, 4*maxErrorMsg))
	if err := decodeAck(encodeError(huge)); !errors.As(err, &re) || len(re.Msg) != maxErrorMsg {
		t.Fatalf("oversized error frame = %v", err)
	}

	// Empty payloads are typed failures, not panics.
	if err := decodeAck(nil); !errors.As(err, &fe) || fe.Msg != "empty payload" {
		t.Fatalf("empty payload error = %v", err)
	}
}

func TestWireMalformed(t *testing.T) {
	// Truncated payloads must error, not panic or misparse.
	full := encodePutData(Tag{TS: 5, Writer: "w"}, []byte{9, 9, 9}, 3)
	for cut := 1; cut < len(full); cut++ {
		if _, _, _, err := decodePutData(full[:cut]); err == nil {
			t.Fatalf("decodePutData accepted a %d/%d byte prefix", cut, len(full))
		}
	}
	// Trailing garbage is rejected too.
	if _, err := decodeTagResp(append(encodeTagResp(Tag{TS: 1}), 0xFF)); err == nil {
		t.Fatal("decodeTagResp accepted trailing bytes")
	}
	// Wrong message type.
	if _, err := decodeTagResp(encodeAck()); err == nil {
		t.Fatal("decodeTagResp accepted an ack")
	}
	// Oversized and zero-length frames are refused at the framing layer.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized frame error = %v", err)
	}
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := readFrame(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("zero frame error = %v", err)
	}
	// A truncated stream surfaces as an IO error.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 9, 1, 2})
	if _, err := readFrame(&buf, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame error = %v", err)
	}
}
