package soda

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
)

// ErrServerDown is what loopback conns return for a fail-stop-crashed
// server, standing in for a refused connection.
var ErrServerDown = errors.New("soda: server is down")

// Loopback is an in-process cluster of n SODA servers with
// synchronous, deterministic message delivery — every client call
// runs the server state machine on the calling goroutine, and every
// relay runs on the goroutine of the put that triggered it — plus
// fault injection:
//
//   - Crash: fail-stop; the server's conns error immediately and its
//     registered readers stop hearing relays.
//   - Hang: silent crash; the server never answers, callers block
//     until their context ends. This is the pure crash model the
//     protocol's quorums are sized for.
//   - Corrupt: the server's storage rots; every element it serves or
//     relays first passes through a caller-supplied transform, which
//     is what the SODA_err read path exists to catch.
//
// Like the TCP transport, loopback conns model the wire's copy
// semantics: put elements are cloned on the way in, served elements on
// the way out, so a client reusing a pooled encode buffer can never
// alias server storage. Loopback is the substrate for deterministic
// protocol tests and the sodademo binary.
type Loopback struct {
	mu sync.Mutex // serializes the fault-injection mutators
	// servers holds atomic pointers so Recover can swap in a freshly
	// recovered state machine while conns keep reading lock-free.
	servers []atomic.Pointer[Server]
	// The fault state is read on every operation and every delivery, so
	// the hot path samples it with atomics; mu only orders the mutators
	// against each other.
	crashed   []atomic.Bool
	hung      []atomic.Bool
	down      []atomic.Value // chan struct{}; closed by Crash, replaced by Restart
	corrupt   []atomic.Pointer[func([]byte) []byte]
	onDeliver atomic.Pointer[func(server int, key, readerID string, d Delivery)]
	// Durable clusters only: per-node state directories and the options
	// Recover re-opens them with.
	durDir  string
	durOpts []DurableOption
}

// NewLoopback builds an n-server in-process cluster.
func NewLoopback(n int) *Loopback {
	lb := newLoopbackShell(n)
	for i := range lb.servers {
		lb.servers[i].Store(NewServer(i))
	}
	return lb
}

// NewDurableLoopback builds an n-server cluster whose nodes persist
// their state under dir (one "node-<i>" subdirectory each), so
// PowerCut and Recover can exercise the WAL + snapshot machinery.
func NewDurableLoopback(n int, dir string, opts ...DurableOption) (*Loopback, error) {
	lb := newLoopbackShell(n)
	lb.durDir, lb.durOpts = dir, opts
	for i := range lb.servers {
		s, err := NewDurableServer(i, lb.nodeDir(i), opts...)
		if err != nil {
			lb.CloseServers()
			return nil, err
		}
		lb.servers[i].Store(s)
	}
	return lb, nil
}

func newLoopbackShell(n int) *Loopback {
	lb := &Loopback{
		servers: make([]atomic.Pointer[Server], n),
		crashed: make([]atomic.Bool, n),
		hung:    make([]atomic.Bool, n),
		down:    make([]atomic.Value, n),
		corrupt: make([]atomic.Pointer[func([]byte) []byte], n),
	}
	for i := range lb.down {
		lb.down[i].Store(make(chan struct{}))
	}
	return lb
}

func (l *Loopback) nodeDir(i int) string {
	return filepath.Join(l.durDir, fmt.Sprintf("node-%d", i))
}

// Server exposes server i's state machine for inspection.
func (l *Loopback) Server(i int) *Server { return l.servers[i].Load() }

// Size returns the number of server endpoints in the loopback. A
// configuration may use any prefix of them: endpoints beyond the
// active config's n are standby nodes a grow-reconfiguration can
// bring in.
func (l *Loopback) Size() int { return len(l.servers) }

// Conns returns a fresh conn set for the cluster, stamped with epoch 0
// (the construction-time configuration).
func (l *Loopback) Conns() []Conn { return l.ConnsAt(SeedEpoch, len(l.servers)) }

// ConnsAt returns conns for the first n servers, each stamping the
// given configuration epoch on every operation — the conn set for one
// epoch's Config. Reconfiguration to a different member count builds a
// new conn set rather than mutating an old one, so an operation's
// quorum can only ever carry its own config's epoch.
func (l *Loopback) ConnsAt(epoch uint64, n int) []Conn {
	conns := make([]Conn, n)
	for i := range conns {
		conns[i] = &loopConn{lb: l, idx: i, epoch: epoch}
	}
	return conns
}

// Crash fail-stops server i: future operations against it error,
// in-flight get-data subscriptions end with ErrServerDown (the TCP
// analogue: the connection dies), and its registered readers are
// dropped so it relays to nobody.
func (l *Loopback) Crash(i int) {
	l.mu.Lock()
	if !l.crashed[i].Load() {
		l.crashed[i].Store(true)
		close(l.down[i].Load().(chan struct{}))
	}
	l.mu.Unlock()
	l.servers[i].Load().UnregisterAll()
}

// Hang silently crashes server i: it stops answering but connections
// do not fail. Its registered readers are likewise dropped.
func (l *Loopback) Hang(i int) {
	l.mu.Lock()
	l.hung[i].Store(true)
	l.mu.Unlock()
	l.servers[i].Load().UnregisterAll()
}

// PowerCut crashes durable server i the unclean way: fail-stop like
// Crash, plus the WAL loses everything past its last fsync — exactly
// what the disk would hold after the cord is pulled. Under FsyncAlways
// nothing acknowledged is lost; under FsyncNone the active segment's
// tail is. Recover brings the node back from that disk state.
func (l *Loopback) PowerCut(i int) {
	l.Crash(i)
	if d := l.servers[i].Load().dur; d != nil {
		d.powerCut()
	}
}

// Recover replaces crashed server i with a fresh state machine
// rebuilt from its node directory (snapshot load + WAL replay) — the
// durable alternative to Restart's "storage as the crash left it" and
// to Wipe + donor repair. The swapped-in server starts with no
// registered readers, like any rebooted node.
func (l *Loopback) Recover(i int) (*Server, error) {
	if l.durDir == "" {
		return nil, errors.New("soda: Recover on a non-durable loopback")
	}
	s, err := NewDurableServer(i, l.nodeDir(i), l.durOpts...)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.servers[i].Store(s)
	if l.crashed[i].Load() {
		l.down[i].Store(make(chan struct{}))
		l.crashed[i].Store(false)
	}
	l.hung[i].Store(false)
	l.mu.Unlock()
	return s, nil
}

// TearWALTail shears n bytes off the end of server i's last WAL
// segment, simulating a torn final write that a power cut left
// mid-record. Call it between PowerCut and Recover.
func (l *Loopback) TearWALTail(i int, n int64) error {
	if l.durDir == "" {
		return errors.New("soda: TearWALTail on a non-durable loopback")
	}
	return tearWALTail(l.nodeDir(i), n)
}

// CloseServers cleanly shuts down every durable server (final fsync,
// files closed); memory-only clusters no-op.
func (l *Loopback) CloseServers() error {
	var first error
	for i := range l.servers {
		if s := l.servers[i].Load(); s != nil {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Restart rejoins a crashed or hung server i: future operations reach
// its state machine again, with storage exactly as the crash left it
// (possibly stale — repair's job) and no registered readers. A
// corruption transform installed with Corrupt survives the restart,
// modeling a bad disk that a reboot does not fix; clear it with
// Corrupt(i, nil) to model a disk swap. Combine with Server(i).Wipe()
// for a restart that lost the disk entirely.
func (l *Loopback) Restart(i int) {
	l.mu.Lock()
	if l.crashed[i].Load() {
		l.down[i].Store(make(chan struct{}))
		l.crashed[i].Store(false)
	}
	l.hung[i].Store(false)
	l.mu.Unlock()
}

// Corrupt installs a storage-rot transform for server i: every
// element it serves from now on is passed through fn (on a copy — the
// underlying storage stays intact, modeling a bad disk sector or a
// bit-flipping NIC rather than a helpful repair).
func (l *Loopback) Corrupt(i int, fn func([]byte) []byte) {
	if fn == nil {
		l.corrupt[i].Store(nil)
		return
	}
	l.corrupt[i].Store(&fn)
}

// FlipByte is a ready-made Corrupt transform: XOR the byte at off.
func FlipByte(off int) func([]byte) []byte {
	return func(b []byte) []byte {
		if len(b) > 0 {
			b[off%len(b)] ^= 0x5A
		}
		return b
	}
}

// OnDeliver installs a hook invoked synchronously after each delivery
// to a reader, with no loopback locks held — tests use it to inject
// faults at exact protocol moments (for example, crash a server right
// after its initial response reaches a reader).
func (l *Loopback) OnDeliver(fn func(server int, key, readerID string, d Delivery)) {
	if fn == nil {
		l.onDeliver.Store(nil)
		return
	}
	l.onDeliver.Store(&fn)
}

// state samples the fault flags for server i.
func (l *Loopback) state(i int) (crashed, hung bool) {
	return l.crashed[i].Load(), l.hung[i].Load()
}

// downCh samples server i's crash channel (Restart replaces it).
func (l *Loopback) downCh(i int) chan struct{} {
	return l.down[i].Load().(chan struct{})
}

// transform applies server i's corruption, if any, to a copy of the
// delivery's element.
func (l *Loopback) transform(i int, d Delivery) Delivery {
	if fn := l.corrupt[i].Load(); fn != nil && len(d.Elem) > 0 {
		d.Elem = (*fn)(slices.Clone(d.Elem))
	}
	return d
}

func (l *Loopback) hook() func(server int, key, readerID string, d Delivery) {
	if fn := l.onDeliver.Load(); fn != nil {
		return *fn
	}
	return nil
}

// loopConn is the in-process Conn for one server, stamped with the
// configuration epoch its operations present.
type loopConn struct {
	lb    *Loopback
	idx   int
	epoch uint64
}

func (c *loopConn) Index() int { return c.idx }

// gate applies the fault flags: error when crashed, block forever
// when hung. A cancelled context is deliberately NOT checked: a
// quorum's straggler goroutines model messages already in flight, and
// in-flight messages still land. Tests that need a put to *miss* a
// server must crash it before the put begins, not rely on client-side
// cancellation to unsend it.
func (c *loopConn) gate(ctx context.Context) error {
	crashed, hung := c.lb.state(c.idx)
	if crashed {
		return ErrServerDown
	}
	if hung {
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

func (c *loopConn) GetTag(ctx context.Context, key string) (Tag, error) {
	if err := c.gate(ctx); err != nil {
		return Tag{}, err
	}
	srv := c.lb.servers[c.idx].Load()
	if nack := srv.Admit(opClient, c.epoch); nack != nil {
		return Tag{}, nack
	}
	return srv.GetTag(key), nil
}

func (c *loopConn) PutData(ctx context.Context, key string, t Tag, elem []byte, vlen int) error {
	if err := c.gate(ctx); err != nil {
		return err
	}
	srv := c.lb.servers[c.idx].Load()
	if nack := srv.Admit(opClient, c.epoch); nack != nil {
		return nack
	}
	// The wire would copy: the server takes ownership, and the caller
	// (a pooled writer scratch) is free to reuse elem immediately.
	srv.PutData(key, t, slices.Clone(elem), vlen)
	return nil
}

func (c *loopConn) GetData(ctx context.Context, key, readerID string, deliver func(Delivery)) error {
	if err := c.gate(ctx); err != nil {
		return err
	}
	srv := c.lb.servers[c.idx].Load()
	if nack := srv.Admit(opClient, c.epoch); nack != nil {
		return nack
	}
	wrap := func(d Delivery) {
		d = c.lb.transform(c.idx, d)
		deliver(d)
		if fn := c.lb.hook(); fn != nil {
			fn(c.idx, key, readerID, d)
		}
	}
	down := c.lb.downCh(c.idx)
	// The stream dies when the server's epoch moves: the registration
	// was dropped by the transition, and the stale error is what makes
	// the reader re-register under the new configuration.
	flipped := srv.EpochChanged()
	initial := srv.Register(key, readerID, wrap)
	defer srv.Unregister(key, readerID)
	wrap(initial)
	select {
	case <-ctx.Done():
		return nil
	case <-down:
		return ErrServerDown
	case <-flipped:
		if nack := srv.Admit(opClient, c.epoch); nack != nil {
			return nack
		}
		st := srv.EpochStatus()
		return &StaleEpochError{Server: c.idx, ServerEpoch: st.Epoch, Want: st.Epoch, Sealed: st.Sealed}
	}
}

// GetElem serves the repair collection phase. The corruption transform
// applies here too: a rotting server lies to the Repairer exactly as
// it lies to readers, which is why repair cross-checks donors when the
// codec has error-location structure.
func (c *loopConn) GetElem(ctx context.Context, key string) (Tag, []byte, int, error) {
	if err := c.gate(ctx); err != nil {
		return Tag{}, nil, 0, err
	}
	srv := c.lb.servers[c.idx].Load()
	if nack := srv.Admit(opDonor, c.epoch); nack != nil {
		return Tag{}, nil, 0, nack
	}
	srv.metrics.getElems.Add(1)
	t, elem, vlen := srv.Snapshot(key)
	d := c.lb.transform(c.idx, Delivery{Server: c.idx, Tag: t, Elem: elem, VLen: vlen})
	if len(d.Elem) > 0 && &d.Elem[0] == &elem[0] {
		// No transform ran: copy out of the server's live buffer so a
		// concurrent put cannot mutate the caller's view.
		d.Elem = slices.Clone(d.Elem)
	}
	return d.Tag, d.Elem, d.VLen, nil
}

func (c *loopConn) RepairPut(ctx context.Context, key string, t Tag, elem []byte, vlen int) (bool, error) {
	if err := c.gate(ctx); err != nil {
		return false, err
	}
	srv := c.lb.servers[c.idx].Load()
	if nack := srv.Admit(opRepair, c.epoch); nack != nil {
		return false, nack
	}
	return srv.RepairPut(key, t, slices.Clone(elem), vlen), nil
}

// Keys enumerates the server's written keys — the repair namespace.
func (c *loopConn) Keys(ctx context.Context) ([]string, error) {
	if err := c.gate(ctx); err != nil {
		return nil, err
	}
	srv := c.lb.servers[c.idx].Load()
	if nack := srv.Admit(opDonor, c.epoch); nack != nil {
		return nil, nack
	}
	return srv.Keys(), nil
}

// Reconfig forwards a coordinator seal/activate/status to the server.
// Epoch admission does not apply: reconfiguration is how epochs move.
func (c *loopConn) Reconfig(ctx context.Context, op ReconfigOp, target uint64, n, k int) (EpochStatus, error) {
	if err := c.gate(ctx); err != nil {
		return EpochStatus{}, err
	}
	return c.lb.servers[c.idx].Load().Reconfig(op, target, n, k)
}
