package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestMulTableRowExhaustive checks every entry of the 256x256 product
// table against the scalar field core.
func TestMulTableRowExhaustive(t *testing.T) {
	for c := 0; c < 256; c++ {
		row := MulTableRow(byte(c))
		for a := 0; a < 256; a++ {
			if got, want := row[a], Mul(byte(c), byte(a)); got != want {
				t.Fatalf("MulTableRow(%#x)[%#x] = %#x, want %#x", c, a, got, want)
			}
		}
	}
}

// randSlice returns a deterministic pseudo-random slice that includes
// zeros (the scalar path special-cases them).
func randSlice(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	rng.Read(s)
	for i := 0; i < n; i += 7 {
		s[i] = 0
	}
	return s
}

// TestMulSliceMatchesScalar runs the table kernel against the log/exp
// reference for all 256 coefficients, with lengths chosen to exercise
// both the unrolled body and the tail.
func TestMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		src := randSlice(rng, n)
		for c := 0; c < 256; c++ {
			fast := make([]byte, n)
			ref := make([]byte, n)
			rng.Read(fast) // ensure stale contents get overwritten
			copy(ref, fast)
			MulSlice(byte(c), fast, src)
			mulSliceScalar(byte(c), ref, src)
			if !bytes.Equal(fast, ref) {
				t.Fatalf("MulSlice(c=%#x, n=%d) diverges from scalar reference", c, n)
			}
		}
	}
}

// TestMulAddSliceMatchesScalar is the same equivalence check for the
// fused multiply-accumulate.
func TestMulAddSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		src := randSlice(rng, n)
		base := randSlice(rng, n)
		for c := 0; c < 256; c++ {
			fast := make([]byte, n)
			ref := make([]byte, n)
			copy(fast, base)
			copy(ref, base)
			MulAddSlice(byte(c), fast, src)
			mulAddSliceScalar(byte(c), ref, src)
			if !bytes.Equal(fast, ref) {
				t.Fatalf("MulAddSlice(c=%#x, n=%d) diverges from scalar reference", c, n)
			}
		}
	}
}

func TestMulSliceAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSlice(rng, 100)
	want := make([]byte, len(s))
	MulSlice(0x53, want, s)
	MulSlice(0x53, s, s) // in place
	if !bytes.Equal(s, want) {
		t.Fatal("in-place MulSlice differs from out-of-place")
	}
}

func TestDot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSlice(rng, 33)
	b := randSlice(rng, 33)
	var want byte
	for i := range a {
		want ^= Mul(a[i], b[i])
	}
	if got := Dot(a, b); got != want {
		t.Fatalf("Dot = %#x, want %#x", got, want)
	}
	if Dot(nil, nil) != 0 {
		t.Fatal("Dot of empty slices should be 0")
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	Dot(make([]byte, 2), make([]byte, 3))
}

func benchSlices(size int) (dst, src []byte) {
	rng := rand.New(rand.NewSource(5))
	dst = make([]byte, size)
	src = make([]byte, size)
	rng.Read(dst)
	rng.Read(src)
	return
}

func BenchmarkMulAddSlice(b *testing.B) {
	for _, bc := range []struct {
		name string
		size int
	}{
		{"1KiB", 1 << 10},
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
	} {
		dst, src := benchSlices(bc.size)
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(bc.size))
			for i := 0; i < b.N; i++ {
				MulAddSlice(0x53, dst, src)
			}
		})
	}
}

// BenchmarkMulAddSliceScalar is the seed log/exp kernel, kept as the
// baseline for the table-driven speedup.
func BenchmarkMulAddSliceScalar(b *testing.B) {
	for _, bc := range []struct {
		name string
		size int
	}{
		{"1KiB", 1 << 10},
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
	} {
		dst, src := benchSlices(bc.size)
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(bc.size))
			for i := 0; i < b.N; i++ {
				mulAddSliceScalar(0x53, dst, src)
			}
		})
	}
}

func BenchmarkMulSlice(b *testing.B) {
	dst, src := benchSlices(64 << 10)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		MulSlice(0x53, dst, src)
	}
}
