package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolyDegree(t *testing.T) {
	cases := []struct {
		p    []byte
		want int
	}{
		{nil, -1},
		{[]byte{0}, -1},
		{[]byte{0, 0, 0}, -1},
		{[]byte{5}, 0},
		{[]byte{0, 1}, 1},
		{[]byte{1, 0, 3, 0, 0}, 2},
	}
	for _, c := range cases {
		if got := PolyDegree(c.p); got != c.want {
			t.Errorf("PolyDegree(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPolyTrim(t *testing.T) {
	if got := PolyTrim([]byte{1, 2, 0, 0}); !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("PolyTrim = %v", got)
	}
	if got := PolyTrim([]byte{0, 0}); len(got) != 0 {
		t.Fatalf("PolyTrim zero poly = %v, want empty", got)
	}
}

func TestPolyAddEval(t *testing.T) {
	f := func(a, b []byte, x byte) bool {
		return PolyEval(PolyAdd(a, b), x) == (PolyEval(a, x) ^ PolyEval(b, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyMulEval(t *testing.T) {
	f := func(a, b []byte, x byte) bool {
		return PolyEval(PolyMul(a, b), x) == Mul(PolyEval(a, x), PolyEval(b, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyMulZero(t *testing.T) {
	if PolyMul(nil, []byte{1, 2}) != nil {
		t.Fatal("0 * p must be the zero polynomial")
	}
	if PolyMul([]byte{0, 0}, []byte{1}) != nil {
		t.Fatal("0 * p must be the zero polynomial (explicit zeros)")
	}
}

func TestPolyScale(t *testing.T) {
	p := []byte{1, 2, 3}
	got := PolyScale(2, p)
	for i := range p {
		if got[i] != Mul(2, p[i]) {
			t.Fatalf("PolyScale[%d] = %#x", i, got[i])
		}
	}
}

func TestPolyEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x^2 at x=2: 3 ^ Mul(2,2) ^ Mul(1,4) = 3^4^4 = 3.
	p := []byte{3, 2, 1}
	if got := PolyEval(p, 2); got != 3 {
		t.Fatalf("PolyEval = %#x, want 0x3", got)
	}
	if PolyEval(nil, 7) != 0 {
		t.Fatal("empty poly evaluates to 0")
	}
	if PolyEval([]byte{9}, 0) != 9 {
		t.Fatal("constant poly at 0")
	}
}

func TestPolyEvalDeriv(t *testing.T) {
	// Derivative of p = c0 + c1 x + c2 x^2 + c3 x^3 in char 2 is c1 + c3 x^2
	// (even-degree terms of p vanish; 3x^2 -> x^2 since 3 mod 2 = 1).
	p := []byte{0x11, 0x22, 0x33, 0x44}
	for _, x := range []byte{0, 1, 2, 0x80, 0xFF} {
		want := p[1] ^ Mul(p[3], Mul(x, x))
		if got := PolyEvalDeriv(p, x); got != want {
			t.Fatalf("PolyEvalDeriv(x=%#x) = %#x, want %#x", x, got, want)
		}
	}
}

func TestPolyDivMod(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		a := randPoly(rng, rng.Intn(12))
		b := randPoly(rng, 1+rng.Intn(6))
		if PolyDegree(b) < 0 {
			continue
		}
		q, r := PolyDivMod(a, b)
		// a must equal q*b + r with deg(r) < deg(b).
		recon := PolyAdd(PolyMul(q, b), r)
		if !polyEqual(recon, a) {
			t.Fatalf("iter %d: q*b+r != a\na=%v b=%v q=%v r=%v", iter, a, b, q, r)
		}
		if PolyDegree(r) >= PolyDegree(b) {
			t.Fatalf("iter %d: deg(r)=%d >= deg(b)=%d", iter, PolyDegree(r), PolyDegree(b))
		}
	}
}

func TestPolyDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PolyDivMod by zero must panic")
		}
	}()
	PolyDivMod([]byte{1, 2}, []byte{0})
}

func TestPolyShift(t *testing.T) {
	got := PolyShift([]byte{1, 2}, 3)
	want := []byte{0, 0, 0, 1, 2}
	if !bytes.Equal(got, want) {
		t.Fatalf("PolyShift = %v, want %v", got, want)
	}
	if PolyShift(nil, 5) != nil {
		t.Fatal("shifting zero poly yields zero poly")
	}
}

func polyEqual(a, b []byte) bool {
	a, b = PolyTrim(a), PolyTrim(b)
	return bytes.Equal(a, b)
}

func randPoly(rng *rand.Rand, deg int) []byte {
	p := make([]byte, deg+1)
	for i := range p {
		p[i] = byte(rng.Intn(256))
	}
	return p
}
