package gf256

// Table-driven slice kernels and kernel dispatch.
//
// The scalar field core (gf256.go) multiplies through log/exp lookups:
// two table reads, an integer add, and a zero-operand branch per byte.
// For the erasure-coding inner loop — dst[i] ^= c * src[i] over shards
// of kilobytes to megabytes with a fixed coefficient c — that cost is
// dominated by a full 256x256 product table: one 256-byte row per
// coefficient turns every byte into a single branch-free indexed load.
// The row fits in four cache lines and stays hot for the whole shard.
//
// Above the table sit the SIMD tiers, selected at runtime:
//
//	gfni   VGF2P8AFFINEQB on 64-byte ZMM vectors: one instruction
//	       applies the coefficient's 8x8 GF(2) bit matrix to 64 bytes
//	       (requires GFNI + AVX-512F + OS ZMM state)
//	avx2   VPSHUFB nibble-shuffle: two 16-byte in-register lookups
//	       per 32-byte vector
//	table  the 256-byte product row, one indexed load per byte
//
// SetKernel (or the GF256_KERNEL environment variable) caps the ladder
// for benchmarking and debugging; the `purego` build tag removes the
// SIMD tiers entirely.
//
// The tables (64 KiB product table, plus the SIMD-specific views) are
// built lazily on first use so that programs that only ever do scalar
// arithmetic never pay for them.

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

var (
	mulTableOnce sync.Once
	mulTable     *[256][256]byte
	// nibTable[c] holds, for the AVX2 kernels, the 16 products
	// c*(i) followed by the 16 products c*(i<<4): the two in-register
	// shuffle tables that split a byte multiply over its nibbles.
	nibTable *[256][32]byte
	// gfniTable[c] is the 8x8 GF(2) bit matrix of "multiply by c",
	// packed in the qword layout VGF2P8AFFINEQB expects: the row
	// producing output bit i sits in byte 7-i.
	gfniTable *[256]uint64
)

// Kernel tier names accepted by SetKernel and GF256_KERNEL.
const (
	KernelGFNI  = "gfni"
	KernelAVX2  = "avx2"
	KernelTable = "table"
)

// useGFNI/useAVX2 are the active dispatch flags; they start at the
// hardware's best tier and can only be lowered (never raised above
// hasGFNI/hasAVX2) by SetKernel.
var (
	useGFNI bool
	useAVX2 bool
)

func init() {
	useGFNI, useAVX2 = hasGFNI, hasAVX2
	if env := os.Getenv("GF256_KERNEL"); env != "" {
		// Warn rather than panic on an unusable value: a feature the
		// machine lacks (or a typo) must not kill startup where the
		// env leaked in, but silently running the wrong tier would
		// corrupt benchmark attributions.
		if err := SetKernel(env); err != nil {
			fmt.Fprintf(os.Stderr, "gf256: ignoring GF256_KERNEL=%q: %v\n", env, err)
		}
	}
}

// KernelName reports the active top kernel tier: "gfni", "avx2", or
// "table".
func KernelName() string {
	switch {
	case useGFNI:
		return KernelGFNI
	case useAVX2:
		return KernelAVX2
	default:
		return KernelTable
	}
}

// AvailableKernels lists the kernel tiers usable on this machine and
// build, best first. "table" is always present.
func AvailableKernels() []string {
	ks := make([]string, 0, 3)
	if hasGFNI {
		ks = append(ks, KernelGFNI)
	}
	if hasAVX2 {
		ks = append(ks, KernelAVX2)
	}
	return append(ks, KernelTable)
}

// SetKernel caps the dispatch ladder at the named tier ("gfni", "avx2",
// "table"), or restores the hardware's best with "auto". It returns an
// error if the tier is unknown or not supported by this machine/build.
// It is intended for benchmarks and tests and must not be called
// concurrently with slice-kernel operations.
func SetKernel(name string) error {
	switch name {
	case "auto":
		useGFNI, useAVX2 = hasGFNI, hasAVX2
	case KernelGFNI:
		if !hasGFNI {
			return fmt.Errorf("gf256: kernel %q not supported on this CPU/build", name)
		}
		useGFNI, useAVX2 = true, hasAVX2
	case KernelAVX2:
		if !hasAVX2 {
			return fmt.Errorf("gf256: kernel %q not supported on this CPU/build", name)
		}
		useGFNI, useAVX2 = false, true
	case KernelTable:
		useGFNI, useAVX2 = false, false
	default:
		return fmt.Errorf("gf256: unknown kernel %q", name)
	}
	return nil
}

func buildMulTable() {
	t := new([256][256]byte)
	for c := 1; c < 256; c++ {
		lc := int(logTable[c])
		row := &t[c]
		for a := 1; a < 256; a++ {
			row[a] = expTable[lc+int(logTable[a])]
		}
	}
	if hasAVX2 {
		nt := new([256][32]byte)
		for c := 1; c < 256; c++ {
			row := &t[c]
			for i := 0; i < 16; i++ {
				nt[c][i] = row[i]
				nt[c][16+i] = row[i<<4]
			}
		}
		nibTable = nt
	}
	if hasGFNI {
		gt := new([256]uint64)
		for c := 1; c < 256; c++ {
			gt[c] = gfniMatrix(byte(c))
		}
		gfniTable = gt
	}
	mulTable = t
}

// gfniMatrix packs "multiply by c" as the 8x8 GF(2) bit matrix operand
// of VGF2P8AFFINEQB. Column j of the matrix is c*x^j (multiplication is
// GF(2)-linear over the bits of the input byte); the instruction reads
// the row for output bit i from byte 7-i of the qword, with row bit j
// selecting input bit j.
func gfniMatrix(c byte) uint64 {
	var rows [8]byte
	p := c // c * x^j for the current column j
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			if p&(1<<i) != 0 {
				rows[i] |= 1 << j
			}
		}
		p = Mul(p, 2)
	}
	var m uint64
	for i := 0; i < 8; i++ {
		m |= uint64(rows[i]) << (8 * (7 - i))
	}
	return m
}

// simdMin is the slice length below which the SIMD kernels are not
// worth their call overhead.
const simdMin = 64

// MulTableRow returns the 256-byte product row for the coefficient c:
// row[a] == Mul(c, a) for every a. The returned array is shared and
// must not be modified. The full table is built on first call. It is
// the public accessor for per-coefficient rows (e.g. for syndrome
// computation in error-correcting decoders); the slice kernels use the
// table directly.
func MulTableRow(c byte) *[256]byte {
	mulTableOnce.Do(buildMulTable)
	return &mulTable[c]
}

// MulSlice computes dst[i] = c * src[i] for all i. dst and src must have
// the same length; they may alias. The c == 0 and c == 1 fast paths avoid
// table lookups entirely.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		mulTableOnce.Do(buildMulTable)
		i := 0
		if len(src) >= simdMin {
			if useGFNI {
				n := len(src) &^ 63
				mulSliceGFNI(&gfniTable[c], dst[:n], src[:n])
				i = n // residue < 64 bytes goes to the table tail
			} else if useAVX2 {
				n := len(src) &^ 31
				mulSliceAVX2(&nibTable[c], dst[:n], src[:n])
				i = n
			}
		}
		mulSliceTail(c, dst, src, i)
	}
}

// mulSliceTail is the table-row loop of MulSlice from offset i, for
// tails and SIMD-free builds. The product table must already be built
// and c must not be 0 or 1.
func mulSliceTail(c byte, dst, src []byte, i int) {
	row := &mulTable[c]
	for n := len(src) &^ 7; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = row[s[0]]
		d[1] = row[s[1]]
		d[2] = row[s[2]]
		d[3] = row[s[3]]
		d[4] = row[s[4]]
		d[5] = row[s[5]]
		d[6] = row[s[6]]
		d[7] = row[s[7]]
	}
	for ; i < len(src); i++ {
		dst[i] = row[src[i]]
	}
}

// MulAddSlice computes dst[i] ^= c * src[i] for all i: the fused
// multiply-accumulate at the heart of matrix-vector erasure encoding.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
	default:
		mulTableOnce.Do(buildMulTable)
		i := 0
		if len(src) >= simdMin {
			if useGFNI {
				n := len(src) &^ 63
				mulAddSliceGFNI(&gfniTable[c], dst[:n], src[:n])
				i = n // residue < 64 bytes goes to the table tail
			} else if useAVX2 {
				n := len(src) &^ 31
				mulAddSliceAVX2(&nibTable[c], dst[:n], src[:n])
				i = n
			}
		}
		mulAddSliceTail(c, dst, src, i)
	}
}

// mulAddSliceTail is the table-row loop of MulAddSlice from offset i.
// The product table must already be built and c must not be 0 or 1.
func mulAddSliceTail(c byte, dst, src []byte, i int) {
	row := &mulTable[c]
	for n := len(src) &^ 7; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= row[s[0]]
		d[1] ^= row[s[1]]
		d[2] ^= row[s[2]]
		d[3] ^= row[s[3]]
		d[4] ^= row[s[4]]
		d[5] ^= row[s[5]]
		d[6] ^= row[s[6]]
		d[7] ^= row[s[7]]
	}
	for ; i < len(src); i++ {
		dst[i] ^= row[src[i]]
	}
}

// AddSlice computes dst[i] ^= src[i] for all i, eight bytes per XOR.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: AddSlice length mismatch")
	}
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// Dot returns the inner product sum_i a[i]*b[i] in GF(2^8). The slices
// must have equal length.
func Dot(a, b []byte) byte {
	if len(a) != len(b) {
		panic("gf256: Dot length mismatch")
	}
	var acc byte
	for i, x := range a {
		if x != 0 && b[i] != 0 {
			acc ^= expTable[int(logTable[x])+int(logTable[b[i]])]
		}
	}
	return acc
}

// mulSliceScalar is the original log/exp reference kernel, kept for
// equivalence tests and as the baseline the table kernel is benchmarked
// against.
func mulSliceScalar(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		lc := int(logTable[c])
		for i, s := range src {
			if s == 0 {
				dst[i] = 0
			} else {
				dst[i] = expTable[lc+int(logTable[s])]
			}
		}
	}
}

// mulAddSliceScalar is the original log/exp reference for MulAddSlice.
func mulAddSliceScalar(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	lc := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}
