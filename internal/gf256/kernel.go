package gf256

// Table-driven slice kernels.
//
// The scalar field core (gf256.go) multiplies through log/exp lookups:
// two table reads, an integer add, and a zero-operand branch per byte.
// For the erasure-coding inner loop — dst[i] ^= c * src[i] over shards
// of kilobytes to megabytes with a fixed coefficient c — that cost is
// dominated by a full 256x256 product table: one 256-byte row per
// coefficient turns every byte into a single branch-free indexed load.
// The row fits in four cache lines and stays hot for the whole shard.
//
// The table (64 KiB) is built lazily on first use so that programs that
// only ever do scalar arithmetic never pay for it.

import (
	"encoding/binary"
	"sync"
)

var (
	mulTableOnce sync.Once
	mulTable     *[256][256]byte
	// nibTable[c] holds, for the SIMD kernels, the 16 products
	// c*(i) followed by the 16 products c*(i<<4): the two in-register
	// shuffle tables that split a byte multiply over its nibbles.
	nibTable *[256][32]byte
)

func buildMulTable() {
	t := new([256][256]byte)
	for c := 1; c < 256; c++ {
		lc := int(logTable[c])
		row := &t[c]
		for a := 1; a < 256; a++ {
			row[a] = expTable[lc+int(logTable[a])]
		}
	}
	if hasAVX2 {
		nt := new([256][32]byte)
		for c := 1; c < 256; c++ {
			row := &t[c]
			for i := 0; i < 16; i++ {
				nt[c][i] = row[i]
				nt[c][16+i] = row[i<<4]
			}
		}
		nibTable = nt
	}
	mulTable = t
}

// simdMin is the slice length below which the SIMD kernels are not
// worth their call overhead.
const simdMin = 64

// MulTableRow returns the 256-byte product row for the coefficient c:
// row[a] == Mul(c, a) for every a. The returned array is shared and
// must not be modified. The full table is built on first call.
func MulTableRow(c byte) *[256]byte {
	mulTableOnce.Do(buildMulTable)
	return &mulTable[c]
}

// MulSlice computes dst[i] = c * src[i] for all i. dst and src must have
// the same length; they may alias. The c == 0 and c == 1 fast paths avoid
// table lookups entirely.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		row := MulTableRow(c)
		i := 0
		if hasAVX2 && len(src) >= simdMin {
			n := len(src) &^ 31
			mulSliceAVX2(&nibTable[c], dst[:n], src[:n])
			i = n
		}
		for n := len(src) &^ 7; i < n; i += 8 {
			s := src[i : i+8 : i+8]
			d := dst[i : i+8 : i+8]
			d[0] = row[s[0]]
			d[1] = row[s[1]]
			d[2] = row[s[2]]
			d[3] = row[s[3]]
			d[4] = row[s[4]]
			d[5] = row[s[5]]
			d[6] = row[s[6]]
			d[7] = row[s[7]]
		}
		for ; i < len(src); i++ {
			dst[i] = row[src[i]]
		}
	}
}

// MulAddSlice computes dst[i] ^= c * src[i] for all i: the fused
// multiply-accumulate at the heart of matrix-vector erasure encoding.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
	default:
		row := MulTableRow(c)
		i := 0
		if hasAVX2 && len(src) >= simdMin {
			n := len(src) &^ 31
			mulAddSliceAVX2(&nibTable[c], dst[:n], src[:n])
			i = n
		}
		for n := len(src) &^ 7; i < n; i += 8 {
			s := src[i : i+8 : i+8]
			d := dst[i : i+8 : i+8]
			d[0] ^= row[s[0]]
			d[1] ^= row[s[1]]
			d[2] ^= row[s[2]]
			d[3] ^= row[s[3]]
			d[4] ^= row[s[4]]
			d[5] ^= row[s[5]]
			d[6] ^= row[s[6]]
			d[7] ^= row[s[7]]
		}
		for ; i < len(src); i++ {
			dst[i] ^= row[src[i]]
		}
	}
}

// AddSlice computes dst[i] ^= src[i] for all i, eight bytes per XOR.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: AddSlice length mismatch")
	}
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// Dot returns the inner product sum_i a[i]*b[i] in GF(2^8). The slices
// must have equal length.
func Dot(a, b []byte) byte {
	if len(a) != len(b) {
		panic("gf256: Dot length mismatch")
	}
	var acc byte
	for i, x := range a {
		if x != 0 && b[i] != 0 {
			acc ^= expTable[int(logTable[x])+int(logTable[b[i]])]
		}
	}
	return acc
}

// mulSliceScalar is the original log/exp reference kernel, kept for
// equivalence tests and as the baseline the table kernel is benchmarked
// against.
func mulSliceScalar(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		lc := int(logTable[c])
		for i, s := range src {
			if s == 0 {
				dst[i] = 0
			} else {
				dst[i] = expTable[lc+int(logTable[s])]
			}
		}
	}
}

// mulAddSliceScalar is the original log/exp reference for MulAddSlice.
func mulAddSliceScalar(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	lc := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}
