package gf256

// Fused multi-shard kernels.
//
// Erasure coding computes each output shard as a k-term linear
// combination out = sum_j c_j * in_j. Doing that as k MulAddSlice calls
// walks the output shard k times: every pass reloads and restores every
// output byte, so for an [n, k] code the dst traffic alone is
// (n-k) * k * size loads plus as many stores. The fused kernels below
// make one pass over dst: a block of the output stays in registers
// while all k inputs are accumulated into it, so dst is written exactly
// once (and read exactly once for MulAddMulti, not at all for
// MulMulti). Input traffic is unchanged — each input block is read once
// per output — which is why the rs codec additionally tiles byte ranges
// so the k input blocks stay in L2 across all n-k outputs.
//
// Per 64-byte block the memory operations drop from 3k (src load, dst
// load, dst store, per input) to k+2.

// MulMulti computes dst[i] = sum_j coeffs[j] * inputs[j][i]: one fused
// register-resident pass over dst. len(coeffs) must equal len(inputs)
// and every input must have exactly len(dst) bytes. An empty coeffs
// zeroes dst. dst must not overlap any input except exactly (identical
// base and length).
func MulMulti(coeffs []byte, inputs [][]byte, dst []byte) {
	checkMulti(coeffs, inputs, dst)
	if len(dst) == 0 {
		return
	}
	if len(coeffs) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	mulTableOnce.Do(buildMulTable)
	i := 0
	if useGFNI && len(dst) >= 256 {
		n := len(dst) &^ 255
		mulMultiGFNI(gfniTable, coeffs, inputs, dst[:n], 0)
		i = n
	}
	if useAVX2 && len(dst)-i >= 128 {
		n := (len(dst) - i) &^ 127
		mulMultiAVX2(nibTable, coeffs, inputs, dst[i:i+n], i)
		i += n
	}
	mulMultiGeneric(coeffs, inputs, dst, i)
}

// MulAddMulti computes dst[i] ^= sum_j coeffs[j] * inputs[j][i], the
// accumulate form of MulMulti: dst is read once and written once no
// matter how many inputs there are.
func MulAddMulti(coeffs []byte, inputs [][]byte, dst []byte) {
	checkMulti(coeffs, inputs, dst)
	if len(dst) == 0 || len(coeffs) == 0 {
		return
	}
	mulTableOnce.Do(buildMulTable)
	i := 0
	if useGFNI && len(dst) >= 256 {
		n := len(dst) &^ 255
		mulAddMultiGFNI(gfniTable, coeffs, inputs, dst[:n], 0)
		i = n
	}
	if useAVX2 && len(dst)-i >= 128 {
		n := (len(dst) - i) &^ 127
		mulAddMultiAVX2(nibTable, coeffs, inputs, dst[i:i+n], i)
		i += n
	}
	mulAddMultiGeneric(coeffs, inputs, dst, i)
}

func checkMulti(coeffs []byte, inputs [][]byte, dst []byte) {
	if len(coeffs) != len(inputs) {
		panic("gf256: MulMulti coefficient/input count mismatch")
	}
	for _, in := range inputs {
		if len(in) != len(dst) {
			panic("gf256: MulMulti input length mismatch")
		}
	}
}

// multiBlock is the byte-range tile of the table fallback: the dst
// block is re-walked once per input, so it must stay in L1 across all
// of them.
const multiBlock = 8 << 10

// mulMultiGeneric is the table-driven fallback for MulMulti from offset
// lo: per L1-sized block, the first input overwrites and the rest
// accumulate, so dst never round-trips through memory cold.
func mulMultiGeneric(coeffs []byte, inputs [][]byte, dst []byte, lo int) {
	for lo < len(dst) {
		hi := lo + multiBlock
		if hi > len(dst) {
			hi = len(dst)
		}
		d := dst[lo:hi]
		switch c := coeffs[0]; c {
		case 0:
			for i := range d {
				d[i] = 0
			}
		case 1:
			copy(d, inputs[0][lo:hi])
		default:
			mulSliceTail(c, d, inputs[0][lo:hi], 0)
		}
		for j := 1; j < len(coeffs); j++ {
			mulAddBlock(coeffs[j], d, inputs[j][lo:hi])
		}
		lo = hi
	}
}

// mulAddMultiGeneric is the table-driven fallback for MulAddMulti from
// offset lo, tiled the same way.
func mulAddMultiGeneric(coeffs []byte, inputs [][]byte, dst []byte, lo int) {
	for lo < len(dst) {
		hi := lo + multiBlock
		if hi > len(dst) {
			hi = len(dst)
		}
		d := dst[lo:hi]
		for j, c := range coeffs {
			mulAddBlock(c, d, inputs[j][lo:hi])
		}
		lo = hi
	}
}

// mulAddBlock is mulAddSliceTail with the 0/1 coefficient fast paths,
// for use on pre-sliced blocks.
func mulAddBlock(c byte, dst, src []byte) {
	switch c {
	case 0:
	case 1:
		AddSlice(dst, src)
	default:
		mulAddSliceTail(c, dst, src, 0)
	}
}
