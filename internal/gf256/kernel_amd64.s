//go:build amd64 && !purego

#include "textflag.h"

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA, $32

// func x86cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·x86cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mulAddSliceAVX2(tbl *[32]byte, dst, src []byte)
//
// Y0 = low-nibble product table (both lanes)
// Y1 = high-nibble product table (both lanes)
// Y2 = 0x0f byte mask
TEXT ·mulAddSliceAVX2(SB), NOSPLIT, $0-56
	MOVQ tbl+0(FP), AX
	MOVQ dst_base+8(FP), DI
	MOVQ dst_len+16(FP), CX
	MOVQ src_base+32(FP), SI
	SHRQ $5, CX
	JZ   done
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VMOVDQU nibbleMask<>(SB), Y2

loop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3      // low nibbles
	VPAND   Y2, Y4, Y4      // high nibbles
	VPSHUFB Y3, Y0, Y3      // c * low
	VPSHUFB Y4, Y1, Y4      // c * high
	VPXOR   Y3, Y4, Y3      // c * src
	VPXOR   (DI), Y3, Y3    // accumulate into dst
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     loop
	VZEROUPPER

done:
	RET

// func mulSliceAVX2(tbl *[32]byte, dst, src []byte)
TEXT ·mulSliceAVX2(SB), NOSPLIT, $0-56
	MOVQ tbl+0(FP), AX
	MOVQ dst_base+8(FP), DI
	MOVQ dst_len+16(FP), CX
	MOVQ src_base+32(FP), SI
	SHRQ $5, CX
	JZ   done2
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VMOVDQU nibbleMask<>(SB), Y2

loop2:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     loop2
	VZEROUPPER

done2:
	RET
