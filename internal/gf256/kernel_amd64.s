//go:build amd64 && !purego

#include "textflag.h"

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA, $32

// func x86cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·x86cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mulAddSliceAVX2(tbl *[32]byte, dst, src []byte)
//
// Y0 = low-nibble product table (both lanes)
// Y1 = high-nibble product table (both lanes)
// Y2 = 0x0f byte mask
TEXT ·mulAddSliceAVX2(SB), NOSPLIT, $0-56
	MOVQ tbl+0(FP), AX
	MOVQ dst_base+8(FP), DI
	MOVQ dst_len+16(FP), CX
	MOVQ src_base+32(FP), SI
	SHRQ $5, CX
	JZ   done
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VMOVDQU nibbleMask<>(SB), Y2

loop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3      // low nibbles
	VPAND   Y2, Y4, Y4      // high nibbles
	VPSHUFB Y3, Y0, Y3      // c * low
	VPSHUFB Y4, Y1, Y4      // c * high
	VPXOR   Y3, Y4, Y3      // c * src
	VPXOR   (DI), Y3, Y3    // accumulate into dst
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     loop
	VZEROUPPER

done:
	RET

// func mulSliceAVX2(tbl *[32]byte, dst, src []byte)
TEXT ·mulSliceAVX2(SB), NOSPLIT, $0-56
	MOVQ tbl+0(FP), AX
	MOVQ dst_base+8(FP), DI
	MOVQ dst_len+16(FP), CX
	MOVQ src_base+32(FP), SI
	SHRQ $5, CX
	JZ   done2
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VMOVDQU nibbleMask<>(SB), Y2

loop2:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     loop2
	VZEROUPPER

done2:
	RET

// func mulAddSliceGFNI(mat *uint64, dst, src []byte)
//
// 64-byte ZMM blocks: one VGF2P8AFFINEQB applies the coefficient's
// 8x8 GF(2) bit matrix to the whole vector.
TEXT ·mulAddSliceGFNI(SB), NOSPLIT, $0-56
	MOVQ mat+0(FP), AX
	MOVQ dst_base+8(FP), DI
	MOVQ dst_len+16(FP), CX
	MOVQ src_base+32(FP), SI
	SHRQ $6, CX
	JZ   gadone
	VPBROADCASTQ (AX), Z0

galoop:
	VMOVDQU64 (SI), Z1
	VGF2P8AFFINEQB $0, Z0, Z1, Z1
	VPXORQ    (DI), Z1, Z1
	VMOVDQU64 Z1, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	DECQ      CX
	JNZ       galoop
	VZEROUPPER

gadone:
	RET

// func mulSliceGFNI(mat *uint64, dst, src []byte)
TEXT ·mulSliceGFNI(SB), NOSPLIT, $0-56
	MOVQ mat+0(FP), AX
	MOVQ dst_base+8(FP), DI
	MOVQ dst_len+16(FP), CX
	MOVQ src_base+32(FP), SI
	SHRQ $6, CX
	JZ   gmdone
	VPBROADCASTQ (AX), Z0

gmloop:
	VMOVDQU64 (SI), Z1
	VGF2P8AFFINEQB $0, Z0, Z1, Z1
	VMOVDQU64 Z1, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	DECQ      CX
	JNZ       gmloop
	VZEROUPPER

gmdone:
	RET

// Fused multi-shard kernels. Shared register plan:
//
//	R8  table base (nibble tables or GFNI matrices)
//	R9  coeffs base     R11 k = len(coeffs)
//	R10 srcs base (array of 24-byte slice headers; only ptr is read)
//	DI  dst cursor      CX  remaining blocks
//	BX  running source offset (starts at off)
//	R12 j               R13 coeff / table offset
//	DX  srcs[j] cursor  AX  scratch (3*j for the 24-byte stride)
//
// The dst block lives in Y0-Y3 (Z0-Z3 for GFNI) across the whole inner
// loop over inputs: one store (plus one load for the mulAdd variants)
// per block, however many inputs there are.

// func mulMultiAVX2(nib *[256][32]byte, coeffs []byte, srcs [][]byte, dst []byte, off int)
//
// 128-byte blocks; len(dst) must be a nonzero multiple of 128, k >= 1.
TEXT ·mulMultiAVX2(SB), NOSPLIT, $0-88
	MOVQ nib+0(FP), R8
	MOVQ coeffs_base+8(FP), R9
	MOVQ coeffs_len+16(FP), R11
	MOVQ srcs_base+32(FP), R10
	MOVQ dst_base+56(FP), DI
	MOVQ dst_len+64(FP), CX
	MOVQ off+80(FP), BX
	SHRQ $7, CX
	JZ   mm2done
	VMOVDQU nibbleMask<>(SB), Y4

mm2block:
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ  R12, R12

mm2input:
	MOVBQZX (R9)(R12*1), R13
	SHLQ    $5, R13
	VBROADCASTI128 (R8)(R13*1), Y5    // low-nibble products of coeffs[j]
	VBROADCASTI128 16(R8)(R13*1), Y6  // high-nibble products
	LEAQ    (R12)(R12*2), AX
	MOVQ    (R10)(AX*8), DX           // srcs[j] base
	ADDQ    BX, DX
	VMOVDQU (DX), Y7
	VMOVDQU 32(DX), Y8
	VMOVDQU 64(DX), Y9
	VMOVDQU 96(DX), Y10

	VPSRLQ  $4, Y7, Y11
	VPAND   Y4, Y7, Y7
	VPAND   Y4, Y11, Y11
	VPSHUFB Y7, Y5, Y7
	VPSHUFB Y11, Y6, Y11
	VPXOR   Y7, Y0, Y0
	VPXOR   Y11, Y0, Y0

	VPSRLQ  $4, Y8, Y11
	VPAND   Y4, Y8, Y8
	VPAND   Y4, Y11, Y11
	VPSHUFB Y8, Y5, Y8
	VPSHUFB Y11, Y6, Y11
	VPXOR   Y8, Y1, Y1
	VPXOR   Y11, Y1, Y1

	VPSRLQ  $4, Y9, Y11
	VPAND   Y4, Y9, Y9
	VPAND   Y4, Y11, Y11
	VPSHUFB Y9, Y5, Y9
	VPSHUFB Y11, Y6, Y11
	VPXOR   Y9, Y2, Y2
	VPXOR   Y11, Y2, Y2

	VPSRLQ  $4, Y10, Y11
	VPAND   Y4, Y10, Y10
	VPAND   Y4, Y11, Y11
	VPSHUFB Y10, Y5, Y10
	VPSHUFB Y11, Y6, Y11
	VPXOR   Y10, Y3, Y3
	VPXOR   Y11, Y3, Y3

	INCQ R12
	CMPQ R12, R11
	JB   mm2input

	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, BX
	DECQ    CX
	JNZ     mm2block
	VZEROUPPER

mm2done:
	RET

// func mulAddMultiAVX2(nib *[256][32]byte, coeffs []byte, srcs [][]byte, dst []byte, off int)
//
// As mulMultiAVX2, but XORs the accumulated block into dst.
TEXT ·mulAddMultiAVX2(SB), NOSPLIT, $0-88
	MOVQ nib+0(FP), R8
	MOVQ coeffs_base+8(FP), R9
	MOVQ coeffs_len+16(FP), R11
	MOVQ srcs_base+32(FP), R10
	MOVQ dst_base+56(FP), DI
	MOVQ dst_len+64(FP), CX
	MOVQ off+80(FP), BX
	SHRQ $7, CX
	JZ   ma2done
	VMOVDQU nibbleMask<>(SB), Y4

ma2block:
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ  R12, R12

ma2input:
	MOVBQZX (R9)(R12*1), R13
	SHLQ    $5, R13
	VBROADCASTI128 (R8)(R13*1), Y5
	VBROADCASTI128 16(R8)(R13*1), Y6
	LEAQ    (R12)(R12*2), AX
	MOVQ    (R10)(AX*8), DX
	ADDQ    BX, DX
	VMOVDQU (DX), Y7
	VMOVDQU 32(DX), Y8
	VMOVDQU 64(DX), Y9
	VMOVDQU 96(DX), Y10

	VPSRLQ  $4, Y7, Y11
	VPAND   Y4, Y7, Y7
	VPAND   Y4, Y11, Y11
	VPSHUFB Y7, Y5, Y7
	VPSHUFB Y11, Y6, Y11
	VPXOR   Y7, Y0, Y0
	VPXOR   Y11, Y0, Y0

	VPSRLQ  $4, Y8, Y11
	VPAND   Y4, Y8, Y8
	VPAND   Y4, Y11, Y11
	VPSHUFB Y8, Y5, Y8
	VPSHUFB Y11, Y6, Y11
	VPXOR   Y8, Y1, Y1
	VPXOR   Y11, Y1, Y1

	VPSRLQ  $4, Y9, Y11
	VPAND   Y4, Y9, Y9
	VPAND   Y4, Y11, Y11
	VPSHUFB Y9, Y5, Y9
	VPSHUFB Y11, Y6, Y11
	VPXOR   Y9, Y2, Y2
	VPXOR   Y11, Y2, Y2

	VPSRLQ  $4, Y10, Y11
	VPAND   Y4, Y10, Y10
	VPAND   Y4, Y11, Y11
	VPSHUFB Y10, Y5, Y10
	VPSHUFB Y11, Y6, Y11
	VPXOR   Y10, Y3, Y3
	VPXOR   Y11, Y3, Y3

	INCQ R12
	CMPQ R12, R11
	JB   ma2input

	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VPXOR   64(DI), Y2, Y2
	VPXOR   96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, BX
	DECQ    CX
	JNZ     ma2block
	VZEROUPPER

ma2done:
	RET

// func mulMultiGFNI(mats *[256]uint64, coeffs []byte, srcs [][]byte, dst []byte, off int)
//
// 256-byte blocks; len(dst) must be a nonzero multiple of 256, k >= 1.
// Each input contributes one VGF2P8AFFINEQB per 64 bytes: the 8x8
// GF(2) bit matrix of "multiply by coeffs[j]" is broadcast from
// gfniTable and applied to the whole ZMM vector at once.
TEXT ·mulMultiGFNI(SB), NOSPLIT, $0-88
	MOVQ mats+0(FP), R8
	MOVQ coeffs_base+8(FP), R9
	MOVQ coeffs_len+16(FP), R11
	MOVQ srcs_base+32(FP), R10
	MOVQ dst_base+56(FP), DI
	MOVQ dst_len+64(FP), CX
	MOVQ off+80(FP), BX
	SHRQ $8, CX
	JZ   mmgdone

mmgblock:
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	XORQ   R12, R12

mmginput:
	MOVBQZX (R9)(R12*1), R13
	VPBROADCASTQ (R8)(R13*8), Z4      // matrix of coeffs[j], all lanes
	LEAQ    (R12)(R12*2), AX
	MOVQ    (R10)(AX*8), DX
	ADDQ    BX, DX
	VMOVDQU64 (DX), Z5
	VMOVDQU64 64(DX), Z6
	VMOVDQU64 128(DX), Z7
	VMOVDQU64 192(DX), Z8
	VGF2P8AFFINEQB $0, Z4, Z5, Z5
	VGF2P8AFFINEQB $0, Z4, Z6, Z6
	VGF2P8AFFINEQB $0, Z4, Z7, Z7
	VGF2P8AFFINEQB $0, Z4, Z8, Z8
	VPXORQ  Z5, Z0, Z0
	VPXORQ  Z6, Z1, Z1
	VPXORQ  Z7, Z2, Z2
	VPXORQ  Z8, Z3, Z3
	INCQ    R12
	CMPQ    R12, R11
	JB      mmginput

	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	VMOVDQU64 Z2, 128(DI)
	VMOVDQU64 Z3, 192(DI)
	ADDQ    $256, DI
	ADDQ    $256, BX
	DECQ    CX
	JNZ     mmgblock
	VZEROUPPER

mmgdone:
	RET

// func mulAddMultiGFNI(mats *[256]uint64, coeffs []byte, srcs [][]byte, dst []byte, off int)
//
// As mulMultiGFNI, but XORs the accumulated block into dst.
TEXT ·mulAddMultiGFNI(SB), NOSPLIT, $0-88
	MOVQ mats+0(FP), R8
	MOVQ coeffs_base+8(FP), R9
	MOVQ coeffs_len+16(FP), R11
	MOVQ srcs_base+32(FP), R10
	MOVQ dst_base+56(FP), DI
	MOVQ dst_len+64(FP), CX
	MOVQ off+80(FP), BX
	SHRQ $8, CX
	JZ   magdone

magblock:
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	XORQ   R12, R12

maginput:
	MOVBQZX (R9)(R12*1), R13
	VPBROADCASTQ (R8)(R13*8), Z4
	LEAQ    (R12)(R12*2), AX
	MOVQ    (R10)(AX*8), DX
	ADDQ    BX, DX
	VMOVDQU64 (DX), Z5
	VMOVDQU64 64(DX), Z6
	VMOVDQU64 128(DX), Z7
	VMOVDQU64 192(DX), Z8
	VGF2P8AFFINEQB $0, Z4, Z5, Z5
	VGF2P8AFFINEQB $0, Z4, Z6, Z6
	VGF2P8AFFINEQB $0, Z4, Z7, Z7
	VGF2P8AFFINEQB $0, Z4, Z8, Z8
	VPXORQ  Z5, Z0, Z0
	VPXORQ  Z6, Z1, Z1
	VPXORQ  Z7, Z2, Z2
	VPXORQ  Z8, Z3, Z3
	INCQ    R12
	CMPQ    R12, R11
	JB      maginput

	VPXORQ  (DI), Z0, Z0
	VPXORQ  64(DI), Z1, Z1
	VPXORQ  128(DI), Z2, Z2
	VPXORQ  192(DI), Z3, Z3
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	VMOVDQU64 Z2, 128(DI)
	VMOVDQU64 Z3, 192(DI)
	ADDQ    $256, DI
	ADDQ    $256, BX
	DECQ    CX
	JNZ     magblock
	VZEROUPPER

magdone:
	RET
