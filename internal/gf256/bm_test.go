package gf256

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// powerSumSyndromes computes S_t = sum_i mults[pos[i]]*points[pos[i]]^t
// * mags[i] for t = 0..d-1: the syndrome sequence an errata vector with
// the given positions and magnitudes produces. Decoding depends on the
// received word only through these, so the tests can work on errata
// vectors directly without materializing a code.
func powerSumSyndromes(d int, points, mults []byte, pos []int, mags []byte) []byte {
	s := make([]byte, d)
	for t := 0; t < d; t++ {
		for i, p := range pos {
			s[t] ^= Mul(Mul(mults[p], Pow(points[p], t)), mags[i])
		}
	}
	return s
}

func grsPoints(n int) (points, mults []byte) {
	points = make([]byte, n)
	mults = make([]byte, n)
	for i := range points {
		points[i] = Exp(i)
		mults[i] = Exp(7 * i) // any nonzero multipliers work
	}
	return points, mults
}

func TestBerlekampMasseyLocatesPowerSums(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, _ := grsPoints(30)
	mults := make([]byte, len(points))
	for i := range mults {
		mults[i] = 1
	}
	for trial := 0; trial < 500; trial++ {
		d := 2 + rng.Intn(10)
		nerr := rng.Intn(d/2 + 1)
		perm := rng.Perm(len(points))[:nerr]
		xs := make([]byte, 0, nerr)
		for _, p := range perm {
			xs = append(xs, points[p])
		}
		want := ErrataLocator(xs)
		mags := make([]byte, nerr)
		for i := range mags {
			mags[i] = byte(1 + rng.Intn(255))
		}
		s := powerSumSyndromes(d, points, mults, perm, mags)
		got := BerlekampMassey(s)
		// The minimal LFSR of the power sums is the locator up to
		// normalization; both have constant term 1, so compare directly.
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (d=%d, errs=%v): BM = %v, want locator %v", trial, d, perm, got, want)
		}
	}
}

func TestBerlekampMasseyZeroSequence(t *testing.T) {
	if got := BerlekampMassey(make([]byte, 8)); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("BM of zero sequence = %v, want [1]", got)
	}
	if got := BerlekampMassey(nil); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("BM of empty sequence = %v, want [1]", got)
	}
}

func TestErrataLocatorRoots(t *testing.T) {
	xs := []byte{Exp(3), Exp(10), Exp(200)}
	loc := ErrataLocator(xs)
	if deg := PolyDegree(loc); deg != len(xs) {
		t.Fatalf("locator degree %d, want %d", deg, len(xs))
	}
	for _, x := range xs {
		if v := PolyEval(loc, Inv(x)); v != 0 {
			t.Fatalf("locator(1/%#02x) = %#02x, want 0", x, v)
		}
	}
	if v := PolyEval(loc, Inv(Exp(5))); v == 0 {
		t.Fatal("locator vanishes at a non-root")
	}
	if got := ErrataLocator(nil); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("empty locator = %v, want [1]", got)
	}
}

// TestErasureModifiedSyndromesMatchesPolyMul checks the direct
// convolution against the definition Xi = Gamma*S mod x^d, tail from
// coefficient f on.
func TestErasureModifiedSyndromesMatchesPolyMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(12)
		f := rng.Intn(d + 1)
		s := make([]byte, d)
		rng.Read(s)
		xs := make([]byte, f)
		for i := range xs {
			xs[i] = byte(1 + rng.Intn(255))
		}
		gamma := ErrataLocator(xs)
		got := ErasureModifiedSyndromes(nil, s, gamma)
		full := PolyMul(gamma, s)
		want := make([]byte, d)
		copy(want, full)
		if !bytes.Equal(got, want[f:]) {
			t.Fatalf("trial %d: modified syndromes %v, want %v", trial, got, want[f:])
		}
	}
}

// TestDecodeErrataRandom sweeps every (errors, erasures) split within
// capacity for a range of code shapes and checks exact recovery of the
// errata positions and magnitudes from the syndromes alone.
func TestDecodeErrataRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 9, 14, 40} {
		points, mults := grsPoints(n)
		for d := 0; d <= 6 && d < n; d++ {
			for f := 0; f <= d; f++ {
				maxE := (d - f) / 2
				for e := 0; e <= maxE; e++ {
					for trial := 0; trial < 20; trial++ {
						perm := rng.Perm(n)
						erasures := append([]int(nil), perm[:f]...)
						errPos := perm[f : f+e]
						pos := append(append([]int(nil), erasures...), errPos...)
						mags := make([]byte, len(pos))
						for i := range mags {
							if i < f {
								mags[i] = byte(rng.Intn(256)) // erasure value may be zero
							} else {
								mags[i] = byte(1 + rng.Intn(255)) // an error must change the symbol
							}
						}
						synd := powerSumSyndromes(d, points, mults, pos, mags)
						gotPos, gotMags, err := DecodeErrata(synd, points, mults, erasures)
						if err != nil {
							t.Fatalf("n=%d d=%d f=%d e=%d: DecodeErrata: %v", n, d, f, e, err)
						}
						want := map[int]byte{}
						for i, p := range pos {
							want[p] = mags[i]
						}
						if len(gotPos) != len(pos) {
							t.Fatalf("n=%d d=%d f=%d e=%d: got %d errata %v, want %d", n, d, f, e, len(gotPos), gotPos, len(pos))
						}
						for i, p := range gotPos {
							if i > 0 && gotPos[i-1] >= p {
								t.Fatalf("positions not ascending: %v", gotPos)
							}
							if gotMags[i] != want[p] {
								t.Fatalf("n=%d d=%d f=%d e=%d: magnitude at %d = %#02x, want %#02x", n, d, f, e, p, gotMags[i], want[p])
							}
						}
					}
				}
			}
		}
	}
}

func TestDecodeErrataErrors(t *testing.T) {
	points, mults := grsPoints(10)
	if _, _, err := DecodeErrata(make([]byte, 2), points, mults, []int{0, 1, 2}); !errors.Is(err, ErrErrataOverflow) {
		t.Fatalf("more erasures than syndromes: err = %v, want ErrErrataOverflow", err)
	}
	if _, _, err := DecodeErrata(make([]byte, 4), points, mults, []int{3, 3}); err == nil {
		t.Fatal("duplicate erasure positions must be rejected")
	}
	if _, _, err := DecodeErrata(make([]byte, 4), points, mults, []int{11}); err == nil {
		t.Fatal("out-of-range erasure position must be rejected")
	}
	// Beyond-capacity errors must never succeed silently as long as the
	// locator cannot be completed: 3 errors against d=4 syndromes has no
	// consistent degree<=2 locator for generic magnitudes. Assert no
	// panic and that any failure is ErrErrataOverflow.
	rng := rand.New(rand.NewSource(4))
	failures := 0
	for trial := 0; trial < 100; trial++ {
		pos := rng.Perm(10)[:3]
		mags := []byte{byte(1 + rng.Intn(255)), byte(1 + rng.Intn(255)), byte(1 + rng.Intn(255))}
		synd := powerSumSyndromes(4, points, mults, pos, mags)
		if _, _, err := DecodeErrata(synd, points, mults, nil); err != nil {
			if !errors.Is(err, ErrErrataOverflow) {
				t.Fatalf("beyond-capacity failure has wrong class: %v", err)
			}
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("100 beyond-capacity trials all decoded: overflow detection is not working")
	}
}

func TestForneySingleError(t *testing.T) {
	points, mults := grsPoints(8)
	p, mag := 5, byte(0x7f)
	synd := powerSumSyndromes(4, points, mults, []int{p}, []byte{mag})
	psi := ErrataLocator([]byte{points[p]})
	omega := ErrorEvaluator(synd, psi, 4)
	got, err := ForneyMagnitude(omega, psi, points[p], mults[p])
	if err != nil || got != mag {
		t.Fatalf("Forney = (%#02x, %v), want (%#02x, nil)", got, err, mag)
	}
}
