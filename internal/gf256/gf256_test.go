package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53,0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
	if Sub(0x53, 0xCA) != Add(0x53, 0xCA) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestMulTableSmall(t *testing.T) {
	// Hand-checked products in GF(2^8)/0x11D.
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 7, 0},
		{1, 1, 1},
		{1, 0xFF, 0xFF},
		{2, 2, 4},
		{2, 0x80, 0x1D}, // 2*x^7 = x^8 = poly reduction
		{0x53, 0xCA, 0x8F}, // validated against the schoolbook reference below
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulAgainstSchoolbook(t *testing.T) {
	// Carry-less multiply then reduce by Poly: the definitional product.
	ref := func(a, b byte) byte {
		var p uint16
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				p ^= uint16(a) << i
			}
		}
		for d := 15; d >= 8; d-- {
			if p&(1<<d) != 0 {
				p ^= uint16(Poly) << (d - 8)
			}
		}
		return byte(p)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), ref(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	distrib := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(distrib, nil); err != nil {
		t.Error("distributivity:", err)
	}
}

func TestInverses(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Mul(%#x, Inv) = %#x, want 1", a, Mul(byte(a), inv))
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1,%#x) != Inv(%#x)", a, a)
		}
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x, 0) must panic")
		}
	}()
	Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) must panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%#x)) != %#x", a, a)
		}
	}
	for e := -600; e < 600; e++ {
		if Exp(e) != Exp(e+255) {
			t.Fatalf("Exp not periodic at %d", e)
		}
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255 (repeat at %d)", i)
		}
		seen[x] = true
		x = Mul(x, Generator)
	}
	if x != 1 {
		t.Fatal("generator^255 != 1")
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		acc := byte(1)
		for e := 0; e < 10; e++ {
			if got := Pow(byte(a), e); got != acc {
				t.Fatalf("Pow(%#x,%d) = %#x, want %#x", a, e, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
	if Pow(0, 0) != 1 {
		t.Fatal("0^0 must be 1")
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 0xFF, 0x80}
	for _, c := range []byte{0, 1, 2, 0x53, 0xFF} {
		dst := make([]byte, len(src))
		MulSlice(c, dst, src)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice c=%#x i=%d: got %#x want %#x", c, i, dst[i], Mul(c, src[i]))
			}
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	f := func(c byte, src []byte) bool {
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i * 37)
		}
		want := make([]byte, len(src))
		copy(want, dst)
		for i := range src {
			want[i] ^= Mul(c, src[i])
		}
		MulAddSlice(c, dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSlice(t *testing.T) {
	dst := []byte{1, 2, 3}
	AddSlice(dst, []byte{1, 2, 3})
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("dst[%d] = %d, want 0", i, v)
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulAddSlice": func() { MulAddSlice(2, make([]byte, 3), make([]byte, 4)) },
		"AddSlice":    func() { AddSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths must panic", name)
				}
			}()
			fn()
		}()
	}
}
