//go:build !amd64 || purego

package gf256

// Portable build: no SIMD kernels; the table-driven path in kernel.go
// is used for all slice sizes.

const hasAVX2 = false

func mulAddSliceAVX2(tbl *[32]byte, dst, src []byte) {
	panic("gf256: SIMD kernel called on a build without it")
}

func mulSliceAVX2(tbl *[32]byte, dst, src []byte) {
	panic("gf256: SIMD kernel called on a build without it")
}
