//go:build !amd64 || purego

package gf256

// Portable build: no SIMD kernels; the table-driven paths in kernel.go
// and kernel_multi.go are used for all slice sizes.

const (
	hasAVX2 = false
	hasGFNI = false
)

func mulAddSliceAVX2(tbl *[32]byte, dst, src []byte) {
	panic("gf256: SIMD kernel called on a build without it")
}

func mulSliceAVX2(tbl *[32]byte, dst, src []byte) {
	panic("gf256: SIMD kernel called on a build without it")
}

func mulAddSliceGFNI(mat *uint64, dst, src []byte) {
	panic("gf256: SIMD kernel called on a build without it")
}

func mulSliceGFNI(mat *uint64, dst, src []byte) {
	panic("gf256: SIMD kernel called on a build without it")
}

func mulMultiAVX2(nib *[256][32]byte, coeffs []byte, srcs [][]byte, dst []byte, off int) {
	panic("gf256: SIMD kernel called on a build without it")
}

func mulAddMultiAVX2(nib *[256][32]byte, coeffs []byte, srcs [][]byte, dst []byte, off int) {
	panic("gf256: SIMD kernel called on a build without it")
}

func mulMultiGFNI(mats *[256]uint64, coeffs []byte, srcs [][]byte, dst []byte, off int) {
	panic("gf256: SIMD kernel called on a build without it")
}

func mulAddMultiGFNI(mats *[256]uint64, coeffs []byte, srcs [][]byte, dst []byte, off int) {
	panic("gf256: SIMD kernel called on a build without it")
}
