package gf256

// Polynomial helpers over GF(2^8). A polynomial is a []byte of
// coefficients in ascending degree order: p[i] is the coefficient of x^i.
// These are the building blocks of the Reed-Solomon generator polynomial,
// syndrome computation and the Berlekamp-Massey / Forney decoders.

// PolyDegree returns the degree of p, ignoring trailing zero
// coefficients. The zero polynomial has degree -1.
func PolyDegree(p []byte) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// PolyTrim returns p with trailing zero coefficients removed.
func PolyTrim(p []byte) []byte {
	return p[:PolyDegree(p)+1]
}

// PolyAdd returns a + b.
func PolyAdd(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out, a)
	for i, c := range b {
		out[i] ^= c
	}
	return out
}

// PolyMul returns a * b. The zero polynomial is represented by an empty
// (or all-zero) slice.
func PolyMul(a, b []byte) []byte {
	da, db := PolyDegree(a), PolyDegree(b)
	if da < 0 || db < 0 {
		return nil
	}
	out := make([]byte, da+db+1)
	for i := 0; i <= da; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j <= db; j++ {
			out[i+j] ^= Mul(a[i], b[j])
		}
	}
	return out
}

// PolyScale returns c * p.
func PolyScale(c byte, p []byte) []byte {
	out := make([]byte, len(p))
	MulSlice(c, out, p)
	return out
}

// PolyEval evaluates p at the point x using Horner's rule.
func PolyEval(p []byte, x byte) byte {
	var acc byte
	for i := len(p) - 1; i >= 0; i-- {
		acc = Mul(acc, x) ^ p[i]
	}
	return acc
}

// PolyEvalDeriv evaluates the formal derivative p' at x. In
// characteristic 2 the derivative keeps only odd-degree terms:
// p'(x) = sum over odd i of p[i] * x^(i-1).
func PolyEvalDeriv(p []byte, x byte) byte {
	var acc byte
	x2 := Mul(x, x)
	var xp byte = 1 // x^(i-1) for i = 1, stepping i by 2
	for i := 1; i < len(p); i += 2 {
		acc ^= Mul(p[i], xp)
		xp = Mul(xp, x2)
	}
	return acc
}

// PolyDivMod returns the quotient and remainder of a / b.
// It panics if b is the zero polynomial.
func PolyDivMod(a, b []byte) (q, r []byte) {
	db := PolyDegree(b)
	if db < 0 {
		panic("gf256: polynomial division by zero")
	}
	r = make([]byte, len(a))
	copy(r, a)
	da := PolyDegree(r)
	if da < db {
		return nil, PolyTrim(r)
	}
	q = make([]byte, da-db+1)
	invLead := Inv(b[db])
	for d := da; d >= db; d-- {
		if r[d] == 0 {
			continue
		}
		c := Mul(r[d], invLead)
		q[d-db] = c
		for j := 0; j <= db; j++ {
			r[d-db+j] ^= Mul(c, b[j])
		}
	}
	return q, PolyTrim(r)
}

// PolyMod returns a mod b.
func PolyMod(a, b []byte) []byte {
	_, r := PolyDivMod(a, b)
	return r
}

// PolyShift returns p * x^n (coefficients shifted up by n).
func PolyShift(p []byte, n int) []byte {
	if PolyDegree(p) < 0 {
		return nil
	}
	out := make([]byte, len(p)+n)
	copy(out[n:], p)
	return out
}
