package gf256

// Syndrome-based errata decoding: Berlekamp-Massey, Chien search and
// Forney's formula over GF(2^8).
//
// The algebra targets generalized Reed-Solomon (GRS) codes in
// evaluation-point view. Codeword position i carries the locator X_i (a
// distinct nonzero field element) and a nonzero column multiplier u_i,
// and the d parity checks are the weighted power sums
//
//	S_t = sum_i u_i * X_i^t * r_i,   t = 0 .. d-1,
//
// which vanish exactly on codewords. An errata vector eps (errors at
// unknown positions, erasures at known ones) therefore shows up as
//
//	S_t = sum_{i in errata} (u_i * eps_i) * X_i^t,
//
// a power-sum sequence whose minimal LFSR — found by Berlekamp-Massey —
// is the error locator Lambda(x) = prod (1 + X_i x). Known erasures are
// folded out first: with Gamma the erasure locator, the modified
// syndromes Xi = Gamma*S mod x^d become, from coefficient f on, a pure
// power-sum sequence of the remaining unknown errors (see
// ErasureModifiedSyndromes), so plain BM on Xi[f:] finds up to
// floor((d-f)/2) of them. Chien search turns Lambda's roots back into
// positions, and Forney's formula evaluates the magnitudes from the
// error evaluator Omega = S*Psi mod x^d and the formal derivative of
// the combined locator Psi = Lambda*Gamma.
//
// Everything here works on one codeword column (one byte per position).
// The rs package vectorizes the expensive parts across whole shards
// with the fused slice kernels and uses these routines only to discover
// the error support; DecodeErrata is the self-contained reference
// decoder the vectorized path is tested against.

import (
	"errors"
	"fmt"
	"slices"
)

// ErrErrataOverflow is returned when a syndrome sequence cannot be
// explained by an errata pattern within the decoder's capacity
// (2*errors + erasures <= number of syndromes).
var ErrErrataOverflow = errors.New("gf256: errata exceed decoding capacity")

// maxSyndromes bounds the syndrome sequences the scratch-backed decoder
// accepts: codes over GF(2^8) have at most 255 evaluation points, so
// never more than 255 parity checks.
const maxSyndromes = 255

// BM holds the fixed-size working state of Berlekamp-Massey so repeated
// runs (one per corrupt codeword column) are allocation-free. The zero
// value is ready to use. A BM must not be used concurrently.
type BM struct {
	lambda, prev, tmp [maxSyndromes + 1]byte
}

// Run synthesizes the minimal LFSR for the sequence s: the lowest-degree
// polynomial Lambda with Lambda[0] = 1 such that
//
//	sum_{i=0..deg} Lambda[i] * s[j-i] = 0   for deg <= j < len(s).
//
// For a power-sum sequence s_t = sum_i c_i * X_i^t with distinct X_i,
// nonzero c_i and 2*len({X_i}) <= len(s), the result is exactly the
// locator prod_i (1 + X_i x). The returned slice aliases the receiver's
// scratch and is valid until the next Run. len(s) must be at most 255.
func (bm *BM) Run(s []byte) []byte {
	if len(s) > maxSyndromes {
		panic(fmt.Sprintf("gf256: BM sequence length %d > %d", len(s), maxSyndromes))
	}
	lambda := bm.lambda[:1]
	lambda[0] = 1
	prev := bm.prev[:1] // the last Lambda before a length change
	prev[0] = 1
	degL := 0   // current LFSR length L
	gap := 1    // iterations since prev was saved (the x^gap shift)
	last := byte(1) // the discrepancy prev was saved at
	for r := 0; r < len(s); r++ {
		// Discrepancy: how far the current LFSR is from predicting s[r].
		d := s[r]
		for i := 1; i < len(lambda) && i <= r; i++ {
			d ^= Mul(lambda[i], s[r-i])
		}
		if d == 0 {
			gap++
			continue
		}
		c := Div(d, last)
		if 2*degL <= r {
			// Length change: save the pre-update Lambda as the new prev.
			t := bm.tmp[:len(lambda)]
			copy(t, lambda)
			lambda = addShifted(bm.lambda[:0], lambda, c, prev, gap)
			prev = bm.prev[:len(t)]
			copy(prev, t)
			degL = r + 1 - degL
			last = d
			gap = 1
		} else {
			lambda = addShifted(bm.lambda[:0], lambda, c, prev, gap)
			gap++
		}
	}
	if len(lambda) > degL+1 {
		lambda = lambda[:degL+1]
	}
	return PolyTrim(lambda)
}

// addShifted returns a + c*x^shift*b in dst's backing array. dst's
// array may be a's (the update is in place there).
func addShifted(dst, a []byte, c byte, b []byte, shift int) []byte {
	n := len(a)
	if m := len(b) + shift; m > n {
		n = m
	}
	dst = dst[:n]
	copy(dst, a)
	for i := len(a); i < n; i++ {
		dst[i] = 0
	}
	for i, bv := range b {
		dst[i+shift] ^= Mul(c, bv)
	}
	return dst
}

// BerlekampMassey is the allocating convenience form of (*BM).Run: it
// returns the minimal LFSR connection polynomial of s in a fresh slice.
func BerlekampMassey(s []byte) []byte {
	var bm BM
	return append([]byte(nil), bm.Run(s)...)
}

// ErrataLocatorInto appends to dst[:0] the locator polynomial
// prod_i (1 + xs[i]*x), whose roots are the inverses of the xs. An
// empty xs yields the constant 1. The xs must be nonzero and distinct
// for the result to be a valid locator; this is not checked.
func ErrataLocatorInto(dst []byte, xs []byte) []byte {
	dst = append(dst[:0], 1)
	for _, x := range xs {
		dst = append(dst, 0)
		// Multiply by (1 + x*t) in place, highest coefficient first.
		for i := len(dst) - 1; i >= 1; i-- {
			dst[i] ^= Mul(x, dst[i-1])
		}
	}
	return dst
}

// ErrataLocator is the allocating form of ErrataLocatorInto.
func ErrataLocator(xs []byte) []byte {
	return ErrataLocatorInto(make([]byte, 0, len(xs)+1), xs)
}

// ErasureModifiedSyndromes appends to dst[:0] the tail of the
// erasure-modified syndromes: with Gamma the degree-f erasure locator
// and Xi = Gamma*S mod x^d, it returns Xi[f:].
//
// Why the tail: S_t = sum u_i*eps_i*X_i^t over erasures and errors, so
// Xi picks up Gamma(x)/(1 + X_i x) terms. For an erasure, Gamma
// contains the factor (1 + X_i x) and the term collapses to a
// polynomial of degree < f; for an error i it contributes
// gamma_i * X_i^(t-f) to coefficient t >= f, with gamma_i =
// X_i^f * Gamma(1/X_i) != 0. So Xi[f:] is a pure power-sum sequence of
// the unknown errors alone — exactly what (*BM).Run expects — with
// capacity floor((d-f)/2).
func ErasureModifiedSyndromes(dst, s, gamma []byte) []byte {
	f := len(gamma) - 1
	if f < 0 {
		panic("gf256: empty erasure locator (want the constant polynomial 1)")
	}
	dst = dst[:0]
	for t := f; t < len(s); t++ {
		var acc byte
		for j := 0; j <= f; j++ {
			acc ^= Mul(gamma[j], s[t-j])
		}
		dst = append(dst, acc)
	}
	return dst
}

// ChienSearchInto appends to out[:0] every index i for which points[i]
// is a root locator of lambda, i.e. lambda(1/points[i]) == 0. All
// points must be nonzero.
func ChienSearchInto(out []int, lambda, points []byte) []int {
	out = out[:0]
	for i, x := range points {
		if PolyEval(lambda, Inv(x)) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// ChienSearch is the allocating form of ChienSearchInto.
func ChienSearch(lambda, points []byte) []int {
	return ChienSearchInto(nil, lambda, points)
}

// ErrorEvaluator returns Omega = s*psi mod x^d: the error evaluator
// polynomial of Forney's formula, for syndromes s (as a polynomial of
// degree < d) and the combined errata locator psi.
func ErrorEvaluator(s, psi []byte, d int) []byte {
	out := make([]byte, d)
	for i, pv := range psi {
		if pv == 0 || i >= d {
			continue
		}
		for j := 0; i+j < d && j < len(s); j++ {
			out[i+j] ^= Mul(pv, s[j])
		}
	}
	return PolyTrim(out)
}

// ForneyMagnitude evaluates one errata magnitude by Forney's formula:
// for locator X and column multiplier u of the position,
//
//	eps = X * Omega(1/X) / (u * Psi'(1/X)),
//
// where Psi is the combined errata locator and Omega = S*Psi mod x^d.
// It returns ErrErrataOverflow when the derivative vanishes at the
// root, which means psi was not a valid locator for X.
func ForneyMagnitude(omega, psi []byte, x, u byte) (byte, error) {
	xin := Inv(x)
	den := Mul(u, PolyEvalDeriv(psi, xin))
	if den == 0 {
		return 0, fmt.Errorf("%w: locator derivative vanishes at position locator %#02x", ErrErrataOverflow, x)
	}
	return Div(Mul(x, PolyEval(omega, xin)), den), nil
}

// DecodeErrata decodes the errata of one GRS codeword column. Given the
// d syndromes synd (S_t = sum_i mults[i]*points[i]^t * r_i), the
// per-position locators and column multipliers, and the positions of
// known erasures, it locates up to floor((d-f)/2) unknown errors and
// returns the combined errata: ascending positions and, aligned with
// them, the magnitudes to XOR into the received symbols (for an erased
// position received as 0 the magnitude is the codeword symbol itself).
//
// It is the self-contained single-column reference decoder; the rs
// package's shard-level DecodeErrors is checked against it.
func DecodeErrata(synd, points, mults []byte, erasures []int) (positions []int, magnitudes []byte, err error) {
	d := len(synd)
	f := len(erasures)
	if f > d {
		return nil, nil, fmt.Errorf("%w: %d erasures > %d syndromes", ErrErrataOverflow, f, d)
	}
	inErasure := make(map[int]bool, f)
	exs := make([]byte, f)
	for i, p := range erasures {
		if p < 0 || p >= len(points) {
			return nil, nil, fmt.Errorf("gf256: erasure position %d out of range [0, %d)", p, len(points))
		}
		if inErasure[p] {
			return nil, nil, fmt.Errorf("gf256: duplicate erasure position %d", p)
		}
		inErasure[p] = true
		exs[i] = points[p]
	}
	gamma := ErrataLocator(exs)
	var bm BM
	lambda := bm.Run(ErasureModifiedSyndromes(nil, synd, gamma))
	nu := PolyDegree(lambda)
	if 2*nu > d-f {
		return nil, nil, fmt.Errorf("%w: locator degree %d with %d erasures, %d syndromes", ErrErrataOverflow, nu, f, d)
	}
	roots := ChienSearch(lambda, points)
	if len(roots) != nu {
		return nil, nil, fmt.Errorf("%w: locator degree %d has %d roots among the code positions", ErrErrataOverflow, nu, len(roots))
	}
	for _, p := range roots {
		if inErasure[p] {
			return nil, nil, fmt.Errorf("%w: error located at already-erased position %d", ErrErrataOverflow, p)
		}
	}
	positions = append(positions, erasures...)
	positions = append(positions, roots...)
	slices.Sort(positions)

	psi := PolyMul(lambda, gamma)
	if psi == nil {
		psi = []byte{1} // both factors constant 1: no errata
	}
	omega := ErrorEvaluator(synd, psi, d)
	magnitudes = make([]byte, len(positions))
	for i, p := range positions {
		magnitudes[i], err = ForneyMagnitude(omega, psi, points[p], mults[p])
		if err != nil {
			return nil, nil, err
		}
	}
	return positions, magnitudes, nil
}
