package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// mulAddMultiSeed is the ground-truth reference for the fused kernels:
// a loop of seed scalar log/exp multiply-accumulates.
func mulAddMultiSeed(coeffs []byte, inputs [][]byte, dst []byte) {
	for j, c := range coeffs {
		mulAddSliceScalar(c, dst, inputs[j])
	}
}

// multiTestLengths exercises every dispatch boundary: below simdMin,
// around the AVX2 pair width (32), the AVX2 multi block (128), the
// GFNI multi block (256), and odd tails on either side of each.
var multiTestLengths = []int{0, 1, 7, 31, 32, 33, 63, 64, 65, 127, 128, 129, 255, 256, 257, 511, 1000, 4096, 4097, 8191, 8192, 8193, 16411}

// multiCoeffs returns k pseudo-random coefficients that always include
// the special cases 0 and 1 once k allows.
func multiCoeffs(rng *rand.Rand, k int) []byte {
	coeffs := make([]byte, k)
	rng.Read(coeffs)
	if k > 1 {
		coeffs[rng.Intn(k)] = 0
	}
	if k > 2 {
		coeffs[0] = 1
	}
	return coeffs
}

// forEachKernel runs f once per kernel tier available on this
// machine/build, restoring the best tier afterwards. Under the purego
// tag only "table" runs, so the suite stays meaningful on every build.
func forEachKernel(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	defer func() {
		if err := SetKernel("auto"); err != nil {
			t.Fatal(err)
		}
	}()
	for _, name := range AvailableKernels() {
		t.Run(name, func(t *testing.T) {
			if err := SetKernel(name); err != nil {
				t.Fatal(err)
			}
			f(t)
		})
	}
}

// TestMulAddMultiEquivalence is the fused-kernel property test: for
// every kernel tier, shard counts 1..16, and lengths straddling every
// block boundary, MulAddMulti must equal both a sequential MulAddSlice
// loop and the seed scalar reference.
func TestMulAddMultiEquivalence(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for k := 1; k <= 16; k++ {
			for _, n := range multiTestLengths {
				coeffs := multiCoeffs(rng, k)
				inputs := make([][]byte, k)
				for j := range inputs {
					inputs[j] = randSlice(rng, n)
				}
				base := randSlice(rng, n)

				fused := append([]byte(nil), base...)
				MulAddMulti(coeffs, inputs, fused)

				seq := append([]byte(nil), base...)
				for j, c := range coeffs {
					MulAddSlice(c, seq, inputs[j])
				}

				seed := append([]byte(nil), base...)
				mulAddMultiSeed(coeffs, inputs, seed)

				if !bytes.Equal(fused, seq) {
					t.Fatalf("k=%d n=%d: MulAddMulti diverges from sequential MulAddSlice", k, n)
				}
				if !bytes.Equal(fused, seed) {
					t.Fatalf("k=%d n=%d: MulAddMulti diverges from seed scalar kernel", k, n)
				}
			}
		}
	})
}

// TestMulMultiEquivalence is the overwrite-variant property test.
func TestMulMultiEquivalence(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(12))
		for k := 1; k <= 16; k++ {
			for _, n := range multiTestLengths {
				coeffs := multiCoeffs(rng, k)
				inputs := make([][]byte, k)
				for j := range inputs {
					inputs[j] = randSlice(rng, n)
				}

				fused := randSlice(rng, n) // stale contents must be overwritten
				MulMulti(coeffs, inputs, fused)

				seed := make([]byte, n)
				mulAddMultiSeed(coeffs, inputs, seed)

				if !bytes.Equal(fused, seed) {
					t.Fatalf("k=%d n=%d: MulMulti diverges from seed scalar kernel", k, n)
				}
			}
		}
	})
}

// TestMulSliceMatchesScalarAllKernels re-runs the single-pair
// equivalence checks under each forced tier, so the pair kernels'
// dispatch (which SetKernel also caps) stays covered.
func TestMulSliceMatchesScalarAllKernels(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		for _, n := range []int{0, 31, 64, 65, 257} {
			src := randSlice(rng, n)
			base := randSlice(rng, n)
			for c := 0; c < 256; c++ {
				fast := append([]byte(nil), base...)
				ref := append([]byte(nil), base...)
				MulAddSlice(byte(c), fast, src)
				mulAddSliceScalar(byte(c), ref, src)
				if !bytes.Equal(fast, ref) {
					t.Fatalf("MulAddSlice(c=%#x, n=%d) diverges under forced kernel", c, n)
				}
			}
		}
	})
}

// TestMulMultiZeroCoeffs checks the degenerate shapes: no inputs (dst
// zeroed / untouched) and all-zero coefficients.
func TestMulMultiZeroCoeffs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dst := randSlice(rng, 300)
	orig := append([]byte(nil), dst...)
	MulAddMulti(nil, nil, dst)
	if !bytes.Equal(dst, orig) {
		t.Fatal("MulAddMulti with no inputs must leave dst untouched")
	}
	MulMulti(nil, nil, dst)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("MulMulti with no inputs must zero dst")
		}
	}
	coeffs := make([]byte, 3)
	inputs := [][]byte{randSlice(rng, 300), randSlice(rng, 300), randSlice(rng, 300)}
	MulMulti(coeffs, inputs, dst)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("MulMulti with all-zero coefficients must zero dst")
		}
	}
}

func TestMulMultiPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("count mismatch", func() {
		MulAddMulti(make([]byte, 2), make([][]byte, 3), make([]byte, 8))
	})
	mustPanic("length mismatch", func() {
		MulMulti(make([]byte, 1), [][]byte{make([]byte, 7)}, make([]byte, 8))
	})
}

// TestGFNIMatrix pins the affine-matrix packing against the scalar
// field core for every coefficient and byte value, independently of
// the assembly (so the table is validated even where GFNI is absent).
func TestGFNIMatrix(t *testing.T) {
	for c := 0; c < 256; c++ {
		m := gfniMatrix(byte(c))
		for a := 0; a < 256; a++ {
			var got byte
			for i := 0; i < 8; i++ {
				row := byte(m >> (8 * (7 - i)))
				// parity(row & a) -> bit i
				p := row & byte(a)
				p ^= p >> 4
				p ^= p >> 2
				p ^= p >> 1
				got |= (p & 1) << i
			}
			if want := Mul(byte(c), byte(a)); got != want {
				t.Fatalf("gfniMatrix(%#x) applied to %#x = %#x, want %#x", c, a, got, want)
			}
		}
	}
}

// FuzzMulAddMulti cross-checks the fused kernel against the seed
// scalar reference on fuzz-chosen shard counts, lengths, and contents.
func FuzzMulAddMulti(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(1), int64(1))
	f.Add(bytes.Repeat([]byte{0xa5}, 300), uint8(7), int64(42))
	f.Add(make([]byte, 4096), uint8(15), int64(-1))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8, seed int64) {
		k := int(kRaw%16) + 1
		n := len(data)
		rng := rand.New(rand.NewSource(seed))
		coeffs := make([]byte, k)
		rng.Read(coeffs)
		inputs := make([][]byte, k)
		inputs[0] = data
		for j := 1; j < k; j++ {
			inputs[j] = randSlice(rng, n)
		}
		base := randSlice(rng, n)

		fused := append([]byte(nil), base...)
		MulAddMulti(coeffs, inputs, fused)
		seed2 := append([]byte(nil), base...)
		mulAddMultiSeed(coeffs, inputs, seed2)
		if !bytes.Equal(fused, seed2) {
			t.Fatalf("k=%d n=%d: MulAddMulti diverges from seed scalar kernel", k, n)
		}
	})
}

// BenchmarkMulAddMulti measures the fused kernel at the codec's
// realistic shard count (k=10) across shard sizes.
func BenchmarkMulAddMulti(b *testing.B) {
	const k = 10
	for _, bc := range []struct {
		name string
		size int
	}{
		{"1KiB", 1 << 10},
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
	} {
		rng := rand.New(rand.NewSource(6))
		coeffs := make([]byte, k)
		rng.Read(coeffs)
		inputs := make([][]byte, k)
		for j := range inputs {
			inputs[j] = make([]byte, bc.size)
			rng.Read(inputs[j])
		}
		dst := make([]byte, bc.size)
		b.Run(fmt.Sprintf("k%d/%s", k, bc.name), func(b *testing.B) {
			b.SetBytes(int64(k * bc.size)) // input bytes processed
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MulAddMulti(coeffs, inputs, dst)
			}
		})
	}
}

// BenchmarkMulAddMultiUnfused is the same linear combination as k
// sequential MulAddSlice calls — the pre-fusion codec inner loop, kept
// for the fused-vs-unfused delta.
func BenchmarkMulAddMultiUnfused(b *testing.B) {
	const k = 10
	for _, bc := range []struct {
		name string
		size int
	}{
		{"1KiB", 1 << 10},
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
	} {
		rng := rand.New(rand.NewSource(6))
		coeffs := make([]byte, k)
		rng.Read(coeffs)
		inputs := make([][]byte, k)
		for j := range inputs {
			inputs[j] = make([]byte, bc.size)
			rng.Read(inputs[j])
		}
		dst := make([]byte, bc.size)
		b.Run(fmt.Sprintf("k%d/%s", k, bc.name), func(b *testing.B) {
			b.SetBytes(int64(k * bc.size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j, c := range coeffs {
					MulAddSlice(c, dst, inputs[j])
				}
			}
		})
	}
}

// BenchmarkMulAddMultiKernels compares the dispatch tiers (GFNI vs
// AVX2 vs table) on the same fused workload. Tiers the machine lacks
// are skipped.
func BenchmarkMulAddMultiKernels(b *testing.B) {
	const k, size = 10, 64 << 10
	rng := rand.New(rand.NewSource(6))
	coeffs := make([]byte, k)
	rng.Read(coeffs)
	inputs := make([][]byte, k)
	for j := range inputs {
		inputs[j] = make([]byte, size)
		rng.Read(inputs[j])
	}
	dst := make([]byte, size)
	defer func() {
		if err := SetKernel("auto"); err != nil {
			b.Fatal(err)
		}
	}()
	for _, name := range AvailableKernels() {
		b.Run(name, func(b *testing.B) {
			if err := SetKernel(name); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(k * size))
			for i := 0; i < b.N; i++ {
				MulAddMulti(coeffs, inputs, dst)
			}
		})
	}
}
