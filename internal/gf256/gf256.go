// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is realized as GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), the
// conventional polynomial 0x11D used by Reed-Solomon codes (e.g. in
// CD/DVD and QR-code standards). Elements are bytes; addition is XOR;
// multiplication is carried out through logarithm/antilogarithm tables
// built at package initialization from the generator element 2.
//
// All operations are constant-time table lookups (except Div and Inv,
// which check for division by zero) and allocation-free, making the
// package suitable as the innermost kernel of the erasure-coding stack.
package gf256

import "fmt"

// Poly is the irreducible polynomial defining the field, in bit-vector
// form: x^8 + x^4 + x^3 + x^2 + 1.
const Poly = 0x11D

// Generator is the primitive element whose powers enumerate all nonzero
// field elements.
const Generator = 2

// Order is the number of elements in the field.
const Order = 256

var (
	// expTable[i] = Generator^i for i in [0, 510); doubled so that
	// Mul can index expTable[log(a)+log(b)] without a modular reduction.
	expTable [510]byte
	// logTable[a] = discrete log of a to base Generator, for a != 0.
	logTable [256]uint16
	// invTable[a] = multiplicative inverse of a, for a != 0.
	invTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = uint16(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	if x != 1 {
		panic("gf256: generator does not have order 255")
	}
	for a := 1; a < 256; a++ {
		invTable[a] = expTable[255-int(logTable[a])]
	}
}

// Add returns a + b in GF(2^8). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8); identical to Add in characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTable[a]
}

// Exp returns Generator^e for any integer exponent e (negative allowed).
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// Log returns the discrete logarithm of a to base Generator.
// It panics if a is zero, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^e for e >= 0, with the convention 0^0 = 1.
func Pow(a byte, e int) byte {
	if e < 0 {
		panic(fmt.Sprintf("gf256: negative exponent %d", e))
	}
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*e)%255]
}

// Slice kernels (MulSlice, MulAddSlice, AddSlice, Dot) live in
// kernel.go, where the hot loops are table-driven and unrolled.
