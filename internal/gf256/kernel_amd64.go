//go:build amd64 && !purego

package gf256

// AVX2 nibble-table kernels. A GF(2^8) multiply by a fixed coefficient
// c is GF(2)-linear, so it splits over the two nibbles of each byte:
// c*b == c*(b & 0x0f) ^ c*(b & 0xf0). Each half has only 16 possible
// inputs, which is exactly the domain of VPSHUFB: two in-register
// 16-byte table lookups and a XOR multiply 32 bytes per iteration.

// hasAVX2 gates the assembly kernels. Detection needs CPU support
// (CPUID.7.EBX bit 5), AVX support, and OS support for saving YMM
// state (OSXSAVE + XGETBV).
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := x86cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := x86cpuid(1, 0)
	const (
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := x86cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// x86cpuid executes CPUID for the given leaf/subleaf.
func x86cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0.
func xgetbv() (eax, edx uint32)

// mulAddSliceAVX2 computes dst[i] ^= c*src[i] over len(dst) bytes,
// which must be a multiple of 32. tbl is the coefficient's nibble
// table: 16 low-nibble products followed by 16 high-nibble products.
//
//go:noescape
func mulAddSliceAVX2(tbl *[32]byte, dst, src []byte)

// mulSliceAVX2 computes dst[i] = c*src[i] over len(dst) bytes, which
// must be a multiple of 32.
//
//go:noescape
func mulSliceAVX2(tbl *[32]byte, dst, src []byte)
