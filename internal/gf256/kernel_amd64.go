//go:build amd64 && !purego

package gf256

// SIMD kernel tiers. A GF(2^8) multiply by a fixed coefficient c is
// GF(2)-linear, which both tiers exploit:
//
//   - AVX2: c*b == c*(b & 0x0f) ^ c*(b & 0xf0); each half has only 16
//     possible inputs, which is exactly the domain of VPSHUFB — two
//     in-register 16-byte table lookups and a XOR multiply 32 bytes
//     per instruction pair.
//   - GFNI: VGF2P8AFFINEQB applies an arbitrary 8x8 GF(2) bit matrix
//     to every byte of a ZMM vector, so "multiply by c" becomes a
//     single instruction over 64 bytes, with the matrix broadcast from
//     the 2 KiB gfniTable.

// hasAVX2 gates the AVX2 kernels. Detection needs CPU support
// (CPUID.7.EBX bit 5), AVX support, and OS support for saving YMM
// state (OSXSAVE + XGETBV).
var hasAVX2 = detectAVX2()

// hasGFNI gates the GFNI/AVX-512 kernels: CPUID GFNI (7.ECX bit 8) and
// AVX512F (7.EBX bit 16), plus OS support for saving opmask and ZMM
// state.
var hasGFNI = detectGFNI()

func detectAVX2() bool {
	maxID, _, _, _ := x86cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := x86cpuid(1, 0)
	const (
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := x86cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

func detectGFNI() bool {
	if !hasAVX2 {
		return false
	}
	_, ebx7, ecx7, _ := x86cpuid(7, 0)
	const (
		cpuidAVX512F = 1 << 16 // EBX
		cpuidGFNI    = 1 << 8  // ECX
	)
	if ebx7&cpuidAVX512F == 0 || ecx7&cpuidGFNI == 0 {
		return false
	}
	// XCR0 bits 1,2 (XMM, YMM) and 5,6,7 (opmask, ZMM0-15 high halves,
	// ZMM16-31) must all be OS-enabled.
	xcr0, _ := xgetbv()
	return xcr0&0xe6 == 0xe6
}

// x86cpuid executes CPUID for the given leaf/subleaf.
func x86cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0.
func xgetbv() (eax, edx uint32)

// mulAddSliceAVX2 computes dst[i] ^= c*src[i] over len(dst) bytes,
// which must be a multiple of 32. tbl is the coefficient's nibble
// table: 16 low-nibble products followed by 16 high-nibble products.
//
//go:noescape
func mulAddSliceAVX2(tbl *[32]byte, dst, src []byte)

// mulSliceAVX2 computes dst[i] = c*src[i] over len(dst) bytes, which
// must be a multiple of 32.
//
//go:noescape
func mulSliceAVX2(tbl *[32]byte, dst, src []byte)

// mulAddSliceGFNI computes dst[i] ^= c*src[i] over len(dst) bytes,
// which must be a multiple of 64. mat points at the coefficient's
// entry in gfniTable.
//
//go:noescape
func mulAddSliceGFNI(mat *uint64, dst, src []byte)

// mulSliceGFNI computes dst[i] = c*src[i] over len(dst) bytes, which
// must be a multiple of 64.
//
//go:noescape
func mulSliceGFNI(mat *uint64, dst, src []byte)

// The fused multi-shard kernels compute, over len(dst) bytes,
//
//	mulMulti*:    dst[i]  = sum_j coeffs[j] * srcs[j][off+i]
//	mulAddMulti*: dst[i] ^= sum_j coeffs[j] * srcs[j][off+i]
//
// with the output block held in registers across all len(coeffs)
// inputs. dst is the already-offset destination window; off is added
// to each source base so the wrapper can hand different byte ranges to
// different tiers without re-slicing the input headers. len(coeffs)
// must be at least 1, and len(dst) a multiple of the tier's block size
// (128 bytes for AVX2, 256 for GFNI).

//go:noescape
func mulMultiAVX2(nib *[256][32]byte, coeffs []byte, srcs [][]byte, dst []byte, off int)

//go:noescape
func mulAddMultiAVX2(nib *[256][32]byte, coeffs []byte, srcs [][]byte, dst []byte, off int)

//go:noescape
func mulMultiGFNI(mats *[256]uint64, coeffs []byte, srcs [][]byte, dst []byte, off int)

//go:noescape
func mulAddMultiGFNI(mats *[256]uint64, coeffs []byte, srcs [][]byte, dst []byte, off int)
