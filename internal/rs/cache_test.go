package rs

import (
	"sync"
	"testing"

	"repro/internal/matrix"
)

// TestMatrixCacheParallel drives the cache from many goroutines with a
// stable hot key (the steady-state failure pattern) plus churn keys
// that force eviction, under the race detector. The approximate-LRU
// policy may legitimately evict any key under concurrent churn, so the
// test asserts race-freedom, bounded capacity, non-nil results, and
// coherent stats — not residency of a particular key.
func TestMatrixCacheParallel(t *testing.T) {
	c := newMatrixCache(4)
	hot := shardKey{1}
	c.put(hot, matrix.Identity(3))

	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			churn := shardKey{uint64(2 + g)}
			for i := 0; i < iters; i++ {
				m, ok := c.get(hot)
				if ok && m == nil {
					t.Error("hit returned a nil matrix")
					return
				}
				if !ok {
					c.put(hot, matrix.Identity(3)) // evicted by churn; reinstate
				}
				if i%10 == 0 {
					if _, ok := c.get(churn); !ok {
						c.put(churn, matrix.Identity(3))
					}
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses, entries := c.stats()
	if hits == 0 {
		t.Fatal("the hot key should have hit at least once")
	}
	if misses == 0 {
		t.Fatal("churn keys should have missed at least once")
	}
	if entries > 4 {
		t.Fatalf("capacity 4 exceeded: %d entries", entries)
	}
}

// TestMatrixCacheEvictsLeastRecent pins the approximate-LRU policy:
// with capacity 2, touching an old entry keeps it alive while the
// untouched one is evicted.
func TestMatrixCacheEvictsLeastRecent(t *testing.T) {
	c := newMatrixCache(2)
	a, b, d := shardKey{1}, shardKey{2}, shardKey{3}
	c.put(a, matrix.Identity(2))
	c.put(b, matrix.Identity(2))
	c.get(a) // a is now more recent than b
	c.put(d, matrix.Identity(2))
	if _, ok := c.get(a); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.get(b); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	if _, ok := c.get(d); !ok {
		t.Fatal("newly inserted entry missing")
	}
}
