// Package rs implements a systematic Reed-Solomon erasure codec over
// GF(2^8) for arbitrary [n, k] shapes with n <= 256.
//
// In SODA (Konwar et al., IPDPS 2016) every server stores exactly one
// coded element of each version, so the cluster of n servers is one
// [n, k] MDS codeword: a write encodes the value into n shards, and a
// read that has heard from any k servers reconstructs. This package is
// that inner loop. The generator is matrix.SystematicCauchy, so shards
// 0..k-1 are the data itself (copy-free reads when no server has
// failed) and shards k..n-1 are parity.
//
// Performance structure, innermost to outermost:
//
//   - gf256 table kernel: MulSlice/MulAddSlice are one indexed load per
//     byte from a per-coefficient 256-byte product row (see
//     gf256/kernel.go).
//   - decode-matrix cache: reconstruction after a given failure pattern
//     needs the inverse of the k x k sub-generator chosen by the
//     surviving shards; the inverse is cached in a bounded LRU keyed by
//     the survivor bitmask, so a stable failure pattern pays the O(k^3)
//     inversion once.
//   - striping: above a size threshold, shards are split into 64-byte
//     aligned stripes coded concurrently on up to WithConcurrency
//     goroutines (default runtime.GOMAXPROCS).
package rs

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/gf256"
	"repro/internal/matrix"
)

var (
	// ErrInvalidShape is returned by New for unusable [n, k] shapes.
	ErrInvalidShape = errors.New("rs: invalid code shape")
	// ErrInvalidOption is returned by New for out-of-range option values.
	ErrInvalidOption = errors.New("rs: invalid option")
	// ErrShardCount is returned when a shard slice does not have
	// exactly n entries.
	ErrShardCount = errors.New("rs: wrong number of shards")
	// ErrShardSize is returned when present shards have mismatched
	// sizes, or a required shard is missing/empty.
	ErrShardSize = errors.New("rs: shards have invalid sizes")
	// ErrTooFewShards is returned by Reconstruct when fewer than k
	// shards are present.
	ErrTooFewShards = errors.New("rs: too few shards to reconstruct")
)

// Encoder is a reusable [n, k] systematic Reed-Solomon codec. It is
// safe for concurrent use.
type Encoder struct {
	n, k int
	gen  *matrix.Matrix // n x k systematic generator (top k rows = I)

	conc      int // max goroutines per striped operation
	stripeMin int // minimum shard size before striping kicks in
	cache     *matrixCache
}

// Option configures an Encoder.
type Option func(*Encoder) error

// WithConcurrency bounds the number of goroutines used to stripe a
// single Encode/Reconstruct call. c must be at least 1; 1 disables
// striping. The default is runtime.GOMAXPROCS(0).
func WithConcurrency(c int) Option {
	return func(e *Encoder) error {
		if c < 1 {
			return fmt.Errorf("%w: concurrency %d < 1", ErrInvalidOption, c)
		}
		e.conc = c
		return nil
	}
}

// WithStripeThreshold sets the minimum shard size, in bytes, at which
// coding work is split across goroutines. Below it everything runs on
// the calling goroutine. The default is 64 KiB.
func WithStripeThreshold(bytes int) Option {
	return func(e *Encoder) error {
		if bytes < 0 {
			return fmt.Errorf("%w: stripe threshold %d < 0", ErrInvalidOption, bytes)
		}
		e.stripeMin = bytes
		return nil
	}
}

// WithCacheSize bounds the decode-matrix LRU to the given number of
// entries. 0 disables caching (every reconstruction inverts). The
// default is 64 entries, about 64 * k^2 bytes.
func WithCacheSize(entries int) Option {
	return func(e *Encoder) error {
		if entries < 0 {
			return fmt.Errorf("%w: cache size %d < 0", ErrInvalidOption, entries)
		}
		if entries == 0 {
			e.cache = nil
		} else {
			e.cache = newMatrixCache(entries)
		}
		return nil
	}
}

const (
	defaultStripeMin = 64 << 10
	defaultCacheSize = 64
)

// New returns an [n, k] Encoder: n total shards of which k carry data,
// tolerating any n-k erasures. Requires 0 < k <= n <= 256.
func New(n, k int, opts ...Option) (*Encoder, error) {
	if k <= 0 || n < k || n > 256 {
		return nil, fmt.Errorf("%w: n=%d k=%d (need 0 < k <= n <= 256)", ErrInvalidShape, n, k)
	}
	gen, err := matrix.SystematicCauchy(n, k)
	if err != nil {
		return nil, fmt.Errorf("rs: building generator: %w", err)
	}
	e := &Encoder{
		n:         n,
		k:         k,
		gen:       gen,
		conc:      runtime.GOMAXPROCS(0),
		stripeMin: defaultStripeMin,
		cache:     newMatrixCache(defaultCacheSize),
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// N returns the total number of shards.
func (e *Encoder) N() int { return e.n }

// K returns the number of data shards.
func (e *Encoder) K() int { return e.k }

// Encode fills the parity shards shards[k..n-1] from the data shards
// shards[0..k-1]. Data shards must all be present with equal size.
// Parity shards may be missing (nil or zero length, matching
// Reconstruct's convention; they are allocated) or preallocated at the
// data size.
func (e *Encoder) Encode(shards [][]byte) error {
	if len(shards) != e.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	size, err := e.dataSize(shards)
	if err != nil {
		return err
	}
	// Validate every parity size before allocating any, so a failed
	// call never mutates the caller's slice.
	for i := e.k; i < e.n; i++ {
		if len(shards[i]) != 0 && len(shards[i]) != size {
			return fmt.Errorf("%w: parity shard %d has size %d, want %d", ErrShardSize, i, len(shards[i]), size)
		}
	}
	for i := e.k; i < e.n; i++ {
		if len(shards[i]) == 0 {
			shards[i] = make([]byte, size)
		}
	}
	coeffs := make([][]byte, e.n-e.k)
	for i := range coeffs {
		coeffs[i] = e.gen.Row(e.k + i)
	}
	e.codeStriped(coeffs, shards[:e.k], shards[e.k:], size)
	return nil
}

// Verify recomputes the parity shards and reports whether they match.
// All n shards must be present with equal size.
func (e *Encoder) Verify(shards [][]byte) (bool, error) {
	if len(shards) != e.n {
		return false, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	size, err := e.dataSize(shards)
	if err != nil {
		return false, err
	}
	for i := e.k; i < e.n; i++ {
		if len(shards[i]) != size {
			return false, fmt.Errorf("%w: parity shard %d has size %d, want %d", ErrShardSize, i, len(shards[i]), size)
		}
	}
	np := e.n - e.k
	if np == 0 {
		return true, nil
	}
	// Recompute parity in bounded chunks so a mismatch exits early and
	// the scratch allocation stays constant regardless of shard size.
	chunk := verifyChunk
	if chunk > size {
		chunk = size
	}
	scratch := make([][]byte, np)
	coeffs := make([][]byte, np)
	buf := make([]byte, np*chunk)
	for i := range scratch {
		scratch[i] = buf[i*chunk : (i+1)*chunk]
		coeffs[i] = e.gen.Row(e.k + i)
	}
	inputs := make([][]byte, e.k)
	outputs := make([][]byte, np)
	for lo := 0; lo < size; lo += chunk {
		hi := lo + chunk
		if hi > size {
			hi = size
		}
		for j := 0; j < e.k; j++ {
			inputs[j] = shards[j][lo:hi]
		}
		for i := range outputs {
			outputs[i] = scratch[i][:hi-lo]
		}
		codeRange(coeffs, inputs, outputs, 0, hi-lo)
		for i, p := range outputs {
			if !bytes.Equal(p, shards[e.k+i][lo:hi]) {
				return false, nil
			}
		}
	}
	return true, nil
}

// verifyChunk bounds Verify's scratch buffer per parity shard.
const verifyChunk = 64 << 10

// Reconstruct recomputes every missing shard (nil or empty entries) in
// place, data and parity alike. At least k shards must be present, and
// all present shards must have equal size.
func (e *Encoder) Reconstruct(shards [][]byte) error {
	return e.reconstruct(shards, false)
}

// ReconstructData recomputes only the missing data shards
// shards[0..k-1], leaving missing parity shards untouched. This is the
// read-repair fast path: a SODA read needs the value, not the parity.
func (e *Encoder) ReconstructData(shards [][]byte) error {
	return e.reconstruct(shards, true)
}

func (e *Encoder) reconstruct(shards [][]byte, dataOnly bool) error {
	if len(shards) != e.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	size := -1
	present := make([]int, 0, e.n)
	for i, s := range shards {
		if len(s) == 0 {
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has size %d, want %d", ErrShardSize, i, len(s), size)
		}
		present = append(present, i)
	}
	if len(present) < e.k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), e.k)
	}

	// Nothing missing that we are asked to repair?
	missingData := make([]int, 0, e.k)
	for i := 0; i < e.k; i++ {
		if len(shards[i]) == 0 {
			missingData = append(missingData, i)
		}
	}
	missingParity := make([]int, 0, e.n-e.k)
	if !dataOnly {
		for i := e.k; i < e.n; i++ {
			if len(shards[i]) == 0 {
				missingParity = append(missingParity, i)
			}
		}
	}
	if len(missingData) == 0 && len(missingParity) == 0 {
		return nil
	}

	if len(missingData) > 0 {
		// Decode the missing data rows from the first k survivors.
		chosen := present[:e.k]
		dec, err := e.decodeMatrix(chosen)
		if err != nil {
			return err
		}
		inputs := make([][]byte, e.k)
		for i, idx := range chosen {
			inputs[i] = shards[idx]
		}
		outputs := make([][]byte, len(missingData))
		coeffs := make([][]byte, len(missingData))
		for i, idx := range missingData {
			shards[idx] = make([]byte, size)
			outputs[i] = shards[idx]
			coeffs[i] = dec.Row(idx)
		}
		e.codeStriped(coeffs, inputs, outputs, size)
	}

	if len(missingParity) > 0 {
		// All data shards are present now; re-encode missing parity.
		outputs := make([][]byte, len(missingParity))
		coeffs := make([][]byte, len(missingParity))
		for i, idx := range missingParity {
			shards[idx] = make([]byte, size)
			outputs[i] = shards[idx]
			coeffs[i] = e.gen.Row(idx)
		}
		e.codeStriped(coeffs, shards[:e.k], outputs, size)
	}
	return nil
}

// decodeMatrix returns the inverse of the k x k sub-generator selected
// by the (sorted, distinct) surviving shard indices, consulting the LRU
// cache first.
func (e *Encoder) decodeMatrix(chosen []int) (*matrix.Matrix, error) {
	var key shardKey
	for _, idx := range chosen {
		key[idx>>6] |= 1 << (idx & 63)
	}
	if e.cache != nil {
		if m, ok := e.cache.get(key); ok {
			return m, nil
		}
	}
	sub := e.gen.SubMatrix(chosen)
	dec, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("rs: decode matrix for shards %v: %w", chosen, err)
	}
	if e.cache != nil {
		e.cache.put(key, dec)
	}
	return dec, nil
}

// CacheStats reports decode-matrix cache hits, misses, and the current
// number of cached inverses. All zeros when caching is disabled.
func (e *Encoder) CacheStats() (hits, misses uint64, entries int) {
	if e.cache == nil {
		return 0, 0, 0
	}
	return e.cache.stats()
}

// dataSize validates that shards[0..k-1] are present with equal size
// and returns that size.
func (e *Encoder) dataSize(shards [][]byte) (int, error) {
	size := len(shards[0])
	if size == 0 {
		return 0, fmt.Errorf("%w: data shard 0 is missing or empty", ErrShardSize)
	}
	for i := 1; i < e.k; i++ {
		if len(shards[i]) != size {
			return 0, fmt.Errorf("%w: data shard %d has size %d, want %d", ErrShardSize, i, len(shards[i]), size)
		}
	}
	return size, nil
}

// codeStriped computes outputs[o] = sum_j coeffs[o][j] * inputs[j] over
// the byte range [0, size), striping across goroutines when the shards
// are large enough.
func (e *Encoder) codeStriped(coeffs, inputs, outputs [][]byte, size int) {
	if len(outputs) == 0 {
		return
	}
	if e.conc <= 1 || size < e.stripeMin {
		codeRange(coeffs, inputs, outputs, 0, size)
		return
	}
	// 64-byte aligned stripes, one per worker.
	chunk := (size + e.conc - 1) / e.conc
	chunk = (chunk + 63) &^ 63
	var wg sync.WaitGroup
	for lo := 0; lo < size; lo += chunk {
		hi := lo + chunk
		if hi > size {
			hi = size
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			codeRange(coeffs, inputs, outputs, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// codeRange is the sequential core of codeStriped for one byte range.
func codeRange(coeffs, inputs, outputs [][]byte, lo, hi int) {
	for o, out := range outputs {
		cr := coeffs[o]
		gf256.MulSlice(cr[0], out[lo:hi], inputs[0][lo:hi])
		for j := 1; j < len(inputs); j++ {
			gf256.MulAddSlice(cr[j], out[lo:hi], inputs[j][lo:hi])
		}
	}
}
