// Package rs implements a systematic Reed-Solomon erasure codec over
// GF(2^8) for arbitrary [n, k] shapes with n <= 256.
//
// In SODA (Konwar et al., IPDPS 2016) every server stores exactly one
// coded element of each version, so the cluster of n servers is one
// [n, k] MDS codeword: a write encodes the value into n shards, and a
// read that has heard from any k servers reconstructs. This package is
// that inner loop. The generator is matrix.SystematicCauchy, so shards
// 0..k-1 are the data itself (copy-free reads when no server has
// failed) and shards k..n-1 are parity.
//
// Performance structure, innermost to outermost:
//
//   - gf256 fused kernels: MulMulti/MulAddMulti accumulate all k
//     inputs into a register-resident output block in one pass, on the
//     best of the GFNI -> AVX2 -> table dispatch ladder (see
//     gf256/kernel.go).
//   - tiling: byte ranges are cut so the k input blocks stay in L2
//     while every output is computed for that range (see pool.go).
//   - decode-matrix cache: reconstruction after a given failure pattern
//     needs the inverse of the k x k sub-generator chosen by the
//     surviving shards; the inverse is cached in a bounded
//     approximate-LRU keyed by the survivor bitmask, so a stable
//     failure pattern pays the O(k^3) inversion once, and concurrent
//     readers share it under an RLock.
//   - striping: above a size threshold, stripes are spread over the
//     Encoder's reusable worker pool (up to WithConcurrency goroutines,
//     default runtime.GOMAXPROCS).
//
// The steady-state entry points — EncodeInto, ReconstructInto, Verify,
// and Encode/Reconstruct with pre-allocated targets — perform no heap
// allocations: coefficients are precomputed, and call scratch is
// recycled through sync.Pools.
package rs

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"repro/internal/gf256"
	"repro/internal/matrix"
)

var (
	// ErrInvalidShape is returned by New for unusable [n, k] shapes.
	ErrInvalidShape = errors.New("rs: invalid code shape")
	// ErrInvalidOption is returned by New for out-of-range option values.
	ErrInvalidOption = errors.New("rs: invalid option")
	// ErrShardCount is returned when a shard slice does not have
	// exactly n entries.
	ErrShardCount = errors.New("rs: wrong number of shards")
	// ErrShardSize is returned when present shards have mismatched
	// sizes, or a required shard is missing/empty.
	ErrShardSize = errors.New("rs: shards have invalid sizes")
	// ErrTooFewShards is returned by Reconstruct when fewer than k
	// shards are present.
	ErrTooFewShards = errors.New("rs: too few shards to reconstruct")
	// ErrParityMismatch is the class of Verify's mismatch report; the
	// concrete error is a *ParityMismatchError listing every parity
	// shard that disagrees with the data shards.
	ErrParityMismatch = errors.New("rs: parity mismatch")
	// ErrTooManyErrors is returned by DecodeErrors when the shards are
	// not within the decoding radius: more than e corrupt shards with
	// 2e + erasures <= n-k.
	ErrTooManyErrors = errors.New("rs: too many corrupt shards to locate")
	// ErrNoSyndromes is returned by DecodeErrors on an Encoder whose
	// generator has no syndrome structure (build with
	// WithGenerator(GeneratorRSView) to enable error decoding).
	ErrNoSyndromes = errors.New("rs: generator has no syndrome structure")
)

// ParityMismatchError reports every parity shard whose stored bytes
// disagree with recomputation from the data shards. It unwraps to
// ErrParityMismatch. Because a single corrupt data shard flips
// essentially every parity shard while a corrupt parity shard flips
// only itself, len(Indices) is the cheap first estimate of where
// corruption sits before paying for DecodeErrors.
type ParityMismatchError struct {
	// Indices holds the mismatching parity shard indices (in [k, n)),
	// ascending.
	Indices []int
}

func (e *ParityMismatchError) Error() string {
	if len(e.Indices) == 1 {
		return fmt.Sprintf("rs: parity mismatch: parity shard %d", e.Indices[0])
	}
	return fmt.Sprintf("rs: parity mismatch: parity shards %v", e.Indices)
}

// Unwrap ties the error to the ErrParityMismatch class.
func (e *ParityMismatchError) Unwrap() error { return ErrParityMismatch }

// Encoder is a reusable [n, k] systematic Reed-Solomon codec. It is
// safe for concurrent use.
type Encoder struct {
	n, k    int
	genKind Generator
	gen     *matrix.Matrix     // n x k systematic generator (top k rows = I)
	syn     *syndromeStructure // non-nil only for GeneratorRSView with parity

	// parityCoeffs[i] is generator row k+i: the coefficients of parity
	// shard k+i. Precomputed so Encode/Verify never allocate them.
	parityCoeffs [][]byte

	conc        int // max goroutines per striped operation
	stripeMin   int // minimum shard size before striping kicks in
	cache       *matrixCache
	errataCache *matrixCache // errata-solve setups keyed by errata bitmask
	pool        *workerPool  // nil when conc == 1

	scratch    sync.Pool // *codecScratch
	verscratch sync.Pool // *verifyScratch
	decscratch sync.Pool // *decodeScratch
}

// Option configures an Encoder.
type Option func(*Encoder) error

// WithConcurrency bounds the number of goroutines used to stripe a
// single Encode/Reconstruct call. c must be at least 1; 1 disables
// striping. The default is runtime.GOMAXPROCS(0).
func WithConcurrency(c int) Option {
	return func(e *Encoder) error {
		if c < 1 {
			return fmt.Errorf("%w: concurrency %d < 1", ErrInvalidOption, c)
		}
		e.conc = c
		return nil
	}
}

// WithStripeThreshold sets the minimum shard size, in bytes, at which
// coding work is split across goroutines. Below it everything runs on
// the calling goroutine. The default is 64 KiB.
func WithStripeThreshold(bytes int) Option {
	return func(e *Encoder) error {
		if bytes < 0 {
			return fmt.Errorf("%w: stripe threshold %d < 0", ErrInvalidOption, bytes)
		}
		e.stripeMin = bytes
		return nil
	}
}

// WithCacheSize bounds the decode-matrix LRU to the given number of
// entries. 0 disables caching (every reconstruction inverts). The
// default is 64 entries, about 64 * k^2 bytes. The same bound applies
// to the errata-solve cache used by DecodeErrors (keyed by the
// erasure-plus-error pattern), which is likewise disabled by 0.
func WithCacheSize(entries int) Option {
	return func(e *Encoder) error {
		if entries < 0 {
			return fmt.Errorf("%w: cache size %d < 0", ErrInvalidOption, entries)
		}
		if entries == 0 {
			e.cache = nil
			e.errataCache = nil
		} else {
			e.cache = newMatrixCache(entries)
			e.errataCache = newMatrixCache(entries)
		}
		return nil
	}
}

const (
	defaultStripeMin = 64 << 10
	defaultCacheSize = 64
)

// New returns an [n, k] Encoder: n total shards of which k carry data,
// tolerating any n-k erasures. Requires 0 < k <= n <= 256 (n <= 255
// with GeneratorRSView).
func New(n, k int, opts ...Option) (*Encoder, error) {
	if k <= 0 || n < k || n > 256 {
		return nil, fmt.Errorf("%w: n=%d k=%d (need 0 < k <= n <= 256)", ErrInvalidShape, n, k)
	}
	e := &Encoder{
		n:           n,
		k:           k,
		conc:        runtime.GOMAXPROCS(0),
		stripeMin:   defaultStripeMin,
		cache:       newMatrixCache(defaultCacheSize),
		errataCache: newMatrixCache(defaultCacheSize),
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	var err error
	if e.gen, e.syn, err = buildGenerator(e.genKind, n, k); err != nil {
		return nil, fmt.Errorf("rs: building %s generator: %w", e.genKind, err)
	}
	e.parityCoeffs = make([][]byte, n-k)
	for i := range e.parityCoeffs {
		e.parityCoeffs[i] = e.gen.Row(k + i)
	}
	if e.conc > 1 {
		e.pool = newWorkerPool(e.conc - 1)
		runtime.SetFinalizer(e, (*Encoder).Close)
	}
	return e, nil
}

// N returns the total number of shards.
func (e *Encoder) N() int { return e.n }

// K returns the number of data shards.
func (e *Encoder) K() int { return e.k }

// Close stops the Encoder's background coding workers, if any were
// started. Calling it is optional — an unreachable Encoder's workers
// are stopped by a finalizer — and idempotent, but it must not overlap
// in-flight coding calls. The Encoder stays usable afterwards; striped
// work just runs on the calling goroutine.
func (e *Encoder) Close() {
	if e.pool != nil {
		e.pool.close()
	}
}

// Encode fills the parity shards shards[k..n-1] from the data shards
// shards[0..k-1]. Data shards must all be present with equal size.
// Parity shards may be missing (nil or zero length, matching
// Reconstruct's convention) or preallocated at the data size. A missing
// parity entry whose capacity already covers the data size — the
// buf[:0] convention ReconstructInto documents — is resliced in place;
// only entries with insufficient capacity are allocated, so a caller
// that provisions capacity keeps its buffers and the call stays
// allocation-free.
func (e *Encoder) Encode(shards [][]byte) error {
	if len(shards) != e.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	size, err := e.dataSize(shards)
	if err != nil {
		return err
	}
	// Validate every parity size before allocating any, so a failed
	// call never mutates the caller's slice.
	for i := e.k; i < e.n; i++ {
		if len(shards[i]) != 0 && len(shards[i]) != size {
			return fmt.Errorf("%w: parity shard %d has size %d, want %d", ErrShardSize, i, len(shards[i]), size)
		}
	}
	for i := e.k; i < e.n; i++ {
		if len(shards[i]) == 0 {
			if cap(shards[i]) >= size {
				shards[i] = shards[i][:size]
			} else {
				shards[i] = make([]byte, size)
			}
		}
	}
	e.codeStriped(e.parityCoeffs, shards[:e.k], shards[e.k:], size)
	return nil
}

// EncodeInto is the steady-state form of Encode: every parity shard
// must already be allocated at the data size, and the call performs no
// heap allocation.
func (e *Encoder) EncodeInto(shards [][]byte) error {
	if len(shards) != e.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	size, err := e.dataSize(shards)
	if err != nil {
		return err
	}
	for i := e.k; i < e.n; i++ {
		if len(shards[i]) != size {
			return fmt.Errorf("%w: parity shard %d has size %d, want %d (EncodeInto needs preallocated parity)", ErrShardSize, i, len(shards[i]), size)
		}
	}
	e.codeStriped(e.parityCoeffs, shards[:e.k], shards[e.k:], size)
	return nil
}

// Verify recomputes the parity shards and reports whether they match.
// All n shards must be present with equal size. On a mismatch it
// returns false together with a *ParityMismatchError listing every
// mismatching parity shard: the cheap corruption estimate that decides
// whether DecodeErrors is worth running (one bad parity shard means the
// parity itself is corrupt; several usually mean a bad data shard). The
// match path performs no heap allocation.
func (e *Encoder) Verify(shards [][]byte) (bool, error) {
	if len(shards) != e.n {
		return false, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	size, err := e.dataSize(shards)
	if err != nil {
		return false, err
	}
	for i := e.k; i < e.n; i++ {
		if len(shards[i]) != size {
			return false, fmt.Errorf("%w: parity shard %d has size %d, want %d", ErrShardSize, i, len(shards[i]), size)
		}
	}
	np := e.n - e.k
	if np == 0 {
		return true, nil
	}
	// Recompute parity in bounded chunks so a mismatch exits early and
	// the pooled scratch stays constant regardless of shard size.
	chunk := verifyChunk
	if chunk > size {
		chunk = size
	}
	vs := e.getVerifyScratch(np * chunk)
	defer e.putVerifyScratch(vs)
	buf := vs.buf[:np*chunk]
	// live holds the parity indices not yet flagged as mismatching; the
	// outputs and coefficient rows handed to the kernels are compacted
	// to it per chunk, so a shard flagged bad stops costing kernel work
	// for the rest of the scan, and the scan stops outright once every
	// parity shard is flagged. bad stays nil until the first mismatch so
	// the match path is allocation-free.
	live := vs.live[:0]
	for i := 0; i < np; i++ {
		live = append(live, e.k+i)
	}
	var bad []int
	for lo := 0; lo < size && len(live) > 0; lo += chunk {
		hi := lo + chunk
		if hi > size {
			hi = size
		}
		m := hi - lo
		for j := 0; j < e.k; j++ {
			vs.ins[j] = shards[j][lo:hi]
		}
		nl := len(live)
		for s, idx := range live {
			vs.outs[s] = buf[s*chunk : s*chunk+m]
			vs.coefs[s] = e.parityCoeffs[idx-e.k]
		}
		if testHookVerifyChunk != nil {
			testHookVerifyChunk(nl)
		}
		codeRange(vs.coefs[:nl], vs.ins, vs.outs[:nl], 0, m)
		w := 0
		for s, idx := range live {
			if bytes.Equal(vs.outs[s], shards[idx][lo:hi]) {
				live[w] = idx
				w++
			} else {
				bad = append(bad, idx)
			}
		}
		live = live[:w]
	}
	if bad != nil {
		slices.Sort(bad) // chunks flag indices in detection order
		return false, &ParityMismatchError{Indices: bad}
	}
	return true, nil
}

// testHookVerifyChunk, when non-nil, observes the number of unflagged
// parity outputs Verify hands to the kernels for each chunk. Test-only.
var testHookVerifyChunk func(liveOutputs int)

// verifyChunk bounds Verify's scratch buffer per parity shard.
const verifyChunk = 64 << 10

// Reconstruct recomputes every missing shard (nil or empty entries) in
// place, data and parity alike, allocating buffers for them. At least
// k shards must be present, and all present shards must have equal
// size.
func (e *Encoder) Reconstruct(shards [][]byte) error {
	return e.reconstruct(shards, false, false)
}

// ReconstructData recomputes only the missing data shards
// shards[0..k-1], leaving missing parity shards untouched. This is the
// read-repair fast path: a SODA read needs the value, not the parity.
func (e *Encoder) ReconstructData(shards [][]byte) error {
	return e.reconstruct(shards, true, false)
}

// ReconstructInto is the steady-state, allocation-free form of
// Reconstruct. A shard to repair is passed as a zero-length slice with
// capacity of at least the shard size (for example buf[:0]); it is
// resliced to the shard size in place and filled. nil entries are
// treated as absent and left untouched, so the caller chooses exactly
// which shards to repair and supplies the memory.
func (e *Encoder) ReconstructInto(shards [][]byte) error {
	return e.reconstruct(shards, false, true)
}

// codecScratch recycles the per-call bookkeeping of reconstruct.
type codecScratch struct {
	present    []int
	missData   []int
	missParity []int
	inputs     [][]byte
	outputs    [][]byte
	coeffs     [][]byte
	coefbuf    []byte // composed coefficient rows for survivor-direct parity
}

func (e *Encoder) getScratch() *codecScratch {
	s, _ := e.scratch.Get().(*codecScratch)
	if s == nil {
		s = &codecScratch{
			present:    make([]int, 0, e.n),
			missData:   make([]int, 0, e.k),
			missParity: make([]int, 0, e.n-e.k+1),
			inputs:     make([][]byte, e.k),
			coefbuf:    make([]byte, (e.n-e.k)*e.k),
			outputs:    make([][]byte, 0, e.n),
			coeffs:     make([][]byte, 0, e.n),
		}
	}
	return s
}

func (e *Encoder) putScratch(s *codecScratch) {
	clearRefs := func(v [][]byte) [][]byte {
		v = v[:cap(v)]
		for i := range v {
			v[i] = nil // do not pin shard memory from the pool
		}
		return v[:0]
	}
	s.inputs = clearRefs(s.inputs)[:cap(s.inputs)]
	s.outputs = clearRefs(s.outputs)
	s.coeffs = clearRefs(s.coeffs)
	e.scratch.Put(s)
}

func (e *Encoder) reconstruct(shards [][]byte, dataOnly, into bool) error {
	if len(shards) != e.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	s := e.getScratch()
	defer e.putScratch(s)

	size := -1
	s.present = s.present[:0]
	for i, sh := range shards {
		if len(sh) == 0 {
			continue
		}
		if size < 0 {
			size = len(sh)
		} else if len(sh) != size {
			return fmt.Errorf("%w: shard %d has size %d, want %d", ErrShardSize, i, len(sh), size)
		}
		s.present = append(s.present, i)
	}
	if len(s.present) < e.k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(s.present), e.k)
	}

	// Collect repair targets. In into mode a target is a non-nil
	// zero-length entry whose capacity the caller sized for us; nil
	// means "absent, do not repair". Otherwise any empty entry is a
	// target (parity only when !dataOnly).
	repairable := func(i int) bool {
		if into {
			return shards[i] != nil && len(shards[i]) == 0
		}
		return len(shards[i]) == 0 && (i < e.k || !dataOnly)
	}
	s.missData = s.missData[:0]
	s.missParity = s.missParity[:0]
	for i := 0; i < e.n; i++ {
		if !repairable(i) {
			continue
		}
		if into && cap(shards[i]) < size {
			return fmt.Errorf("%w: shard %d buffer capacity %d < shard size %d", ErrShardSize, i, cap(shards[i]), size)
		}
		if i < e.k {
			s.missData = append(s.missData, i)
		} else {
			s.missParity = append(s.missParity, i)
		}
	}
	if len(s.missData) == 0 && len(s.missParity) == 0 {
		return nil
	}
	materialize := func(i int) {
		if into {
			shards[i] = shards[i][:size]
		} else {
			shards[i] = make([]byte, size)
		}
	}

	// Both repair stages decode from the same first k survivors, so
	// the inverted sub-generator is computed at most once per call.
	chosen := s.present[:e.k]
	var dec *matrix.Matrix

	if len(s.missData) > 0 {
		// Decode the missing data rows from the first k survivors.
		var err error
		if dec, err = e.decodeMatrix(chosen); err != nil {
			return err
		}
		inputs := s.inputs[:e.k]
		for i, idx := range chosen {
			inputs[i] = shards[idx]
		}
		outputs := s.outputs[:0]
		coeffs := s.coeffs[:0]
		for _, idx := range s.missData {
			materialize(idx)
			outputs = append(outputs, shards[idx])
			coeffs = append(coeffs, dec.Row(idx))
		}
		e.codeStriped(coeffs, inputs, outputs, size)
	}

	if len(s.missParity) > 0 {
		// Re-encode missing parity. Usually every data shard is
		// present (or was just repaired) and the precomputed generator
		// rows apply directly. ReconstructInto may leave data shards
		// absent, though; then each parity row is composed with the
		// decode matrix — parity = genRow·data = (genRow·dec)·survivors
		// — so the parity is rebuilt straight from the k survivors.
		dataComplete := true
		for i := 0; i < e.k; i++ {
			if len(shards[i]) != size {
				dataComplete = false
				break
			}
		}
		inputs := s.inputs[:e.k]
		outputs := s.outputs[:0]
		coeffs := s.coeffs[:0]
		if dataComplete {
			copy(inputs, shards[:e.k])
			for _, idx := range s.missParity {
				materialize(idx)
				outputs = append(outputs, shards[idx])
				coeffs = append(coeffs, e.parityCoeffs[idx-e.k])
			}
		} else {
			if dec == nil {
				var err error
				if dec, err = e.decodeMatrix(chosen); err != nil {
					return err
				}
			}
			for i, idx := range chosen {
				inputs[i] = shards[idx]
			}
			buf := s.coefbuf[:len(s.missParity)*e.k]
			for i, idx := range s.missParity {
				materialize(idx)
				outputs = append(outputs, shards[idx])
				row := buf[i*e.k : (i+1)*e.k]
				gRow := e.parityCoeffs[idx-e.k]
				for j := 0; j < e.k; j++ {
					var acc byte
					for m := 0; m < e.k; m++ {
						acc ^= gf256.Mul(gRow[m], dec.Row(m)[j])
					}
					row[j] = acc
				}
				coeffs = append(coeffs, row)
			}
		}
		e.codeStriped(coeffs, inputs, outputs, size)
	}
	return nil
}

// decodeMatrix returns the inverse of the k x k sub-generator selected
// by the (sorted, distinct) surviving shard indices, consulting the LRU
// cache first.
func (e *Encoder) decodeMatrix(chosen []int) (*matrix.Matrix, error) {
	var key shardKey
	for _, idx := range chosen {
		key[idx>>6] |= 1 << (idx & 63)
	}
	if e.cache != nil {
		if m, ok := e.cache.get(key); ok {
			return m, nil
		}
	}
	sub := e.gen.SubMatrix(chosen)
	dec, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("rs: decode matrix for shards %v: %w", chosen, err)
	}
	if e.cache != nil {
		e.cache.put(key, dec)
	}
	return dec, nil
}

// CacheStats reports decode-matrix cache hits, misses, and the current
// number of cached inverses. All zeros when caching is disabled.
func (e *Encoder) CacheStats() (hits, misses uint64, entries int) {
	if e.cache == nil {
		return 0, 0, 0
	}
	return e.cache.stats()
}

// verifyScratch recycles Verify's recomputed-parity buffer and views.
type verifyScratch struct {
	buf   []byte
	ins   [][]byte
	outs  [][]byte
	coefs [][]byte
	live  []int
}

func (e *Encoder) getVerifyScratch(need int) *verifyScratch {
	vs, _ := e.verscratch.Get().(*verifyScratch)
	if vs == nil {
		vs = &verifyScratch{
			ins:   make([][]byte, e.k),
			outs:  make([][]byte, e.n-e.k),
			coefs: make([][]byte, e.n-e.k),
			live:  make([]int, 0, e.n-e.k),
		}
	}
	if cap(vs.buf) < need {
		vs.buf = make([]byte, need)
	}
	return vs
}

func (e *Encoder) putVerifyScratch(vs *verifyScratch) {
	for i := range vs.ins {
		vs.ins[i] = nil
	}
	for i := range vs.outs {
		vs.outs[i] = nil
		vs.coefs[i] = nil
	}
	e.verscratch.Put(vs)
}

// dataSize validates that shards[0..k-1] are present with equal size
// and returns that size.
func (e *Encoder) dataSize(shards [][]byte) (int, error) {
	size := len(shards[0])
	if size == 0 {
		return 0, fmt.Errorf("%w: data shard 0 is missing or empty", ErrShardSize)
	}
	for i := 1; i < e.k; i++ {
		if len(shards[i]) != size {
			return 0, fmt.Errorf("%w: data shard %d has size %d, want %d", ErrShardSize, i, len(shards[i]), size)
		}
	}
	return size, nil
}
