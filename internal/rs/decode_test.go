package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/gf256"
)

// corruptShard flips a few random bytes of shards[idx], guaranteeing it
// differs from the original.
func corruptShard(rng *rand.Rand, shards [][]byte, idx int) {
	sh := shards[idx]
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		sh[rng.Intn(len(sh))] ^= byte(1 + rng.Intn(255))
	}
}

// damage applies e corruptions and f erasures from perm to a clone of
// orig, returning the damaged shards and the ascending lists of
// positions actually corrupted and erased.
func damage(rng *rand.Rand, orig [][]byte, perm []int, e, f int, intoBufs bool) (shards [][]byte, corrupted, erased []int) {
	shards = cloneShards(orig)
	for _, p := range perm[:f] {
		if intoBufs {
			shards[p] = make([]byte, 0, len(orig[p]))
		} else {
			shards[p] = nil
		}
		erased = append(erased, p)
	}
	for _, p := range perm[f : f+e] {
		before := append([]byte(nil), shards[p]...)
		corruptShard(rng, shards, p)
		if bytes.Equal(before, shards[p]) {
			panic("corruptShard did not change the shard")
		}
		corrupted = append(corrupted, p)
	}
	slices.Sort(corrupted)
	slices.Sort(erased)
	return shards, corrupted, erased
}

// TestDecodeErrorsSweep checks every (errors, erasures) split within
// the decoding radius 2e+f <= n-k across shapes and odd sizes: the
// decoder must restore the exact original shards and name exactly the
// corrupted ones.
func TestDecodeErrorsSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, sh := range []struct{ n, k int }{{3, 1}, {5, 3}, {9, 5}, {14, 10}, {8, 3}} {
		e, err := New(sh.n, sh.k, WithGenerator(GeneratorRSView))
		if err != nil {
			t.Fatalf("New(%d,%d): %v", sh.n, sh.k, err)
		}
		orig := makeShards(t, rng, e, 257)
		d := sh.n - sh.k
		for f := 0; f <= d; f++ {
			for ne := 0; 2*ne+f <= d; ne++ {
				for trial := 0; trial < 8; trial++ {
					perm := rng.Perm(sh.n)
					shards, wantCorrupt, _ := damage(rng, orig, perm, ne, f, false)
					got, err := e.DecodeErrors(shards)
					if err != nil {
						t.Fatalf("[%d,%d] e=%d f=%d: DecodeErrors: %v", sh.n, sh.k, ne, f, err)
					}
					if !slices.Equal(got, wantCorrupt) {
						t.Fatalf("[%d,%d] e=%d f=%d: corrupt = %v, want %v", sh.n, sh.k, ne, f, got, wantCorrupt)
					}
					for i := range orig {
						if !bytes.Equal(shards[i], orig[i]) {
							t.Fatalf("[%d,%d] e=%d f=%d: shard %d not restored", sh.n, sh.k, ne, f, i)
						}
					}
				}
			}
		}
	}
}

// TestDecodeErrorsMatchesBruteOracle cross-checks the syndrome decoder
// against the combinatorial subset decoder on identical damage.
func TestDecodeErrorsMatchesBruteOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, sh := range []struct{ n, k int }{{5, 3}, {9, 5}, {10, 4}} {
		e, err := New(sh.n, sh.k, WithGenerator(GeneratorRSView))
		if err != nil {
			t.Fatal(err)
		}
		orig := makeShards(t, rng, e, 129)
		d := sh.n - sh.k
		for trial := 0; trial < 40; trial++ {
			f := rng.Intn(d + 1)
			ne := rng.Intn((d-f)/2 + 1)
			perm := rng.Perm(sh.n)
			fast, _, _ := damage(rng, orig, perm, ne, f, false)
			brute := cloneShards(fast)
			gotFast, errFast := e.DecodeErrors(fast)
			gotBrute, errBrute := e.decodeErrorsBrute(brute)
			if errFast != nil || errBrute != nil {
				t.Fatalf("[%d,%d] e=%d f=%d: fast err %v, brute err %v", sh.n, sh.k, ne, f, errFast, errBrute)
			}
			if !slices.Equal(gotFast, gotBrute) {
				t.Fatalf("[%d,%d] e=%d f=%d: fast corrupt %v, brute %v", sh.n, sh.k, ne, f, gotFast, gotBrute)
			}
			for i := range orig {
				if !bytes.Equal(fast[i], orig[i]) || !bytes.Equal(brute[i], orig[i]) {
					t.Fatalf("[%d,%d] e=%d f=%d: shard %d disagreement", sh.n, sh.k, ne, f, i)
				}
			}
		}
	}
}

// TestDecodeErrorsKernelLadder re-runs a decode on every kernel tier so
// the fused syndrome path is pinned to the same result on gfni, avx2,
// table, and (under -tags purego) the pure-Go build.
func TestDecodeErrorsKernelLadder(t *testing.T) {
	defer gf256.SetKernel("auto")
	rng := rand.New(rand.NewSource(52))
	e, err := New(14, 10, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 4096+13)
	for _, kern := range gf256.AvailableKernels() {
		if err := gf256.SetKernel(kern); err != nil {
			t.Fatalf("SetKernel(%s): %v", kern, err)
		}
		perm := rng.Perm(14)
		shards, wantCorrupt, _ := damage(rng, orig, perm, 2, 0, false)
		got, err := e.DecodeErrors(shards)
		if err != nil {
			t.Fatalf("kernel %s: DecodeErrors: %v", kern, err)
		}
		if !slices.Equal(got, wantCorrupt) {
			t.Fatalf("kernel %s: corrupt = %v, want %v", kern, got, wantCorrupt)
		}
		for i := range orig {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("kernel %s: shard %d not restored", kern, i)
			}
		}
	}
}

// TestDecodeErrorsStriped pushes the shard size over the stripe
// threshold so syndromes and magnitude solves run on the worker pool,
// and checks byte-identical recovery.
func TestDecodeErrorsStriped(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	e, err := New(9, 5, WithGenerator(GeneratorRSView), WithConcurrency(4), WithStripeThreshold(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	orig := makeShards(t, rng, e, 100_003)
	perm := rng.Perm(9)
	shards, wantCorrupt, _ := damage(rng, orig, perm, 1, 2, false)
	got, err := e.DecodeErrors(shards)
	if err != nil {
		t.Fatalf("DecodeErrors: %v", err)
	}
	if !slices.Equal(got, wantCorrupt) {
		t.Fatalf("corrupt = %v, want %v", got, wantCorrupt)
	}
	for i := range orig {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("shard %d not restored", i)
		}
	}
}

// TestDecodeErrorsScatteredCorruption corrupts different shards in
// different byte ranges: the support union must be discovered across
// columns (shard 10 is only corrupt late, shard 3 only early).
func TestDecodeErrorsScatteredCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	e, err := New(14, 10, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	size := 3 * decodeChunk // several consistency-scan chunks
	orig := makeShards(t, rng, e, size)
	shards := cloneShards(orig)
	shards[3][7] ^= 0x11                // only in the first chunk
	shards[10][size-decodeChunk/2] ^= 1 // only in the last chunk
	got, err := e.DecodeErrors(shards)
	if err != nil {
		t.Fatalf("DecodeErrors: %v", err)
	}
	if !slices.Equal(got, []int{3, 10}) {
		t.Fatalf("corrupt = %v, want [3 10]", got)
	}
	for i := range orig {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("shard %d not restored", i)
		}
	}
}

func TestDecodeErrorsCleanShards(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	e, err := New(9, 5, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, rng, e, 512)
	want := cloneShards(shards)
	got, err := e.DecodeErrors(shards)
	if err != nil || len(got) != 0 {
		t.Fatalf("DecodeErrors on clean shards = (%v, %v), want ([], nil)", got, err)
	}
	for i := range want {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatal("clean shards must not be altered")
		}
	}
}

func TestDecodeErrorsRequiresRSView(t *testing.T) {
	e, err := New(9, 5) // default Cauchy generator
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 9)
	for i := range shards {
		shards[i] = make([]byte, 16)
	}
	if _, err := e.DecodeErrors(shards); !errors.Is(err, ErrNoSyndromes) {
		t.Fatalf("DecodeErrors on Cauchy generator = %v, want ErrNoSyndromes", err)
	}
	if e.MaxErrors(0) != 0 {
		t.Fatal("MaxErrors must be 0 without syndrome structure")
	}
}

func TestMaxErrors(t *testing.T) {
	e, err := New(14, 10, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	for f, want := range map[int]int{0: 2, 1: 1, 2: 1, 3: 0, 4: 0, 5: 0} {
		if got := e.MaxErrors(f); got != want {
			t.Fatalf("MaxErrors(%d) = %d, want %d", f, got, want)
		}
	}
}

// TestDecodeErrorsBeyondRadius damages more shards than the radius
// allows. The decoder may detect it (ErrTooManyErrors) or, like any
// bounded-distance decoder fed garbage, land on some other codeword —
// but it must never panic, and a nil error must leave a consistent
// codeword.
func TestDecodeErrorsBeyondRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	e, err := New(14, 10, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 64)
	detected := 0
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(14)
		shards, _, _ := damage(rng, orig, perm, 3, 0, false) // radius is 2
		if _, err := e.DecodeErrors(shards); err != nil {
			if !errors.Is(err, ErrTooManyErrors) {
				t.Fatalf("beyond-radius failure class: %v", err)
			}
			detected++
		} else if ok, verr := e.Verify(shards); !ok {
			t.Fatalf("nil error left a non-codeword: %v", verr)
		}
	}
	if detected == 0 {
		t.Fatal("50 beyond-radius trials all \"succeeded\": overflow detection broken")
	}
}

func TestDecodeErrorsTooFewShards(t *testing.T) {
	e, err := New(9, 5, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 9)
	for i := 0; i < 4; i++ {
		shards[i] = make([]byte, 8)
	}
	if _, err := e.DecodeErrors(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("DecodeErrors with 4 of 5 = %v, want ErrTooFewShards", err)
	}
	if _, err := e.DecodeErrors(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("DecodeErrors with 3 shards = %v, want ErrShardCount", err)
	}
}

func TestDecodeErrorsNoParity(t *testing.T) {
	e, err := New(4, 4, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 4)
	for i := range shards {
		shards[i] = make([]byte, 8)
	}
	if got, err := e.DecodeErrors(shards); err != nil || len(got) != 0 {
		t.Fatalf("DecodeErrors with no parity = (%v, %v), want no-op", got, err)
	}
	shards[2] = nil
	if _, err := e.DecodeErrors(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("missing shard with no parity = %v, want ErrTooFewShards", err)
	}
}

// TestDecodeErrorsInto checks the caller-buffer semantics: zero-length
// entries with capacity are rebuilt in place, nil erasures are
// accounted for but left nil, the corrupt list lands in the caller's
// slice, and undersized buffers error before mutation.
func TestDecodeErrorsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	e, err := New(14, 10, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	const size = 1031
	orig := makeShards(t, rng, e, size)

	shards := cloneShards(orig)
	buf := make([]byte, size)
	shards[4] = buf[:0]   // erasure repaired into the caller's buffer
	shards[12] = nil      // erasure accounted for, not repaired
	corruptShard(rng, shards, 7)
	corrupt := make([]int, 0, 4)
	got, err := e.DecodeErrorsInto(shards, corrupt)
	if err != nil {
		t.Fatalf("DecodeErrorsInto: %v", err)
	}
	if !slices.Equal(got, []int{7}) {
		t.Fatalf("corrupt = %v, want [7]", got)
	}
	if &got[0] != &corrupt[:1][0] {
		t.Fatal("corrupt indices must land in the caller's slice")
	}
	if !bytes.Equal(shards[4], orig[4]) || &shards[4][0] != &buf[0] {
		t.Fatal("erasure must be rebuilt into the caller's buffer")
	}
	if shards[12] != nil {
		t.Fatal("nil erasure must stay nil")
	}
	for i := range orig {
		if i == 12 {
			continue
		}
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("shard %d not restored", i)
		}
	}

	shards = cloneShards(orig)
	shards[0] = make([]byte, 0, size-1)
	if _, err := e.DecodeErrorsInto(shards, nil); !errors.Is(err, ErrShardSize) {
		t.Fatalf("undersized buffer = %v, want ErrShardSize", err)
	}
}

// TestDecodeErrorsIntoZeroAlloc pins the steady-state contract: with a
// stable corruption pattern (warm errata cache) and caller-supplied
// buffers, DecodeErrorsInto performs no heap allocation.
func TestDecodeErrorsIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(58))
	e, err := New(14, 10, WithGenerator(GeneratorRSView), WithConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	const size = 8192
	orig := makeShards(t, rng, e, size)
	shards := cloneShards(orig)
	ebuf := make([]byte, size)
	corrupt := make([]int, 0, 4)
	run := func() {
		copy(shards[5], orig[5])
		shards[5][17] ^= 0x42 // same corrupt shard every iteration
		copy(shards[9], orig[9])
		shards[9] = ebuf[:0] // same erasure every iteration
		var err error
		if corrupt, err = e.DecodeErrorsInto(shards, corrupt[:0]); err != nil {
			t.Fatal(err)
		}
		if len(corrupt) != 1 || corrupt[0] != 5 {
			t.Fatalf("corrupt = %v, want [5]", corrupt)
		}
	}
	run() // warm scratch pool, errata cache, kernel tables
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("DecodeErrorsInto allocates %.1f times per op in steady state, want 0", allocs)
	}
}

// TestDecodeErrorsErrataCache checks that a stable errata pattern pays
// the solve-setup algebra once and that WithCacheSize(0) disables it.
func TestDecodeErrorsErrataCache(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	e, err := New(9, 5, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 256)
	for i := 0; i < 3; i++ {
		shards := cloneShards(orig)
		corruptShard(rng, shards, 3)
		if _, err := e.DecodeErrors(shards); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, entries := e.errataCache.stats()
	if misses != 1 || hits != 2 || entries != 1 {
		t.Fatalf("errata cache after 3 identical patterns: hits=%d misses=%d entries=%d, want 2/1/1", hits, misses, entries)
	}

	noCache, err := New(9, 5, WithGenerator(GeneratorRSView), WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	if noCache.errataCache != nil {
		t.Fatal("WithCacheSize(0) must disable the errata cache")
	}
	shards := cloneShards(orig)
	corruptShard(rng, shards, 6)
	if got, err := noCache.DecodeErrors(shards); err != nil || !slices.Equal(got, []int{6}) {
		t.Fatalf("uncached decode = (%v, %v)", got, err)
	}
}

func TestRSViewRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, sh := range shapes {
		if sh.n > 255 {
			continue
		}
		e, err := New(sh.n, sh.k, WithGenerator(GeneratorRSView))
		if err != nil {
			t.Fatalf("New(%d,%d, RSView): %v", sh.n, sh.k, err)
		}
		orig := makeShards(t, rng, e, 193)
		// Systematic prefix, verify, and erasure round trip all hold for
		// the RS-view generator too.
		if ok, err := e.Verify(orig); !ok || err != nil {
			t.Fatalf("[%d,%d] Verify = (%v, %v)", sh.n, sh.k, ok, err)
		}
		got := cloneShards(orig)
		for i := 0; i < sh.n-sh.k; i++ {
			got[i] = nil
		}
		if err := e.Reconstruct(got); err != nil {
			t.Fatalf("[%d,%d] Reconstruct: %v", sh.n, sh.k, err)
		}
		for i := range orig {
			if !bytes.Equal(got[i], orig[i]) {
				t.Fatalf("[%d,%d] shard %d mismatch", sh.n, sh.k, i)
			}
		}
	}
	if _, err := New(256, 10, WithGenerator(GeneratorRSView)); !errors.Is(err, ErrInvalidShape) {
		t.Fatalf("RSView with n=256 = %v, want ErrInvalidShape", err)
	}
	if _, err := New(5, 3, WithGenerator(Generator(99))); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("unknown generator = %v, want ErrInvalidOption", err)
	}
	if GeneratorRSView.String() != "rs-view" || GeneratorCauchy.String() != "cauchy" {
		t.Fatal("Generator.String names changed")
	}
}

// TestDecodeErrorsBruteDetectsOverflow pins the oracle's failure mode.
func TestDecodeErrorsBruteDetectsOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	e, err := New(9, 5, WithGenerator(GeneratorRSView))
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 64)
	detected := 0
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(9)
		shards, _, _ := damage(rng, orig, perm, 3, 0, false) // radius is 2
		if _, err := e.decodeErrorsBrute(shards); err != nil {
			if !errors.Is(err, ErrTooManyErrors) {
				t.Fatalf("oracle failure class: %v", err)
			}
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("oracle never detected beyond-radius damage")
	}
}

// TestConcurrentDecodeErrors hammers one Encoder's decode path from
// many goroutines with a mix of stable and alternating corruption
// patterns: the decode scratch pool, the errata cache, and the worker
// pool all run concurrently under the race detector.
func TestConcurrentDecodeErrors(t *testing.T) {
	e, err := New(9, 5, WithGenerator(GeneratorRSView), WithConcurrency(4), WithStripeThreshold(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(62))
	orig := makeShards(t, rng, e, 4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 15; iter++ {
				shards := cloneShards(orig)
				bad := iter % 2 // alternate patterns: cache hits and misses
				if seed%2 == 0 {
					bad = 3 + iter%2
				}
				corruptShard(rng, shards, bad)
				shards[8] = nil
				got, err := e.DecodeErrors(shards)
				if err != nil {
					t.Errorf("DecodeErrors: %v", err)
					return
				}
				if !slices.Equal(got, []int{bad}) {
					t.Errorf("corrupt = %v, want [%d]", got, bad)
					return
				}
				for i := range orig {
					if !bytes.Equal(shards[i], orig[i]) {
						t.Errorf("shard %d mismatch", i)
						return
					}
				}
			}
		}(int64(200 + g))
	}
	wg.Wait()
}
