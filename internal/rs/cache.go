package rs

import (
	"container/list"
	"sync"

	"repro/internal/matrix"
)

// shardKey is the survivor bitmask identifying which k shards a decode
// matrix was inverted for. 256 bits covers the maximum code length.
type shardKey [4]uint64

// matrixCache is a bounded LRU of inverted decode matrices. In steady
// state a cluster has a stable failure pattern — the same servers are
// slow or dead across many reads — so the same k x k inversion would
// otherwise be redone on every reconstruction.
type matrixCache struct {
	mu      sync.Mutex
	cap     int
	entries map[shardKey]*list.Element
	order   *list.List // front is most recently used
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key shardKey
	m   *matrix.Matrix
}

func newMatrixCache(capacity int) *matrixCache {
	return &matrixCache{
		cap:     capacity,
		entries: make(map[shardKey]*list.Element, capacity),
		order:   list.New(),
	}
}

func (c *matrixCache) get(key shardKey) (*matrix.Matrix, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).m, true
}

func (c *matrixCache) put(key shardKey, m *matrix.Matrix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).m = m
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, m: m})
}

func (c *matrixCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
