package rs

import (
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// shardKey is the survivor bitmask identifying which k shards a decode
// matrix was inverted for. 256 bits covers the maximum code length.
type shardKey [4]uint64

// matrixCache is a bounded cache of inverted decode matrices with
// approximate-LRU eviction. In steady state a cluster has a stable
// failure pattern — the same servers are slow or dead across many
// reads — so the same k x k inversion would otherwise be redone on
// every reconstruction.
//
// The cache is read-mostly by construction, so the hit path takes only
// a shared RLock for the map lookup plus two atomic stores: concurrent
// readers with a stable failure pattern never serialize on a writer
// lock. Recency is a per-entry atomic clock tick rather than a linked
// list (a list's MoveToFront would need the write lock on every hit);
// eviction scans for the minimum tick, which is fine because the cache
// is small (default 64 entries) and misses already pay an O(k^3)
// inversion.
type matrixCache struct {
	mu      sync.RWMutex
	cap     int
	entries map[shardKey]*cacheEntry
	clock   atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheEntry struct {
	key  shardKey
	m    *matrix.Matrix
	used atomic.Uint64
}

func newMatrixCache(capacity int) *matrixCache {
	return &matrixCache{
		cap:     capacity,
		entries: make(map[shardKey]*cacheEntry, capacity),
	}
}

func (c *matrixCache) get(key shardKey) (*matrix.Matrix, bool) {
	c.mu.RLock()
	e := c.entries[key]
	var m *matrix.Matrix
	if e != nil {
		m = e.m // read under the lock: put may replace it
	}
	c.mu.RUnlock()
	if e == nil {
		c.misses.Add(1)
		return nil, false
	}
	e.used.Store(c.clock.Add(1))
	c.hits.Add(1)
	return m, true
}

func (c *matrixCache) put(key shardKey, m *matrix.Matrix) {
	tick := c.clock.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.m = m
		e.used.Store(tick)
		return
	}
	for len(c.entries) >= c.cap {
		var victim *cacheEntry
		for _, e := range c.entries {
			if victim == nil || e.used.Load() < victim.used.Load() {
				victim = e
			}
		}
		delete(c.entries, victim.key)
	}
	e := &cacheEntry{key: key, m: m}
	e.used.Store(tick)
	c.entries[key] = e
}

func (c *matrixCache) stats() (hits, misses uint64, entries int) {
	c.mu.RLock()
	entries = len(c.entries)
	c.mu.RUnlock()
	return c.hits.Load(), c.misses.Load(), entries
}
