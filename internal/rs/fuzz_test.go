package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/gf256"
)

// FuzzDecodeErrors drives the syndrome decoder with fuzzer-chosen
// shape, damage pattern, and shard contents, and checks it against both
// the brute-force subset-decoding oracle and the original data, on
// every kernel tier of the dispatch ladder (gfni/avx2/table here,
// table-only under -tags purego).
func FuzzDecodeErrors(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2), uint8(0), []byte("seed data for the fuzzer"))
	f.Add(int64(2), uint8(1), uint8(1), uint8(2), []byte{0x00, 0xff, 0x13})
	f.Add(int64(3), uint8(2), uint8(2), uint8(1), bytes.Repeat([]byte{0xa5}, 300))
	f.Add(int64(4), uint8(3), uint8(0), uint8(5), []byte{})

	shapes := []struct{ n, k int }{{5, 3}, {9, 5}, {14, 10}, {8, 3}}
	encoders := make([]*Encoder, len(shapes))
	for i, sh := range shapes {
		var err error
		if encoders[i], err = New(sh.n, sh.k, WithGenerator(GeneratorRSView)); err != nil {
			f.Fatal(err)
		}
	}

	f.Fuzz(func(t *testing.T, seed int64, shapeSel, eSel, fSel uint8, data []byte) {
		enc := encoders[int(shapeSel)%len(shapes)]
		n, k := enc.N(), enc.K()
		d := n - k
		rng := rand.New(rand.NewSource(seed))
		size := 1 + len(data)%512

		// Build a valid codeword whose data shards mix the fuzz input
		// with rng filler.
		orig := make([][]byte, n)
		for i := 0; i < k; i++ {
			orig[i] = make([]byte, size)
			rng.Read(orig[i])
			for j := range orig[i] {
				if x := (i*size + j); x < len(data) {
					orig[i][j] ^= data[x]
				}
			}
		}
		if err := enc.Encode(orig); err != nil {
			t.Fatal(err)
		}

		nf := int(fSel) % (d + 1)
		ne := int(eSel) % ((d-nf)/2 + 1)
		perm := rng.Perm(n)
		damaged, wantCorrupt, _ := damage(rng, orig, perm, ne, nf, false)

		defer gf256.SetKernel("auto")
		for _, kern := range gf256.AvailableKernels() {
			if err := gf256.SetKernel(kern); err != nil {
				t.Fatal(err)
			}
			fast := cloneShards(damaged)
			got, err := enc.DecodeErrors(fast)
			if err != nil {
				t.Fatalf("kernel %s [%d,%d] e=%d f=%d size=%d: DecodeErrors: %v", kern, n, k, ne, nf, size, err)
			}
			if !slices.Equal(got, wantCorrupt) {
				t.Fatalf("kernel %s [%d,%d]: corrupt = %v, want %v", kern, n, k, got, wantCorrupt)
			}
			for i := range orig {
				if !bytes.Equal(fast[i], orig[i]) {
					t.Fatalf("kernel %s [%d,%d] e=%d f=%d: shard %d not restored", kern, n, k, ne, nf, i)
				}
			}
		}

		brute := cloneShards(damaged)
		gotBrute, err := enc.decodeErrorsBrute(brute)
		if err != nil {
			t.Fatalf("[%d,%d] e=%d f=%d: oracle: %v", n, k, ne, nf, err)
		}
		if !slices.Equal(gotBrute, wantCorrupt) {
			t.Fatalf("[%d,%d]: oracle corrupt = %v, want %v", n, k, gotBrute, wantCorrupt)
		}
		for i := range orig {
			if !bytes.Equal(brute[i], orig[i]) {
				t.Fatalf("[%d,%d]: oracle shard %d not restored", n, k, i)
			}
		}

		// Beyond-radius damage must fail loudly or land on a codeword,
		// never panic or return a non-codeword silently.
		if d >= 1 {
			over := cloneShards(orig)
			for _, p := range perm[:d/2+1] {
				corruptShard(rng, over, p)
			}
			if _, err := enc.DecodeErrors(over); err == nil {
				if ok, _ := enc.Verify(over); !ok {
					t.Fatalf("[%d,%d]: beyond-radius decode returned nil error on a non-codeword", n, k)
				}
			} else if !errors.Is(err, ErrTooManyErrors) {
				t.Fatalf("[%d,%d]: beyond-radius failure class: %v", n, k, err)
			}
		}
	})
}
