package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// Regression tests for the codec API bugfixes that rode along with the
// SODA protocol PR. Each test fails on the pre-fix code.

// TestEncodeKeepsParityCapacity checks that Encode honors the buf[:0]
// convention ReconstructInto documents: a zero-length parity entry
// whose capacity covers the data size is resliced in place, not
// replaced by a fresh allocation that drops the caller's buffer.
func TestEncodeKeepsParityCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const size = 2048
	e, err := New(9, 5, WithConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	want := makeShards(t, rng, e, size)

	shards := cloneShards(want)
	backing := make([][]byte, e.N())
	for i := e.K(); i < e.N(); i++ {
		backing[i] = make([]byte, size)
		shards[i] = backing[i][:0] // capacity-ready, zero-length
	}
	if err := e.Encode(shards); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := e.K(); i < e.N(); i++ {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("parity shard %d differs from reference encode", i)
		}
		if &shards[i][0] != &backing[i][0] {
			t.Fatalf("parity shard %d was reallocated; want the caller's buffer resliced in place", i)
		}
	}

	// A parity entry with insufficient capacity is still allocated.
	shards = cloneShards(want)
	shards[e.K()] = make([]byte, 0, size-1)
	if err := e.Encode(shards); err != nil {
		t.Fatalf("Encode with short capacity: %v", err)
	}
	if !bytes.Equal(shards[e.K()], want[e.K()]) {
		t.Fatalf("parity shard %d differs after fallback allocation", e.K())
	}
}

// TestEncodeCapacityReadyAllocs counts allocations: with every parity
// entry capacity-ready (len 0, cap >= size), Encode must behave like
// EncodeInto and not touch the heap.
func TestEncodeCapacityReadyAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const size = 4096
	e, err := New(9, 5, WithConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, rng, e, size)
	run := func() {
		for i := e.K(); i < e.N(); i++ {
			shards[i] = shards[i][:0]
		}
		if err := e.Encode(shards); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the kernel tables
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("Encode with capacity-ready parity allocates %.1f times per op, want 0", allocs)
	}
}

// TestVerifySkipsFlaggedParity checks that once a parity shard is
// flagged as mismatching, later chunks no longer spend kernel work
// recomputing it: the outputs handed to codeRange shrink to the
// unflagged set, and the scan stops entirely once every parity shard
// is flagged.
func TestVerifySkipsFlaggedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	e, err := New(9, 5, WithConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 4
	size := chunks * verifyChunk
	shards := makeShards(t, rng, e, size)
	np := e.N() - e.K()

	var perChunk []int
	testHookVerifyChunk = func(live int) { perChunk = append(perChunk, live) }
	defer func() { testHookVerifyChunk = nil }()

	// Corrupt parity shard k (inside chunk 0) and parity shard k+2
	// (inside chunk 1): chunk 0 computes np outputs, chunk 1 np-1,
	// chunks 2+ np-2.
	shards[e.K()][17] ^= 0xA5
	shards[e.K()+2][verifyChunk+29] ^= 0x3C
	ok, err := e.Verify(shards)
	if ok {
		t.Fatal("Verify passed corrupted shards")
	}
	var pm *ParityMismatchError
	if !errors.As(err, &pm) || len(pm.Indices) != 2 || pm.Indices[0] != e.K() || pm.Indices[1] != e.K()+2 {
		t.Fatalf("Verify error = %v, want parity mismatch at [%d %d]", err, e.K(), e.K()+2)
	}
	want := []int{np, np - 1, np - 2, np - 2}
	if len(perChunk) != len(want) {
		t.Fatalf("Verify ran %d chunks (%v), want %d", len(perChunk), perChunk, len(want))
	}
	for i := range want {
		if perChunk[i] != want[i] {
			t.Fatalf("chunk %d computed %d parity outputs (%v), want %v", i, perChunk[i], perChunk, want)
		}
	}

	// With every parity shard corrupt in chunk 0, the scan flags them
	// all there and stops: exactly one chunk of kernel work.
	perChunk = perChunk[:0]
	shards = makeShards(t, rng, e, size)
	for i := e.K(); i < e.N(); i++ {
		shards[i][3] ^= 0xFF
	}
	if ok, _ := e.Verify(shards); ok {
		t.Fatal("Verify passed fully corrupted parity")
	}
	if len(perChunk) != 1 || perChunk[0] != np {
		t.Fatalf("fully-corrupt scan ran chunks %v, want [%d]", perChunk, np)
	}

	// And a clean verify still walks every chunk at full width.
	perChunk = perChunk[:0]
	shards = makeShards(t, rng, e, size)
	if ok, err := e.Verify(shards); !ok || err != nil {
		t.Fatalf("Verify(clean) = %v, %v", ok, err)
	}
	for i, got := range perChunk {
		if got != np {
			t.Fatalf("clean chunk %d computed %d outputs, want %d", i, got, np)
		}
	}
	if len(perChunk) != chunks {
		t.Fatalf("clean scan ran %d chunks, want %d", len(perChunk), chunks)
	}
}

// TestPoolEnsureAfterClose checks that a striped call on a closed
// Encoder neither spawns workers nor corrupts results: ensure is a
// no-op once the pool is closed, trySubmit refuses the tasks, and the
// caller codes every stripe inline. Runs under -race in the race lane.
func TestPoolEnsureAfterClose(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	size := 256 << 10 // well above the stripe threshold
	e, err := New(9, 5, WithConcurrency(4), WithStripeThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.pool == nil {
		t.Fatal("expected a worker pool with WithConcurrency(4)")
	}
	ref, err := New(9, 5, WithConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	want := makeShards(t, rng, ref, size)

	e.Close() // close before any striped work ever ran
	shards := cloneShards(want)
	for i := e.K(); i < e.N(); i++ {
		shards[i] = nil
	}
	if err := e.Encode(shards); err != nil {
		t.Fatalf("Encode after Close: %v", err)
	}
	if e.pool.workersStarted() {
		t.Fatal("Encode after Close started pool workers")
	}
	for i := range want {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("shard %d differs after closed-pool encode", i)
		}
	}

	// Reconstruct above the threshold takes the same striped path.
	shards[0], shards[1] = nil, nil
	if err := e.Reconstruct(shards); err != nil {
		t.Fatalf("Reconstruct after Close: %v", err)
	}
	if e.pool.workersStarted() {
		t.Fatal("Reconstruct after Close started pool workers")
	}
	for i := range want {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("shard %d differs after closed-pool reconstruct", i)
		}
	}
}
