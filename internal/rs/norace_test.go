//go:build !race

package rs

const raceEnabled = false
