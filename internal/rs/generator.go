package rs

import (
	"fmt"

	"repro/internal/matrix"
)

// Generator selects how an Encoder's systematic [n, k] generator matrix
// is built. Both strategies produce MDS codes with an identity top
// block (shards 0..k-1 are the data), and both erase-decode the same
// way; they differ in the extra algebraic structure available on top.
type Generator int

const (
	// GeneratorCauchy stacks an identity over a Cauchy block. It is the
	// default: valid for any n <= 256 and marginally cheaper to build.
	// Its parity checks have no BCH structure, so corruption can be
	// detected (Verify) but not located — DecodeErrors is unavailable.
	GeneratorCauchy Generator = iota
	// GeneratorRSView is the evaluation-point (classical Reed-Solomon)
	// view: codeword position i carries q(alpha_i) for the degree<k
	// polynomial interpolating the data, with alpha_i = matrix.EvalPoints.
	// Its dual is a generalized RS code, so syndromes are weighted power
	// sums and Berlekamp-Massey error location applies: this is the
	// generator DecodeErrors requires. Needs n <= 255.
	GeneratorRSView
)

// String names the generator strategy.
func (g Generator) String() string {
	switch g {
	case GeneratorCauchy:
		return "cauchy"
	case GeneratorRSView:
		return "rs-view"
	default:
		return fmt.Sprintf("generator(%d)", int(g))
	}
}

// WithGenerator selects the generator strategy. The default is
// GeneratorCauchy; build with GeneratorRSView to enable DecodeErrors.
func WithGenerator(g Generator) Option {
	return func(e *Encoder) error {
		if g != GeneratorCauchy && g != GeneratorRSView {
			return fmt.Errorf("%w: unknown generator %d", ErrInvalidOption, int(g))
		}
		e.genKind = g
		return nil
	}
}

// Generator reports the strategy the Encoder was built with.
func (e *Encoder) Generator() Generator { return e.genKind }

// syndromeStructure is the per-strategy algebra the error decoder
// needs: the parity-check matrix whose rows are the syndrome
// coefficients, plus the locator point and column multiplier of every
// shard position. It is nil for strategies without BCH-style syndromes.
type syndromeStructure struct {
	check  *matrix.Matrix // (n-k) x n, check * codeword = 0
	points []byte         // points[i]: locator of shard i (nonzero, distinct)
	mults  []byte         // mults[i]: column multiplier, check[t][i] = mults[i]*points[i]^t
}

// buildGenerator constructs the generator matrix and, when the strategy
// supports it, the syndrome structure for an [n, k] code.
func buildGenerator(g Generator, n, k int) (*matrix.Matrix, *syndromeStructure, error) {
	switch g {
	case GeneratorCauchy:
		gen, err := matrix.SystematicCauchy(n, k)
		return gen, nil, err
	case GeneratorRSView:
		if n > 255 {
			return nil, nil, fmt.Errorf("%w: n=%d > 255 (the rs-view generator needs distinct nonzero evaluation points)", ErrInvalidShape, n)
		}
		gen, err := matrix.SystematicVandermonde(n, k)
		if err != nil {
			return nil, nil, err
		}
		if n == k {
			return gen, nil, nil // no parity rows: nothing to locate errors with
		}
		check, err := matrix.GRSParityCheck(n, k)
		if err != nil {
			return nil, nil, err
		}
		points := matrix.EvalPoints(n)
		return gen, &syndromeStructure{
			check:  check,
			points: points,
			mults:  matrix.GRSDualMultipliers(points),
		}, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown generator %d", ErrInvalidOption, int(g))
	}
}
