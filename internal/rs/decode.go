package rs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"slices"

	"repro/internal/gf256"
	"repro/internal/matrix"
)

// Syndrome-based error-and-erasure decoding.
//
// SODA_err (Konwar et al., IPDPS 2016) must tolerate servers that
// return *wrong* coded elements, not just servers that return nothing:
// during steady state the paper requires n >= k + 2e for e corrupt
// responses, and with f additional erasures the decoding radius is
// 2e + f <= n - k. DecodeErrors realizes that bound: it locates and
// corrects the corrupt shards without being told which they are.
//
// The pipeline, in order of bytes touched:
//
//  1. Syndromes. The RS-view code's parity-check rows are weighted
//     power sums (matrix.GRSParityCheck), so the d = n-k syndrome
//     shards S_t = sum_i H[t][i]*shard_i are computed in one fused,
//     L2-tiled, worker-pool-striped pass over all present shards —
//     the same codeStriped machinery Encode uses. This is the only
//     full-width pass over the input: everything after it reads the
//     much smaller syndrome shards. All-zero syndromes (the healthy
//     case) cost exactly this one pass plus a scan.
//
//  2. Support discovery. A corrupt byte column makes the syndrome
//     column a power-sum sequence of its errata locators, so
//     Berlekamp-Massey plus Chien search (gf256/bm.go) on a single
//     mismatching column yields error positions. Because real
//     corruption is shard-granular, a handful of columns — usually
//     one — reveals the whole support; the consistency check below
//     tells us when the support is complete, so we never scan columns
//     we do not need.
//
//  3. Magnitudes, in bulk. With the errata support P (erasures F plus
//     located errors U, m = |P|) fixed, the magnitudes of every byte
//     column solve the same m x m system: the first m syndrome rows
//     restricted to P, which is a nonsingular diag(w)*Vandermonde
//     block. The inverse is applied to the syndrome shards with the
//     fused kernels — magnitude shards = M^-1 * syndrome shards — and
//     the d-m leftover syndrome rows are recomputed from the
//     magnitudes and compared: they agree if and only if the support
//     covers every corrupt column (any miss would need an errata
//     vector of weight > d to fool d independent GRS rows), so a
//     mismatch column feeds back into step 2. The per-pattern solve
//     setup is cached like reconstruction's decode matrices, keyed by
//     the errata bitmask, so a stable corruption pattern pays the
//     algebra once.
//
//  4. Apply. Erased shards receive their magnitude shard directly
//     (they were read as zero); corrupt shards are fixed by XOR.
//
// decodeErrorsBrute is the combinatorial alternative kept as the test
// oracle and benchmark baseline: C(n, e) trial erasure-decodes with a
// full re-encode check each. BenchmarkDecodeErrors compares the two.

// DecodeErrors locates and corrects corrupt shards. Up to f shards may
// be missing (nil or empty: erasures) and up to e present shards may be
// silently corrupt, for any e, f with 2e + f <= n-k. Erased shards are
// allocated and filled, corrupt shards are corrected in place, and the
// ascending indices of the shards that were actually corrupt are
// returned. Shards beyond the decoding radius return ErrTooManyErrors.
// The Encoder must have been built with WithGenerator(GeneratorRSView);
// other generators return ErrNoSyndromes.
func (e *Encoder) DecodeErrors(shards [][]byte) ([]int, error) {
	return e.decodeErrors(shards, nil, false)
}

// DecodeErrorsInto is the steady-state, allocation-free form of
// DecodeErrors. Erasure handling follows ReconstructInto: a shard to
// repair is a zero-length slice with capacity for the shard size, and a
// nil entry is an erasure that is accounted for but not rebuilt.
// Corrupt shard indices are appended to corrupt[:0] and returned; give
// it capacity n-k to keep the call allocation-free.
func (e *Encoder) DecodeErrorsInto(shards [][]byte, corrupt []int) ([]int, error) {
	return e.decodeErrors(shards, corrupt[:0], true)
}

// MaxErrors returns the number of silently corrupt shards DecodeErrors
// can locate alongside the given number of erasures: floor((n-k-f)/2),
// or 0 when the generator has no syndrome structure.
func (e *Encoder) MaxErrors(erasures int) int {
	if e.syn == nil {
		return 0
	}
	m := (e.n - e.k - erasures) / 2
	if m < 0 {
		m = 0
	}
	return m
}

// decodeChunk bounds the scratch of the consistency scan (step 3's
// compare of recomputed vs actual syndrome rows).
const decodeChunk = 32 << 10

// decodeScratch recycles every buffer of the decode pipeline so
// DecodeErrorsInto performs no steady-state heap allocation. The large
// buf holds the d syndrome shards and up to d magnitude shards; the
// rest are fixed-size views and small-field working arrays.
type decodeScratch struct {
	buf  []byte   // synd (d*size) then mags (d*size), grown on demand
	synd [][]byte // cap d views into buf
	mags [][]byte // cap d views into buf

	present []int    // indices of present shards
	erased  []int    // ascending erasure positions (F)
	errs    []int    // ascending located error positions (U)
	errata  []int    // merge of erased+errs, aligned with mags
	ins     [][]byte // cap n input views
	hbuf    []byte   // cap d*n packed present-restricted check rows
	hrows   [][]byte // cap d views into hbuf
	coeffs  [][]byte // cap d coefficient-row views for the solve
	chunk   [][]byte // cap d chunked magnitude views for the scan
	cmp     []byte   // cap decodeChunk expected-syndrome scratch

	gamma  []byte // erasure locator, cap n+1
	gammaF int    // erasure count gamma was built for; -1 = not built
	xs     []byte // cap n locator gather scratch
	scol   []byte // cap d one syndrome column
	xi     []byte // cap d modified syndromes
	roots  []int  // cap n Chien results
	bm     gf256.BM
}

func (e *Encoder) getDecodeScratch() *decodeScratch {
	s, _ := e.decscratch.Get().(*decodeScratch)
	if s == nil {
		d := e.n - e.k
		s = &decodeScratch{
			synd:    make([][]byte, d),
			mags:    make([][]byte, d),
			present: make([]int, 0, e.n),
			erased:  make([]int, 0, e.n),
			errs:    make([]int, 0, e.n),
			errata:  make([]int, 0, e.n),
			ins:     make([][]byte, e.n),
			hbuf:    make([]byte, d*e.n),
			hrows:   make([][]byte, d),
			coeffs:  make([][]byte, d),
			chunk:   make([][]byte, d),
			cmp:     make([]byte, decodeChunk),
			gamma:   make([]byte, 0, e.n+1),
			xs:      make([]byte, 0, e.n),
			scol:    make([]byte, d),
			xi:      make([]byte, 0, d),
			roots:   make([]int, 0, e.n),
		}
	}
	s.gammaF = -1
	return s
}

func (e *Encoder) putDecodeScratch(s *decodeScratch) {
	for i := range s.ins {
		s.ins[i] = nil // do not pin shard memory from the pool
	}
	e.decscratch.Put(s)
}

func (e *Encoder) decodeErrors(shards [][]byte, corrupt []int, into bool) ([]int, error) {
	if len(shards) != e.n {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	d := e.n - e.k
	if d == 0 {
		// No redundancy: nothing can be missing or even detected.
		for i, sh := range shards {
			if len(sh) == 0 {
				return nil, fmt.Errorf("%w: shard %d missing with no parity", ErrTooFewShards, i)
			}
		}
		return corrupt, nil
	}
	if e.syn == nil {
		return nil, fmt.Errorf("%w (generator %s; use WithGenerator(GeneratorRSView))", ErrNoSyndromes, e.genKind)
	}
	s := e.getDecodeScratch()
	defer e.putDecodeScratch(s)

	size := -1
	s.present = s.present[:0]
	s.erased = s.erased[:0]
	for i, sh := range shards {
		if len(sh) == 0 {
			s.erased = append(s.erased, i)
			continue
		}
		if size < 0 {
			size = len(sh)
		} else if len(sh) != size {
			return nil, fmt.Errorf("%w: shard %d has size %d, want %d", ErrShardSize, i, len(sh), size)
		}
		s.present = append(s.present, i)
	}
	if len(s.present) < e.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(s.present), e.k)
	}
	f := len(s.erased)
	if into {
		for _, p := range s.erased {
			if shards[p] != nil && cap(shards[p]) < size {
				return nil, fmt.Errorf("%w: shard %d buffer capacity %d < shard size %d", ErrShardSize, p, cap(shards[p]), size)
			}
		}
	}

	// Step 1: fused syndrome shards over the present shards. Erased
	// positions read as zero, which is exactly how their magnitudes are
	// defined, so they are simply skipped.
	np := len(s.present)
	for t := 0; t < d; t++ {
		row := s.hbuf[t*np : (t+1)*np]
		for j, idx := range s.present {
			row[j] = e.syn.check.At(t, idx)
		}
		s.hrows[t] = row
	}
	need := 2 * d * size
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	buf := s.buf[:need]
	for t := 0; t < d; t++ {
		s.synd[t] = buf[t*size : (t+1)*size]
	}
	ins := s.ins[:np]
	for j, idx := range s.present {
		ins[j] = shards[idx]
	}
	e.codeStriped(s.hrows[:d], ins, s.synd[:d], size)

	// Steps 2+3: alternate bulk magnitude solves with single-column
	// support discovery until the leftover syndrome rows are consistent.
	// Each round either finishes or adds at least one new error
	// position, and the radius check bounds the rounds by (d-f)/2.
	s.errs = s.errs[:0]
	var setup *matrix.Matrix
	for {
		m := f + len(s.errs)
		mergeSorted(&s.errata, s.erased, s.errs)
		if m > 0 {
			var err error
			if setup, err = e.errataSetup(s.errata, m); err != nil {
				return nil, err
			}
			for j := 0; j < m; j++ {
				s.coeffs[j] = setup.Row(j)
				s.mags[j] = buf[(d+j)*size : (d+j+1)*size]
			}
			e.codeStriped(s.coeffs[:m], s.synd[:m], s.mags[:m], size)
		}
		col := e.inconsistentColumn(s, setup, m, d, size)
		if col < 0 {
			break
		}
		for t := 0; t < d; t++ {
			s.scol[t] = s.synd[t][col]
		}
		if err := e.discoverSupport(s, d, f); err != nil {
			return nil, err
		}
	}

	// Step 4: write erasure magnitudes out, XOR error magnitudes in.
	ei := 0
	for j, p := range s.errata {
		if ei < len(s.erased) && s.erased[ei] == p {
			ei++
			if into {
				if shards[p] == nil {
					continue // accounted for, but caller does not want it
				}
				shards[p] = shards[p][:size]
			} else {
				shards[p] = make([]byte, size)
			}
			copy(shards[p], s.mags[j])
			continue
		}
		gf256.AddSlice(shards[p], s.mags[j])
		corrupt = append(corrupt, p)
	}
	return corrupt, nil
}

// inconsistentColumn returns the byte offset of the first column whose
// syndromes are not explained by the solved magnitudes, or -1 when all
// leftover rows agree. With no errata assumed (m == 0) it is a plain
// nonzero scan of the syndrome shards; otherwise each leftover row
// t >= m is recomputed from the magnitude shards in bounded chunks and
// compared.
func (e *Encoder) inconsistentColumn(s *decodeScratch, setup *matrix.Matrix, m, d, size int) int {
	for t := m; t < d; t++ {
		if m == 0 {
			if i := firstNonzero(s.synd[t]); i >= 0 {
				return i
			}
			continue
		}
		row := setup.Row(t)
		for lo := 0; lo < size; lo += decodeChunk {
			hi := lo + decodeChunk
			if hi > size {
				hi = size
			}
			for j := 0; j < m; j++ {
				s.chunk[j] = s.mags[j][lo:hi]
			}
			cmp := s.cmp[:hi-lo]
			gf256.MulMulti(row, s.chunk[:m], cmp)
			if !bytes.Equal(cmp, s.synd[t][lo:hi]) {
				for i := range cmp {
					if cmp[i] != s.synd[t][lo+i] {
						return lo + i
					}
				}
			}
		}
	}
	return -1
}

// discoverSupport runs the single-column errata algebra on the gathered
// syndrome column s.scol: erasure-modified syndromes, Berlekamp-Massey,
// Chien search. Newly located error positions are inserted into s.errs;
// failure to make progress within the decoding radius is
// ErrTooManyErrors.
func (e *Encoder) discoverSupport(s *decodeScratch, d, f int) error {
	if s.gammaF != f {
		s.xs = s.xs[:0]
		for _, p := range s.erased {
			s.xs = append(s.xs, e.syn.points[p])
		}
		s.gamma = gf256.ErrataLocatorInto(s.gamma, s.xs)
		s.gammaF = f
	}
	s.xi = gf256.ErasureModifiedSyndromes(s.xi, s.scol[:d], s.gamma)
	lambda := s.bm.Run(s.xi)
	nu := gf256.PolyDegree(lambda)
	if nu <= 0 || 2*nu > d-f {
		// An inconsistent column with no locatable error (nu == 0) or a
		// locator past the radius: the shards are outside 2e + f <= n-k.
		return fmt.Errorf("%w: column locator degree %d with %d erasures, %d parity shards", ErrTooManyErrors, nu, f, d)
	}
	s.roots = gf256.ChienSearchInto(s.roots, lambda, e.syn.points)
	if len(s.roots) != nu {
		return fmt.Errorf("%w: locator degree %d with %d roots", ErrTooManyErrors, nu, len(s.roots))
	}
	added := 0
	for _, p := range s.roots {
		if slices.Contains(s.erased, p) || slices.Contains(s.errs, p) {
			continue
		}
		s.errs = append(s.errs, p)
		added++
	}
	if added > 0 {
		slices.Sort(s.errs)
	}
	if added == 0 {
		return fmt.Errorf("%w: no new error position from an inconsistent column", ErrTooManyErrors)
	}
	if 2*len(s.errs)+f > d {
		return fmt.Errorf("%w: located %d errors and %d erasures against %d parity shards", ErrTooManyErrors, len(s.errs), f, d)
	}
	return nil
}

// errataSetup returns the cached d x m solve matrix for the ascending
// errata positions P: rows 0..m-1 hold the inverse of the first m
// syndrome rows restricted to P (magnitudes = inverse * syndromes), and
// rows m..d-1 hold the raw leftover rows used by the consistency scan.
func (e *Encoder) errataSetup(positions []int, m int) (*matrix.Matrix, error) {
	d := e.n - e.k
	var key shardKey
	for _, p := range positions {
		key[p>>6] |= 1 << (p & 63)
	}
	if e.errataCache != nil {
		if mtx, ok := e.errataCache.get(key); ok {
			return mtx, nil
		}
	}
	top := matrix.New(m, m)
	for t := 0; t < m; t++ {
		for j, p := range positions {
			top.Set(t, j, e.syn.check.At(t, p))
		}
	}
	inv, err := top.Invert()
	if err != nil {
		// Unreachable for distinct positions (the block is a scaled
		// Vandermonde), but surface it rather than corrupt data.
		return nil, fmt.Errorf("rs: errata solve for positions %v: %w", positions, err)
	}
	setup := matrix.New(d, m)
	for t := 0; t < m; t++ {
		copy(setup.Row(t), inv.Row(t))
	}
	for t := m; t < d; t++ {
		row := setup.Row(t)
		for j, p := range positions {
			row[j] = e.syn.check.At(t, p)
		}
	}
	if e.errataCache != nil {
		e.errataCache.put(key, setup)
	}
	return setup, nil
}

// decodeErrorsBrute is the combinatorial reference decoder and the
// benchmark baseline DecodeErrors is measured against: for every
// candidate corrupt set T of growing size, erase T, reconstruct, and
// accept the first candidate whose re-encoded codeword matches every
// untouched shard. That is sum_e C(n, e) trial decodes, each paying a
// k x k inversion plus a full-shard re-encode — the cost DecodeErrors's
// single fused syndrome pass replaces. Works for any generator.
func (e *Encoder) decodeErrorsBrute(shards [][]byte) ([]int, error) {
	if len(shards) != e.n {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.n)
	}
	var present []int
	f := 0
	for i, sh := range shards {
		if len(sh) == 0 {
			f++
		} else {
			present = append(present, i)
		}
	}
	if len(present) < e.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), e.k)
	}
	maxE := (e.n - e.k - f) / 2
	for etry := 0; etry <= maxE; etry++ {
		var found []int
		var result [][]byte
		combinations(len(present), etry, func(pick []int) bool {
			cand := make([][]byte, e.n)
			for _, idx := range present {
				cand[idx] = shards[idx]
			}
			for _, j := range pick {
				cand[present[j]] = nil
			}
			if err := e.Reconstruct(cand); err != nil {
				return false
			}
			if ok, _ := e.Verify(cand); !ok {
				return false
			}
			found = make([]int, 0, etry)
			for _, j := range pick {
				p := present[j]
				if !bytes.Equal(cand[p], shards[p]) {
					found = append(found, p)
				}
			}
			result = cand
			return true
		})
		if result != nil {
			for i := range shards {
				if len(shards[i]) == 0 {
					shards[i] = result[i]
				} else if !bytes.Equal(shards[i], result[i]) {
					copy(shards[i], result[i])
				}
			}
			return found, nil
		}
	}
	return nil, fmt.Errorf("%w: no codeword within %d errors of the shards", ErrTooManyErrors, maxE)
}

// combinations invokes fn on every size-r index subset of [0, n) in
// lexicographic order until fn returns true.
func combinations(n, r int, fn func([]int) bool) {
	if r > n {
		return
	}
	pick := make([]int, r)
	for i := range pick {
		pick[i] = i
	}
	for {
		if fn(pick) {
			return
		}
		i := r - 1
		for ; i >= 0 && pick[i] == n-r+i; i-- {
		}
		if i < 0 {
			return
		}
		pick[i]++
		for j := i + 1; j < r; j++ {
			pick[j] = pick[j-1] + 1
		}
	}
}

// mergeSorted merges two ascending, disjoint int slices into *dst.
func mergeSorted(dst *[]int, a, b []int) {
	out := (*dst)[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	*dst = out
}

// firstNonzero returns the index of the first nonzero byte, eight
// bytes per probe, or -1 for an all-zero slice.
func firstNonzero(b []byte) int {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		if binary.LittleEndian.Uint64(b[i:]) != 0 {
			break
		}
	}
	for ; i < len(b); i++ {
		if b[i] != 0 {
			return i
		}
	}
	return -1
}
