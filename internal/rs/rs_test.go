package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/matrix"
)

var shapes = []struct{ n, k int }{
	{5, 3},  // SODA's running example scale
	{9, 5},
	{14, 10},
	{8, 3},  // n >= 2k: allows parity-only survivor sets
	{1, 1},  // degenerate replication-free code
	{4, 4},  // no parity at all
}

func makeShards(t *testing.T, rng *rand.Rand, e *Encoder, size int) [][]byte {
	t.Helper()
	shards := make([][]byte, e.N())
	for i := 0; i < e.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := e.Encode(shards); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return shards
}

func cloneShards(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		if s != nil {
			out[i] = append([]byte(nil), s...)
		}
	}
	return out
}

// TestRoundTripAllErasurePatterns encodes, drops every possible set of
// up to n-k shards (exhaustively for small shapes), reconstructs, and
// compares — including survivor sets that are parity-only.
func TestRoundTripAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range shapes {
		e, err := New(sh.n, sh.k)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", sh.n, sh.k, err)
		}
		orig := makeShards(t, rng, e, 257) // odd size to hit kernel tails
		// Iterate over all erasure masks with <= n-k dropped shards.
		for mask := 0; mask < 1<<sh.n; mask++ {
			dropped := 0
			for b := mask; b != 0; b >>= 1 {
				dropped += b & 1
			}
			if dropped > sh.n-sh.k {
				continue
			}
			got := cloneShards(orig)
			for i := 0; i < sh.n; i++ {
				if mask&(1<<i) != 0 {
					got[i] = nil
				}
			}
			if err := e.Reconstruct(got); err != nil {
				t.Fatalf("[%d,%d] mask %b: Reconstruct: %v", sh.n, sh.k, mask, err)
			}
			for i := range orig {
				if !bytes.Equal(got[i], orig[i]) {
					t.Fatalf("[%d,%d] mask %b: shard %d mismatch", sh.n, sh.k, mask, i)
				}
			}
		}
	}
}

// TestParityOnlySurvivors drops every data shard of an [8,3] code and
// recovers the data purely from parity.
func TestParityOnlySurvivors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, err := New(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 1024)
	got := cloneShards(orig)
	got[0], got[1], got[2] = nil, nil, nil
	got[3], got[4] = nil, nil // 5 erasures = n-k
	if err := e.Reconstruct(got); err != nil {
		t.Fatalf("Reconstruct from parity-only survivors: %v", err)
	}
	for i := range orig {
		if !bytes.Equal(got[i], orig[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestReconstructDataLeavesParityMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 512)
	got := cloneShards(orig)
	got[1] = nil // data
	got[7] = nil // parity
	if err := e.ReconstructData(got); err != nil {
		t.Fatalf("ReconstructData: %v", err)
	}
	if !bytes.Equal(got[1], orig[1]) {
		t.Fatal("data shard 1 not recovered")
	}
	if got[7] != nil {
		t.Fatal("ReconstructData must not touch parity shards")
	}
}

func TestVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, rng, e, 512)
	ok, err := e.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify on intact shards = (%v, %v), want (true, nil)", ok, err)
	}
	shards[6][100] ^= 0xA5
	ok, err = e.Verify(shards)
	if ok || !errors.Is(err, ErrParityMismatch) {
		t.Fatalf("Verify on corrupted parity = (%v, %v), want (false, ErrParityMismatch)", ok, err)
	}
	if err == nil || !strings.Contains(err.Error(), "parity shard 6") {
		t.Fatalf("Verify error %q does not name the mismatching parity shard 6", err)
	}
	shards[6][100] ^= 0xA5
	shards[2][0] ^= 1 // corrupt data: parity no longer matches
	ok, err = e.Verify(shards)
	if ok || !errors.Is(err, ErrParityMismatch) {
		t.Fatalf("Verify on corrupted data = (%v, %v), want (false, ErrParityMismatch)", ok, err)
	}
}

// TestVerifyReportsAllMismatches corrupts parity shards in different
// byte ranges (and in descending index order across chunks) and checks
// the error lists every mismatching index, ascending, exactly once.
func TestVerifyReportsAllMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	size := 3 * verifyChunk / 2 // two chunks, so mismatches span chunk scans
	shards := makeShards(t, rng, e, size)
	shards[8][17] ^= 1            // first chunk, high index
	shards[8][size-1] ^= 1        // second chunk too: must not be double-reported
	shards[6][verifyChunk+5] ^= 1 // second chunk, low index
	ok, err := e.Verify(shards)
	if ok || !errors.Is(err, ErrParityMismatch) {
		t.Fatalf("Verify = (%v, %v), want (false, ErrParityMismatch)", ok, err)
	}
	var pm *ParityMismatchError
	if !errors.As(err, &pm) {
		t.Fatalf("Verify error %T is not a *ParityMismatchError", err)
	}
	if want := []int{6, 8}; len(pm.Indices) != 2 || pm.Indices[0] != want[0] || pm.Indices[1] != want[1] {
		t.Fatalf("Verify mismatch indices = %v, want %v", pm.Indices, want)
	}
	// A corrupt data shard flips every parity shard: the estimator's
	// "all parities bad" signal.
	shards = makeShards(t, rng, e, 512)
	shards[2][100] ^= 0x5a
	_, err = e.Verify(shards)
	if !errors.As(err, &pm) || len(pm.Indices) != 4 {
		t.Fatalf("Verify with corrupt data reported %v, want all 4 parity shards", err)
	}
}

// TestEncodeInto checks the allocation-free encode path: preallocated
// parity matches Encode, and missing parity is an error rather than an
// allocation.
func TestEncodeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := makeShards(t, rng, e, 513)
	got := make([][]byte, 9)
	for i := 0; i < 5; i++ {
		got[i] = append([]byte(nil), want[i]...)
	}
	if err := e.EncodeInto(got); !errors.Is(err, ErrShardSize) {
		t.Fatalf("EncodeInto with missing parity = %v, want ErrShardSize", err)
	}
	for i := 5; i < 9; i++ {
		got[i] = make([]byte, 513)
	}
	if err := e.EncodeInto(got); err != nil {
		t.Fatalf("EncodeInto: %v", err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("EncodeInto shard %d differs from Encode", i)
		}
	}
}

// TestReconstructInto checks the caller-supplied-buffer repair path:
// zero-length entries with capacity are filled in place, nil entries
// are skipped, and an undersized buffer is an error.
func TestReconstructInto(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	const size = 1031
	orig := makeShards(t, rng, e, size)

	bufData := make([]byte, size)
	bufParity := make([]byte, size)
	got := cloneShards(orig)
	got[1] = bufData[:0]
	got[7] = bufParity[:0]
	got[3] = nil // absent and not to be repaired
	if err := e.ReconstructInto(got); err != nil {
		t.Fatalf("ReconstructInto: %v", err)
	}
	if !bytes.Equal(got[1], orig[1]) || !bytes.Equal(got[7], orig[7]) {
		t.Fatal("ReconstructInto did not repair the targeted shards")
	}
	if &got[1][0] != &bufData[0] || &got[7][0] != &bufParity[0] {
		t.Fatal("ReconstructInto must fill the caller's buffers in place")
	}
	if got[3] != nil {
		t.Fatal("ReconstructInto must leave nil shards untouched")
	}

	// Undersized buffer: error before any mutation.
	got = cloneShards(orig)
	got[2] = make([]byte, 0, size-1)
	if err := e.ReconstructInto(got); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ReconstructInto with undersized buffer = %v, want ErrShardSize", err)
	}
}

func TestSystematicPrefixIsData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, 3)
	shards := make([][]byte, 5)
	for i := range data {
		data[i] = make([]byte, 64)
		rng.Read(data[i])
		shards[i] = append([]byte(nil), data[i]...)
	}
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(shards[i], data[i]) {
			t.Fatalf("systematic code must leave data shard %d untouched", i)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := New(3, 5); !errors.Is(err, ErrInvalidShape) {
		t.Fatalf("New(3,5) = %v, want ErrInvalidShape", err)
	}
	if _, err := New(300, 5); !errors.Is(err, ErrInvalidShape) {
		t.Fatalf("New(300,5) = %v, want ErrInvalidShape", err)
	}
	if _, err := New(5, 0); !errors.Is(err, ErrInvalidShape) {
		t.Fatalf("New(5,0) = %v, want ErrInvalidShape", err)
	}
	if _, err := New(5, 3, WithConcurrency(0)); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("WithConcurrency(0) must be rejected")
	}
	if _, err := New(5, 3, WithCacheSize(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("WithCacheSize(-1) must be rejected")
	}
	if _, err := New(5, 3, WithStripeThreshold(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("WithStripeThreshold(-1) must be rejected")
	}

	e, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Encode(make([][]byte, 4)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("Encode with 4 shards = %v, want ErrShardCount", err)
	}
	if err := e.Reconstruct(make([][]byte, 6)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("Reconstruct with 6 shards = %v, want ErrShardCount", err)
	}
	if _, err := e.Verify(make([][]byte, 4)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("Verify with 4 shards = %v, want ErrShardCount", err)
	}

	shards := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 9), nil, nil}
	if err := e.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Encode with ragged data = %v, want ErrShardSize", err)
	}
	shards = [][]byte{nil, make([]byte, 8), make([]byte, 8), nil, nil}
	if err := e.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Encode with missing data = %v, want ErrShardSize", err)
	}
	shards = [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 7), nil}
	if err := e.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Encode with short parity = %v, want ErrShardSize", err)
	}

	// Too few survivors.
	shards = make([][]byte, 5)
	shards[0] = make([]byte, 8)
	shards[4] = make([]byte, 8)
	if err := e.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("Reconstruct with 2 of 3 = %v, want ErrTooFewShards", err)
	}
	// Ragged survivors.
	shards[3] = make([]byte, 9)
	if err := e.Reconstruct(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Reconstruct with ragged survivors = %v, want ErrShardSize", err)
	}
}

// TestSingularDecodeMatrix doctors the generator so a survivor set
// selects a singular sub-matrix, and checks the error surfaces as
// matrix.ErrSingular rather than a panic or silent corruption.
func TestSingularDecodeMatrix(t *testing.T) {
	e, err := New(4, 2, WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	// Make generator row 2 a duplicate of row 0: survivors {0, 2} now
	// select a singular 2x2 sub-generator.
	copy(e.gen.Row(2), e.gen.Row(0))
	shards := [][]byte{make([]byte, 8), nil, make([]byte, 8), nil}
	if err := e.Reconstruct(shards); !errors.Is(err, matrix.ErrSingular) {
		t.Fatalf("Reconstruct with singular sub-generator = %v, want ErrSingular", err)
	}
}

func TestDecodeMatrixCache(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 128)

	drop := func(idx ...int) [][]byte {
		s := cloneShards(orig)
		for _, i := range idx {
			s[i] = nil
		}
		return s
	}

	for i := 0; i < 3; i++ {
		if err := e.Reconstruct(drop(0, 3)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, entries := e.CacheStats()
	if misses != 1 || hits != 2 || entries != 1 {
		t.Fatalf("after 3 identical failure patterns: hits=%d misses=%d entries=%d, want 2/1/1", hits, misses, entries)
	}
	if err := e.Reconstruct(drop(1, 4)); err != nil {
		t.Fatal(err)
	}
	hits, misses, entries = e.CacheStats()
	if misses != 2 || hits != 2 || entries != 2 {
		t.Fatalf("after a second pattern: hits=%d misses=%d entries=%d, want 2/2/2", hits, misses, entries)
	}
}

func TestCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, err := New(9, 5, WithCacheSize(1))
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 64)
	for round := 0; round < 2; round++ {
		for _, i := range []int{0, 1} {
			s := cloneShards(orig)
			s[i] = nil
			if err := e.Reconstruct(s); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(s[i], orig[i]) {
				t.Fatalf("shard %d mismatch after eviction churn", i)
			}
		}
	}
	hits, misses, entries := e.CacheStats()
	if entries != 1 {
		t.Fatalf("cache of size 1 holds %d entries", entries)
	}
	// Alternating patterns with capacity 1 can never hit.
	if hits != 0 || misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 0/4", hits, misses)
	}
}

func TestCacheDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e, err := New(5, 3, WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 64)
	s := cloneShards(orig)
	s[0] = nil
	if err := e.Reconstruct(s); err != nil {
		t.Fatal(err)
	}
	if hits, misses, entries := e.CacheStats(); hits != 0 || misses != 0 || entries != 0 {
		t.Fatal("disabled cache must report zero stats")
	}
}

// TestStripedMatchesSequential checks that parallel striping produces
// byte-identical output to the single-goroutine path, on sizes that do
// not divide evenly into stripes.
func TestStripedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq, err := New(9, 5, WithConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(9, 5, WithConcurrency(7), WithStripeThreshold(100))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{100, 1023, 100_003} {
		data := make([][]byte, 9)
		for i := 0; i < 5; i++ {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		a := cloneShards(data)
		b := cloneShards(data)
		if err := seq.Encode(a); err != nil {
			t.Fatal(err)
		}
		if err := par.Encode(b); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("size %d: striped parity shard %d differs from sequential", size, i)
			}
		}
		// Same check through reconstruction.
		a[0], a[6] = nil, nil
		b[0], b[6] = nil, nil
		if err := seq.Reconstruct(a); err != nil {
			t.Fatal(err)
		}
		if err := par.Reconstruct(b); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("size %d: striped reconstruction shard %d differs", size, i)
			}
		}
	}
}

// TestConcurrentOneEncoder hammers a single pooled Encoder from many
// goroutines — encode, verify, and reconstruct mixed — to exercise the
// worker pool, the pooled scratch, and the decode-matrix cache under
// the race detector.
func TestConcurrentOneEncoder(t *testing.T) {
	e, err := New(9, 5, WithConcurrency(4), WithStripeThreshold(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 20; iter++ {
				size := 1000 + rng.Intn(9000)
				shards := make([][]byte, 9)
				for i := 0; i < 5; i++ {
					shards[i] = make([]byte, size)
					rng.Read(shards[i])
				}
				if err := e.Encode(shards); err != nil {
					t.Errorf("Encode: %v", err)
					return
				}
				if ok, err := e.Verify(shards); err != nil || !ok {
					t.Errorf("Verify = (%v, %v)", ok, err)
					return
				}
				want := cloneShards(shards)
				// Alternate between two failure patterns so cache hits
				// and misses both happen concurrently.
				drop := []int{0, 6}
				if iter%2 == 1 {
					drop = []int{2, 3}
				}
				for _, i := range drop {
					shards[i] = nil
				}
				if err := e.Reconstruct(shards); err != nil {
					t.Errorf("Reconstruct: %v", err)
					return
				}
				for i := range shards {
					if !bytes.Equal(shards[i], want[i]) {
						t.Errorf("shard %d mismatch after concurrent reconstruct", i)
						return
					}
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	if hits, misses, _ := e.CacheStats(); hits+misses == 0 {
		t.Fatal("concurrent reconstructs should have touched the decode-matrix cache")
	}
}

// TestCloseLeavesEncoderUsable checks that Close only drops the
// background workers: striped calls still complete (inline) and
// produce identical shards.
func TestCloseLeavesEncoderUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	e, err := New(9, 5, WithConcurrency(4), WithStripeThreshold(1024))
	if err != nil {
		t.Fatal(err)
	}
	before := makeShards(t, rng, e, 8192)
	e.Close()
	e.Close() // idempotent
	after := make([][]byte, 9)
	for i := 0; i < 5; i++ {
		after[i] = append([]byte(nil), before[i]...)
	}
	if err := e.Encode(after); err != nil {
		t.Fatalf("Encode after Close: %v", err)
	}
	for i := range before {
		if !bytes.Equal(before[i], after[i]) {
			t.Fatalf("shard %d differs after Close", i)
		}
	}
}

func TestReconstructNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, rng, e, 64)
	want := cloneShards(shards)
	if err := e.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatal("Reconstruct with nothing missing must not alter shards")
		}
	}
}
