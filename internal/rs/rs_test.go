package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

var shapes = []struct{ n, k int }{
	{5, 3},  // SODA's running example scale
	{9, 5},
	{14, 10},
	{8, 3},  // n >= 2k: allows parity-only survivor sets
	{1, 1},  // degenerate replication-free code
	{4, 4},  // no parity at all
}

func makeShards(t *testing.T, rng *rand.Rand, e *Encoder, size int) [][]byte {
	t.Helper()
	shards := make([][]byte, e.N())
	for i := 0; i < e.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := e.Encode(shards); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return shards
}

func cloneShards(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		if s != nil {
			out[i] = append([]byte(nil), s...)
		}
	}
	return out
}

// TestRoundTripAllErasurePatterns encodes, drops every possible set of
// up to n-k shards (exhaustively for small shapes), reconstructs, and
// compares — including survivor sets that are parity-only.
func TestRoundTripAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range shapes {
		e, err := New(sh.n, sh.k)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", sh.n, sh.k, err)
		}
		orig := makeShards(t, rng, e, 257) // odd size to hit kernel tails
		// Iterate over all erasure masks with <= n-k dropped shards.
		for mask := 0; mask < 1<<sh.n; mask++ {
			dropped := 0
			for b := mask; b != 0; b >>= 1 {
				dropped += b & 1
			}
			if dropped > sh.n-sh.k {
				continue
			}
			got := cloneShards(orig)
			for i := 0; i < sh.n; i++ {
				if mask&(1<<i) != 0 {
					got[i] = nil
				}
			}
			if err := e.Reconstruct(got); err != nil {
				t.Fatalf("[%d,%d] mask %b: Reconstruct: %v", sh.n, sh.k, mask, err)
			}
			for i := range orig {
				if !bytes.Equal(got[i], orig[i]) {
					t.Fatalf("[%d,%d] mask %b: shard %d mismatch", sh.n, sh.k, mask, i)
				}
			}
		}
	}
}

// TestParityOnlySurvivors drops every data shard of an [8,3] code and
// recovers the data purely from parity.
func TestParityOnlySurvivors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, err := New(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 1024)
	got := cloneShards(orig)
	got[0], got[1], got[2] = nil, nil, nil
	got[3], got[4] = nil, nil // 5 erasures = n-k
	if err := e.Reconstruct(got); err != nil {
		t.Fatalf("Reconstruct from parity-only survivors: %v", err)
	}
	for i := range orig {
		if !bytes.Equal(got[i], orig[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestReconstructDataLeavesParityMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 512)
	got := cloneShards(orig)
	got[1] = nil // data
	got[7] = nil // parity
	if err := e.ReconstructData(got); err != nil {
		t.Fatalf("ReconstructData: %v", err)
	}
	if !bytes.Equal(got[1], orig[1]) {
		t.Fatal("data shard 1 not recovered")
	}
	if got[7] != nil {
		t.Fatal("ReconstructData must not touch parity shards")
	}
}

func TestVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, rng, e, 512)
	ok, err := e.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify on intact shards = (%v, %v), want (true, nil)", ok, err)
	}
	shards[6][100] ^= 0xA5
	ok, err = e.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify on corrupted parity = (%v, %v), want (false, nil)", ok, err)
	}
	shards[6][100] ^= 0xA5
	shards[2][0] ^= 1 // corrupt data: parity no longer matches
	ok, err = e.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify on corrupted data = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestSystematicPrefixIsData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, 3)
	shards := make([][]byte, 5)
	for i := range data {
		data[i] = make([]byte, 64)
		rng.Read(data[i])
		shards[i] = append([]byte(nil), data[i]...)
	}
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(shards[i], data[i]) {
			t.Fatalf("systematic code must leave data shard %d untouched", i)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := New(3, 5); !errors.Is(err, ErrInvalidShape) {
		t.Fatalf("New(3,5) = %v, want ErrInvalidShape", err)
	}
	if _, err := New(300, 5); !errors.Is(err, ErrInvalidShape) {
		t.Fatalf("New(300,5) = %v, want ErrInvalidShape", err)
	}
	if _, err := New(5, 0); !errors.Is(err, ErrInvalidShape) {
		t.Fatalf("New(5,0) = %v, want ErrInvalidShape", err)
	}
	if _, err := New(5, 3, WithConcurrency(0)); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("WithConcurrency(0) must be rejected")
	}
	if _, err := New(5, 3, WithCacheSize(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("WithCacheSize(-1) must be rejected")
	}
	if _, err := New(5, 3, WithStripeThreshold(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("WithStripeThreshold(-1) must be rejected")
	}

	e, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Encode(make([][]byte, 4)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("Encode with 4 shards = %v, want ErrShardCount", err)
	}
	if err := e.Reconstruct(make([][]byte, 6)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("Reconstruct with 6 shards = %v, want ErrShardCount", err)
	}
	if _, err := e.Verify(make([][]byte, 4)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("Verify with 4 shards = %v, want ErrShardCount", err)
	}

	shards := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 9), nil, nil}
	if err := e.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Encode with ragged data = %v, want ErrShardSize", err)
	}
	shards = [][]byte{nil, make([]byte, 8), make([]byte, 8), nil, nil}
	if err := e.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Encode with missing data = %v, want ErrShardSize", err)
	}
	shards = [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 7), nil}
	if err := e.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Encode with short parity = %v, want ErrShardSize", err)
	}

	// Too few survivors.
	shards = make([][]byte, 5)
	shards[0] = make([]byte, 8)
	shards[4] = make([]byte, 8)
	if err := e.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("Reconstruct with 2 of 3 = %v, want ErrTooFewShards", err)
	}
	// Ragged survivors.
	shards[3] = make([]byte, 9)
	if err := e.Reconstruct(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Reconstruct with ragged survivors = %v, want ErrShardSize", err)
	}
}

// TestSingularDecodeMatrix doctors the generator so a survivor set
// selects a singular sub-matrix, and checks the error surfaces as
// matrix.ErrSingular rather than a panic or silent corruption.
func TestSingularDecodeMatrix(t *testing.T) {
	e, err := New(4, 2, WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	// Make generator row 2 a duplicate of row 0: survivors {0, 2} now
	// select a singular 2x2 sub-generator.
	copy(e.gen.Row(2), e.gen.Row(0))
	shards := [][]byte{make([]byte, 8), nil, make([]byte, 8), nil}
	if err := e.Reconstruct(shards); !errors.Is(err, matrix.ErrSingular) {
		t.Fatalf("Reconstruct with singular sub-generator = %v, want ErrSingular", err)
	}
}

func TestDecodeMatrixCache(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, err := New(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 128)

	drop := func(idx ...int) [][]byte {
		s := cloneShards(orig)
		for _, i := range idx {
			s[i] = nil
		}
		return s
	}

	for i := 0; i < 3; i++ {
		if err := e.Reconstruct(drop(0, 3)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, entries := e.CacheStats()
	if misses != 1 || hits != 2 || entries != 1 {
		t.Fatalf("after 3 identical failure patterns: hits=%d misses=%d entries=%d, want 2/1/1", hits, misses, entries)
	}
	if err := e.Reconstruct(drop(1, 4)); err != nil {
		t.Fatal(err)
	}
	hits, misses, entries = e.CacheStats()
	if misses != 2 || hits != 2 || entries != 2 {
		t.Fatalf("after a second pattern: hits=%d misses=%d entries=%d, want 2/2/2", hits, misses, entries)
	}
}

func TestCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, err := New(9, 5, WithCacheSize(1))
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 64)
	for round := 0; round < 2; round++ {
		for _, i := range []int{0, 1} {
			s := cloneShards(orig)
			s[i] = nil
			if err := e.Reconstruct(s); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(s[i], orig[i]) {
				t.Fatalf("shard %d mismatch after eviction churn", i)
			}
		}
	}
	hits, misses, entries := e.CacheStats()
	if entries != 1 {
		t.Fatalf("cache of size 1 holds %d entries", entries)
	}
	// Alternating patterns with capacity 1 can never hit.
	if hits != 0 || misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 0/4", hits, misses)
	}
}

func TestCacheDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e, err := New(5, 3, WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, rng, e, 64)
	s := cloneShards(orig)
	s[0] = nil
	if err := e.Reconstruct(s); err != nil {
		t.Fatal(err)
	}
	if hits, misses, entries := e.CacheStats(); hits != 0 || misses != 0 || entries != 0 {
		t.Fatal("disabled cache must report zero stats")
	}
}

// TestStripedMatchesSequential checks that parallel striping produces
// byte-identical output to the single-goroutine path, on sizes that do
// not divide evenly into stripes.
func TestStripedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq, err := New(9, 5, WithConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(9, 5, WithConcurrency(7), WithStripeThreshold(100))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{100, 1023, 100_003} {
		data := make([][]byte, 9)
		for i := 0; i < 5; i++ {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		a := cloneShards(data)
		b := cloneShards(data)
		if err := seq.Encode(a); err != nil {
			t.Fatal(err)
		}
		if err := par.Encode(b); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("size %d: striped parity shard %d differs from sequential", size, i)
			}
		}
		// Same check through reconstruction.
		a[0], a[6] = nil, nil
		b[0], b[6] = nil, nil
		if err := seq.Reconstruct(a); err != nil {
			t.Fatal(err)
		}
		if err := par.Reconstruct(b); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("size %d: striped reconstruction shard %d differs", size, i)
			}
		}
	}
}

func TestReconstructNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, rng, e, 64)
	want := cloneShards(shards)
	if err := e.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatal("Reconstruct with nothing missing must not alter shards")
		}
	}
}
