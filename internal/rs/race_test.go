//go:build race

package rs

// raceEnabled reports that the race detector is instrumenting this
// build; allocation-count assertions are skipped because the runtime
// itself allocates under -race.
const raceEnabled = true
