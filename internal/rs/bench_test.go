package rs

import (
	"fmt"
	"math/rand"
	"testing"
)

var benchShapes = []struct{ n, k int }{
	{5, 3},
	{9, 5},
	{14, 10},
}

var benchSizes = []struct {
	name string
	size int
}{
	{"1KiB", 1 << 10},
	{"64KiB", 64 << 10},
	{"1MiB", 1 << 20},
}

func benchShards(b *testing.B, e *Encoder, size int) [][]byte {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	shards := make([][]byte, e.N())
	for i := 0; i < e.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := e.Encode(shards); err != nil {
		b.Fatal(err)
	}
	return shards
}

func BenchmarkEncode(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchSizes {
			b.Run(fmt.Sprintf("n%dk%d/%s", sh.n, sh.k, sz.name), func(b *testing.B) {
				e, err := New(sh.n, sh.k)
				if err != nil {
					b.Fatal(err)
				}
				shards := benchShards(b, e, sz.size)
				b.SetBytes(int64(sh.k * sz.size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.Encode(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReconstruct measures repair of n-k erased shards. The warm
// variant reuses the cached decode matrix across iterations (the
// steady-state failure pattern case); cold disables the cache so every
// iteration pays the O(k^3) inversion.
func BenchmarkReconstruct(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchSizes {
			for _, mode := range []string{"warm", "cold"} {
				b.Run(fmt.Sprintf("n%dk%d/%s/%s", sh.n, sh.k, sz.name, mode), func(b *testing.B) {
					opts := []Option{}
					if mode == "cold" {
						opts = append(opts, WithCacheSize(0))
					}
					e, err := New(sh.n, sh.k, opts...)
					if err != nil {
						b.Fatal(err)
					}
					shards := benchShards(b, e, sz.size)
					b.SetBytes(int64((sh.n - sh.k) * sz.size))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for j := 0; j < sh.n-sh.k; j++ {
							shards[j] = nil
						}
						if err := e.Reconstruct(shards); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	e, err := New(9, 5)
	if err != nil {
		b.Fatal(err)
	}
	shards := benchShards(b, e, 64<<10)
	b.SetBytes(int64(5 * (64 << 10)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := e.Verify(shards)
		if err != nil || !ok {
			b.Fatal("verify failed")
		}
	}
}
