package rs

import (
	"fmt"
	"math/rand"
	"testing"
)

var benchShapes = []struct{ n, k int }{
	{5, 3},
	{9, 5},
	{14, 10},
}

var benchSizes = []struct {
	name string
	size int
}{
	{"1KiB", 1 << 10},
	{"64KiB", 64 << 10},
	{"1MiB", 1 << 20},
}

func benchShards(b *testing.B, e *Encoder, size int) [][]byte {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	shards := make([][]byte, e.N())
	for i := 0; i < e.K(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	if err := e.Encode(shards); err != nil {
		b.Fatal(err)
	}
	return shards
}

func BenchmarkEncode(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchSizes {
			b.Run(fmt.Sprintf("n%dk%d/%s", sh.n, sh.k, sz.name), func(b *testing.B) {
				e, err := New(sh.n, sh.k)
				if err != nil {
					b.Fatal(err)
				}
				shards := benchShards(b, e, sz.size)
				b.SetBytes(int64(sh.k * sz.size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.Encode(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReconstruct measures repair of n-k erased shards. The warm
// variant reuses the cached decode matrix across iterations (the
// steady-state failure pattern case); cold disables the cache so every
// iteration pays the O(k^3) inversion.
func BenchmarkReconstruct(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchSizes {
			for _, mode := range []string{"warm", "cold"} {
				b.Run(fmt.Sprintf("n%dk%d/%s/%s", sh.n, sh.k, sz.name, mode), func(b *testing.B) {
					opts := []Option{}
					if mode == "cold" {
						opts = append(opts, WithCacheSize(0))
					}
					e, err := New(sh.n, sh.k, opts...)
					if err != nil {
						b.Fatal(err)
					}
					shards := benchShards(b, e, sz.size)
					b.SetBytes(int64((sh.n - sh.k) * sz.size))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for j := 0; j < sh.n-sh.k; j++ {
							shards[j] = nil
						}
						if err := e.Reconstruct(shards); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	e, err := New(9, 5)
	if err != nil {
		b.Fatal(err)
	}
	shards := benchShards(b, e, 64<<10)
	b.SetBytes(int64(5 * (64 << 10)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := e.Verify(shards)
		if err != nil || !ok {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkEncodeInto is the steady-state write path: parity buffers
// preallocated, so the op must report 0 allocs.
func BenchmarkEncodeInto(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchSizes {
			b.Run(fmt.Sprintf("n%dk%d/%s", sh.n, sh.k, sz.name), func(b *testing.B) {
				e, err := New(sh.n, sh.k)
				if err != nil {
					b.Fatal(err)
				}
				shards := benchShards(b, e, sz.size)
				b.SetBytes(int64(sh.k * sz.size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.EncodeInto(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReconstructInto is the steady-state repair path: a stable
// failure pattern (the first n-k shards, i.e. data shards for these
// shapes, so it measures survivor decode with a warm decode-matrix
// cache) repaired into caller-supplied buffers, so the op must report
// 0 allocs.
func BenchmarkReconstructInto(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchSizes {
			b.Run(fmt.Sprintf("n%dk%d/%s", sh.n, sh.k, sz.name), func(b *testing.B) {
				e, err := New(sh.n, sh.k)
				if err != nil {
					b.Fatal(err)
				}
				shards := benchShards(b, e, sz.size)
				nrepair := sh.n - sh.k
				if nrepair == 0 {
					b.Skip("nothing to erase: n == k")
				}
				b.SetBytes(int64(nrepair * sz.size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < nrepair; j++ {
						shards[j] = shards[j][:0] // erase, keep capacity
					}
					if err := e.ReconstructInto(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEncodeParallel is the concurrent-encoder throughput
// harness: many goroutines share one Encoder (as one storage node's
// write path would), each encoding its own shard set at a realistic
// shard size. Contention here is on the worker pool, pooled scratch,
// and kernel tables, not the data.
func BenchmarkEncodeParallel(b *testing.B) {
	for _, sz := range []struct {
		name string
		size int
	}{
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
	} {
		b.Run(fmt.Sprintf("n14k10/%s", sz.name), func(b *testing.B) {
			e, err := New(14, 10)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(10 * sz.size))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(7))
				shards := make([][]byte, 14)
				for i := 0; i < 14; i++ {
					shards[i] = make([]byte, sz.size)
					if i < 10 {
						rng.Read(shards[i])
					}
				}
				for pb.Next() {
					if err := e.EncodeInto(shards); err != nil {
						b.Error(err) // Fatal must not be called off the benchmark goroutine
						return
					}
				}
			})
		})
	}
}

// BenchmarkDecodeErrors is the acceptance benchmark for syndrome-based
// error decoding: n=14, k=10, e=2 silently corrupt shards at a 64 KiB
// shard size, syndrome path (Berlekamp-Massey on fused syndromes)
// against the brute-force subset-decoding oracle (C(14,2)=91 trial
// erasure-decodes with full re-encode checks).
func BenchmarkDecodeErrors(b *testing.B) {
	for _, mode := range []string{"syndrome", "brute"} {
		for _, sz := range []struct {
			name string
			size int
		}{
			{"64KiB", 64 << 10},
			{"1MiB", 1 << 20},
		} {
			if mode == "brute" && sz.size > 64<<10 {
				continue // the oracle at 1 MiB is pointlessly slow
			}
			b.Run(fmt.Sprintf("%s/n14k10e2/%s", mode, sz.name), func(b *testing.B) {
				e, err := New(14, 10, WithGenerator(GeneratorRSView))
				if err != nil {
					b.Fatal(err)
				}
				orig := benchShards(b, e, sz.size)
				shards := make([][]byte, 14)
				for i := range shards {
					shards[i] = append([]byte(nil), orig[i]...)
				}
				corrupt := func() {
					copy(shards[3], orig[3])
					copy(shards[11], orig[11])
					shards[3][100] ^= 0x5a
					shards[11][sz.size-7] ^= 0xc3
				}
				b.SetBytes(int64(10 * sz.size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					corrupt()
					var got []int
					var err error
					if mode == "syndrome" {
						got, err = e.DecodeErrors(shards)
					} else {
						got, err = e.decodeErrorsBrute(shards)
					}
					if err != nil || len(got) != 2 {
						b.Fatalf("decode (%s) = (%v, %v)", mode, got, err)
					}
				}
			})
		}
	}
}

// BenchmarkDecodeErrorsInto is the steady-state decode path: stable
// corruption pattern (warm errata cache), pooled scratch, caller
// buffers — the op must report 0 allocs.
func BenchmarkDecodeErrorsInto(b *testing.B) {
	for _, sz := range []struct {
		name string
		size int
	}{
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
	} {
		b.Run(fmt.Sprintf("n14k10e2/%s", sz.name), func(b *testing.B) {
			e, err := New(14, 10, WithGenerator(GeneratorRSView))
			if err != nil {
				b.Fatal(err)
			}
			orig := benchShards(b, e, sz.size)
			shards := make([][]byte, 14)
			for i := range shards {
				shards[i] = append([]byte(nil), orig[i]...)
			}
			corrupt := make([]int, 0, 4)
			b.SetBytes(int64(10 * sz.size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(shards[3], orig[3])
				copy(shards[11], orig[11])
				shards[3][100] ^= 0x5a
				shards[11][sz.size-7] ^= 0xc3
				var err error
				if corrupt, err = e.DecodeErrorsInto(shards, corrupt[:0]); err != nil || len(corrupt) != 2 {
					b.Fatalf("DecodeErrorsInto = (%v, %v)", corrupt, err)
				}
			}
		})
	}
}
