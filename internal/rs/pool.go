package rs

import (
	"sync"

	"repro/internal/gf256"
)

// Block scheduler and worker pool.
//
// The coding hot path is outputs[o] = sum_j coeffs[o][j] * inputs[j].
// The gf256 fused kernels already make one register-resident pass over
// each output block; this file supplies the two outer layers:
//
//   - tiling: byte ranges are cut into tiles small enough that the k
//     input blocks (plus the output block) stay resident in L2 while
//     every output is computed for that range, so each input tile is
//     fetched from memory once per range instead of once per output.
//   - a reusable worker pool: above the stripe threshold the tiles of
//     a call are spread over the Encoder's long-lived workers instead
//     of spawning goroutines per call. Submission is non-blocking —
//     when the queue is full the caller codes the stripe itself — so a
//     call can never deadlock on its own pool, and the caller always
//     codes the final stripe rather than just sleeping in Wait.
//
// Everything here is allocation-free in steady state: tasks are passed
// by value, and the per-call WaitGroup and per-worker input views come
// from sync.Pools.

// codeTask is one (outputs x byte-range) unit of coding work.
type codeTask struct {
	coeffs  [][]byte
	inputs  [][]byte
	outputs [][]byte
	lo, hi  int
	wg      *sync.WaitGroup
}

// workerPool is a lazily started, reusable set of coding goroutines
// owned by one Encoder. Workers exit when the Encoder is closed (or
// collected: New installs a finalizer).
type workerPool struct {
	size  int
	tasks chan codeTask
	start sync.Once
	// mu orders submissions against close: once close() returns, no
	// further task can enter the queue, so anything a worker finds
	// while draining after stop was enqueued before stop closed.
	mu     sync.Mutex
	closed bool
	stop   chan struct{}
	// started records whether the workers were ever spawned; tests use
	// it to assert that a closed pool never starts goroutines.
	started bool
}

func newWorkerPool(size int) *workerPool {
	return &workerPool{
		size:  size,
		tasks: make(chan codeTask, 4*size),
		stop:  make(chan struct{}),
	}
}

// ensure starts the workers on first use, so an Encoder that never
// codes anything above the stripe threshold costs no goroutines. It is
// a no-op on a closed pool: striped calls after Close must not spawn
// workers whose only act would be to observe the closed stop channel
// and exit (trySubmit already refuses their tasks, so the caller codes
// everything inline). The mutex orders the check against close().
func (p *workerPool) ensure() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.start.Do(func() {
		p.started = true
		for i := 0; i < p.size; i++ {
			go p.worker()
		}
	})
}

func (p *workerPool) worker() {
	for {
		select {
		case t := <-p.tasks:
			codeRange(t.coeffs, t.inputs, t.outputs, t.lo, t.hi)
			t.wg.Done()
		case <-p.stop:
			// Drain anything that raced with close so no caller is
			// left waiting on an orphaned task.
			for {
				select {
				case t := <-p.tasks:
					codeRange(t.coeffs, t.inputs, t.outputs, t.lo, t.hi)
					t.wg.Done()
				default:
					return
				}
			}
		}
	}
}

// trySubmit queues t, or reports false when the pool is closed or the
// queue is full, so the caller runs the tile inline instead of
// blocking. The lock guarantees a task is never enqueued after close()
// has returned, which is what makes the workers' shutdown drain
// sufficient: no submitted task can be orphaned.
func (p *workerPool) trySubmit(t codeTask) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}

// workersStarted reports whether the worker goroutines were ever
// spawned (race-safely; used by tests).
func (p *workerPool) workersStarted() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.started
}

func (p *workerPool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.stop)
	}
}

// wgPool recycles the per-call WaitGroup, which escapes to the heap
// because workers hold a pointer to it.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// viewPool recycles the per-range input window headers used by
// codeRange. Sized for the maximum code length so any Encoder can
// share it.
var viewPool = sync.Pool{New: func() any {
	s := make([][]byte, 256)
	return &s
}}

// tileTarget bounds a tile's working set — k input blocks plus the
// output block — to roughly half a typical 1 MiB L2, leaving room for
// the destination shard and the coefficient tables.
const tileTarget = 512 << 10

// tileSize returns the byte-range tile for k input shards, 4 KiB
// granular.
func tileSize(k int) int {
	t := tileTarget / (k + 1)
	t &^= 4095
	if t < 4096 {
		t = 4096
	}
	if t > 128<<10 {
		t = 128 << 10
	}
	return t
}

// codeRange computes outputs[o][lo:hi] = sum_j coeffs[o][j] *
// inputs[j][lo:hi] for every output, tiling the range so the inputs
// are walked from L2, one fused pass per output tile.
func codeRange(coeffs, inputs, outputs [][]byte, lo, hi int) {
	if lo >= hi {
		return
	}
	vp := viewPool.Get().(*[][]byte)
	views := (*vp)[:len(inputs)]
	blk := tileSize(len(inputs))
	for lo < hi {
		bhi := lo + blk
		if bhi > hi {
			bhi = hi
		}
		for j, in := range inputs {
			views[j] = in[lo:bhi]
		}
		for o, out := range outputs {
			gf256.MulMulti(coeffs[o], views, out[lo:bhi])
		}
		lo = bhi
	}
	for j := range views {
		views[j] = nil // do not pin shard memory from the pool
	}
	viewPool.Put(vp)
}

// codeStriped runs codeRange over [0, size), spreading stripes across
// the worker pool when the shards are large enough to be worth it.
func (e *Encoder) codeStriped(coeffs, inputs, outputs [][]byte, size int) {
	if len(outputs) == 0 || size == 0 {
		return
	}
	if e.pool == nil || size < e.stripeMin {
		codeRange(coeffs, inputs, outputs, 0, size)
		return
	}
	e.pool.ensure()
	chunk := (size + e.conc - 1) / e.conc
	chunk = (chunk + 4095) &^ 4095 // tile-granular stripes
	wg := wgPool.Get().(*sync.WaitGroup)
	lo := 0
	for ; lo+chunk < size; lo += chunk {
		wg.Add(1)
		t := codeTask{coeffs: coeffs, inputs: inputs, outputs: outputs, lo: lo, hi: lo + chunk, wg: wg}
		if !e.pool.trySubmit(t) {
			codeRange(coeffs, inputs, outputs, lo, lo+chunk)
			wg.Done()
		}
	}
	codeRange(coeffs, inputs, outputs, lo, size) // final stripe on the caller
	wg.Wait()
	wgPool.Put(wg)
}
