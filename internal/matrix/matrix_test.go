package matrix

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf256"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, byte(rng.Intn(256)))
		}
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 16} {
		a := randMatrix(rng, n, n)
		if !Identity(n).Mul(a).Equal(a) {
			t.Fatalf("I*A != A for n=%d", n)
		}
		if !a.Mul(Identity(n)).Equal(a) {
			t.Fatalf("A*I != A for n=%d", n)
		}
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		a := randMatrix(rng, 3+rng.Intn(4), 3+rng.Intn(4))
		b := randMatrix(rng, a.Cols(), 3+rng.Intn(4))
		c := randMatrix(rng, b.Cols(), 3+rng.Intn(4))
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			t.Fatalf("iter %d: (AB)C != A(BC)", iter)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Mul must panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 8, 20} {
		// Random matrices over GF(256) are invertible with high
		// probability; retry until one is.
		for {
			a := randMatrix(rng, n, n)
			inv, err := a.Invert()
			if err != nil {
				continue
			}
			if !a.Mul(inv).Equal(Identity(n)) {
				t.Fatalf("A * A^-1 != I for n=%d", n)
			}
			if !inv.Mul(a).Equal(Identity(n)) {
				t.Fatalf("A^-1 * A != I for n=%d", n)
			}
			break
		}
	}
}

func TestInvertSingular(t *testing.T) {
	// errors.Is, not ==: ErrSingular is a dispatch target for callers
	// (the rs decode path picks survivor sets by it), so the contract
	// to pin is Is-matchability even if a future caller wraps it.
	a := New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1) // third row all zero -> singular
	if _, err := a.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Invert singular: err = %v, want errors.Is ErrSingular", err)
	}
	// Duplicate rows are singular too.
	b := FromRows([][]byte{{1, 2}, {1, 2}})
	if _, err := b.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Invert dup rows: err = %v, want errors.Is ErrSingular", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := New(2, 3).Invert(); err == nil {
		t.Fatal("inverting non-square must error")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 6, 4)
	v := make([]byte, 4)
	rng.Read(v)
	col := New(4, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := a.Mul(col)
	got := a.MulVec(v)
	for i := range got {
		if got[i] != want.At(i, 0) {
			t.Fatalf("MulVec[%d] = %#x, want %#x", i, got[i], want.At(i, 0))
		}
	}
}

func TestVandermondeAnyKRowsInvertible(t *testing.T) {
	// The MDS property: every k-row subset of the n x k Vandermonde
	// matrix is invertible. Exhaustive for small shapes.
	n, k := 7, 3
	v := Vandermonde(n, k)
	idx := make([]int, k)
	var rec func(start, depth int)
	count := 0
	rec = func(start, depth int) {
		if depth == k {
			sub := v.SubMatrix(idx)
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("Vandermonde rows %v singular", idx)
			}
			count++
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	if count != 35 { // C(7,3)
		t.Fatalf("enumerated %d subsets, want 35", count)
	}
}

func TestSystematicVandermondeIsMDS(t *testing.T) {
	for _, shape := range []struct{ n, k int }{{5, 3}, {7, 4}, {10, 5}, {9, 8}} {
		g, err := SystematicVandermonde(shape.n, shape.k)
		if err != nil {
			t.Fatal(err)
		}
		// Top k x k block must be the identity.
		for i := 0; i < shape.k; i++ {
			for j := 0; j < shape.k; j++ {
				want := byte(0)
				if i == j {
					want = 1
				}
				if g.At(i, j) != want {
					t.Fatalf("n=%d k=%d: top block not identity at (%d,%d)", shape.n, shape.k, i, j)
				}
			}
		}
		checkMDSRandomSubsets(t, g, shape.n, shape.k)
	}
}

func TestSystematicCauchyIsMDS(t *testing.T) {
	for _, shape := range []struct{ n, k int }{{5, 3}, {10, 5}, {100, 51}} {
		g, err := SystematicCauchy(shape.n, shape.k)
		if err != nil {
			t.Fatal(err)
		}
		checkMDSRandomSubsets(t, g, shape.n, shape.k)
	}
}

// checkMDSRandomSubsets verifies that many random k-row subsets of g are
// invertible (exhaustive checking is combinatorial; random sampling
// catches construction bugs reliably).
func checkMDSRandomSubsets(t *testing.T, g *Matrix, n, k int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n*1000 + k)))
	for iter := 0; iter < 60; iter++ {
		idx := rng.Perm(n)[:k]
		if _, err := g.SubMatrix(idx).Invert(); err != nil {
			t.Fatalf("n=%d k=%d: rows %v singular: %v", n, k, idx, err)
		}
	}
}

func TestEncodeDecodeViaMatrix(t *testing.T) {
	// End-to-end MDS sanity: encode a data vector with the generator,
	// erase down to k arbitrary coded symbols, reconstruct by inversion.
	n, k := 9, 5
	g, err := SystematicVandermonde(n, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, k)
	rng.Read(data)
	code := g.MulVec(data)
	for iter := 0; iter < 40; iter++ {
		idx := rng.Perm(n)[:k]
		sub := g.SubMatrix(idx)
		inv, err := sub.Invert()
		if err != nil {
			t.Fatal(err)
		}
		avail := make([]byte, k)
		for i, r := range idx {
			avail[i] = code[r]
		}
		got := inv.MulVec(avail)
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("iter %d: reconstruction mismatch at %d", iter, i)
			}
		}
	}
}

func TestCauchyEntries(t *testing.T) {
	c := Cauchy(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			want := gf256.Inv(byte(3+i) ^ byte(j))
			if c.At(i, j) != want {
				t.Fatalf("Cauchy(%d,%d) = %#x, want %#x", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestSubMatrixOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SubMatrix with bad index must panic")
		}
	}()
	New(2, 2).SubMatrix([]int{0, 5})
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows must panic")
		}
	}()
	FromRows([][]byte{{1, 2}, {3}})
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRows([][]byte{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestStringFormat(t *testing.T) {
	s := FromRows([][]byte{{0x0a, 0xff}}).String()
	if s != "0a ff\n" {
		t.Fatalf("String() = %q", s)
	}
}

// TestGRSParityCheckAnnihilatesRSView is the load-bearing duality fact
// behind syndrome decoding: H * G = 0 for the RS-view systematic
// generator, so every codeword has all-zero weighted power sums.
func TestGRSParityCheckAnnihilatesRSView(t *testing.T) {
	for _, sh := range []struct{ n, k int }{{3, 1}, {5, 3}, {9, 5}, {14, 10}, {40, 20}, {255, 200}} {
		g, err := SystematicVandermonde(sh.n, sh.k)
		if err != nil {
			t.Fatalf("SystematicVandermonde(%d,%d): %v", sh.n, sh.k, err)
		}
		h, err := GRSParityCheck(sh.n, sh.k)
		if err != nil {
			t.Fatalf("GRSParityCheck(%d,%d): %v", sh.n, sh.k, err)
		}
		prod := h.Mul(g)
		for i := 0; i < prod.Rows(); i++ {
			for j := 0; j < prod.Cols(); j++ {
				if prod.At(i, j) != 0 {
					t.Fatalf("[%d,%d]: (H*G)[%d][%d] = %#02x, want 0", sh.n, sh.k, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestGRSParityCheckStructure(t *testing.T) {
	const n, k = 9, 5
	h, err := GRSParityCheck(n, k)
	if err != nil {
		t.Fatal(err)
	}
	points := EvalPoints(n)
	w := GRSDualMultipliers(points)
	for i := 0; i < n; i++ {
		if w[i] == 0 {
			t.Fatalf("dual multiplier %d is zero", i)
		}
		for tt := 0; tt < n-k; tt++ {
			want := gf256.Mul(w[i], gf256.Pow(points[i], tt))
			if h.At(tt, i) != want {
				t.Fatalf("H[%d][%d] = %#02x, want w_i*alpha_i^t = %#02x", tt, i, h.At(tt, i), want)
			}
		}
	}
	// Any (n-k) columns of H must be independent (the dual is MDS): spot
	// check a few square submatrices by transposed inversion.
	for _, cols := range [][]int{{0, 1, 2, 3}, {5, 6, 7, 8}, {0, 3, 4, 8}} {
		sub := New(n-k, n-k)
		for r := 0; r < n-k; r++ {
			for c, ci := range cols {
				sub.Set(r, c, h.At(r, ci))
			}
		}
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("columns %v of H are dependent: %v", cols, err)
		}
	}
}

func TestGRSParityCheckErrors(t *testing.T) {
	if _, err := GRSParityCheck(5, 5); err == nil {
		t.Fatal("n == k has no parity rows and must be rejected")
	}
	if _, err := GRSParityCheck(256, 10); err == nil {
		t.Fatal("n > 255 must be rejected")
	}
	if _, err := GRSParityCheck(4, 0); err == nil {
		t.Fatal("k = 0 must be rejected")
	}
}

func TestEvalPointsDistinctNonzero(t *testing.T) {
	pts := EvalPoints(255)
	seen := map[byte]bool{}
	for i, p := range pts {
		if p == 0 || seen[p] {
			t.Fatalf("point %d = %#02x is zero or repeated", i, p)
		}
		seen[p] = true
	}
}
