// Package matrix implements dense matrices over GF(2^8).
//
// The erasure-coding stack uses these for systematic MDS generator
// construction (Vandermonde / Cauchy) and for reconstruction by
// Gauss-Jordan inversion of the sub-generator selected by the surviving
// coded elements. Matrices are small (at most n x n for cluster sizes of
// a few hundred), so the O(n^3) dense algorithms are the right tool.
package matrix

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/gf256"
)

// ErrSingular is returned when inverting a matrix that has no inverse.
var ErrSingular = errors.New("matrix: singular matrix")

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	rows, cols int
	data       []byte // len rows*cols, row-major
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length. The data is copied.
func FromRows(rows [][]byte) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows needs at least one row and column")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols matrix with entry (i, j) equal to
// alpha_i^j where alpha_i is the i-th distinct nonzero field element
// (generator powers). Any cols rows of it are linearly independent,
// making it a valid (non-systematic) MDS generator for rows <= 255.
func Vandermonde(rows, cols int) *Matrix {
	if rows > 255 {
		panic("matrix: Vandermonde supports at most 255 rows over GF(2^8)")
	}
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		alpha := gf256.Exp(i)
		v := byte(1)
		for j := 0; j < cols; j++ {
			m.Set(i, j, v)
			v = gf256.Mul(v, alpha)
		}
	}
	return m
}

// Cauchy returns the rows x cols Cauchy matrix with entry
// 1 / (x_i + y_j), where the x_i and y_j are 2*max(rows,cols) distinct
// field elements. Every square submatrix of a Cauchy matrix is
// invertible, so stacking it under an identity yields a systematic MDS
// generator directly.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > 256 {
		panic("matrix: Cauchy needs rows+cols <= 256 distinct elements")
	}
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		xi := byte(cols + i)
		for j := 0; j < cols; j++ {
			yj := byte(j)
			m.Set(i, j, gf256.Inv(xi^yj))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at (r, c).
func (m *Matrix) At(r, c int) byte { return m.data[r*m.cols+c] }

// Set assigns the entry at (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns m * o. It panics on incompatible shapes.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mRow := m.Row(i)
		outRow := out.Row(i)
		for kk := 0; kk < m.cols; kk++ {
			if mRow[kk] == 0 {
				continue
			}
			gf256.MulAddSlice(mRow[kk], outRow, o.Row(kk))
		}
	}
	return out
}

// MulVec returns m * v as a fresh slice. len(v) must equal m.Cols().
func (m *Matrix) MulVec(v []byte) []byte {
	if len(v) != m.cols {
		panic("matrix: MulVec dimension mismatch")
	}
	out := make([]byte, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = gf256.Dot(m.Row(i), v)
	}
	return out
}

// SubMatrix returns the matrix formed by the given row indices (in
// order), keeping all columns. The data is copied.
func (m *Matrix) SubMatrix(rowIdx []int) *Matrix {
	out := New(len(rowIdx), m.cols)
	for i, r := range rowIdx {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("matrix: row index %d out of range", r))
		}
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Invert returns the inverse of a square matrix by Gauss-Jordan
// elimination with partial pivoting (any nonzero pivot works in a field).
// It returns ErrSingular if the matrix is not invertible.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %dx%d", m.rows, m.cols)
	}
	n := m.rows
	// Work on an augmented copy [A | I].
	work := New(n, 2*n)
	for i := 0; i < n; i++ {
		copy(work.Row(i)[:n], m.Row(i))
		work.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := work.Row(pivot), work.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
		}
		// Scale pivot row to make the pivot 1, then eliminate the
		// column from every other row. Columns left of col in the
		// A-part of the pivot row are already zero, so the row
		// operations only need the suffix starting at col.
		inv := gf256.Inv(work.At(col, col))
		pivRow := work.Row(col)[col:]
		gf256.MulSlice(inv, pivRow, pivRow)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			c := work.At(r, col)
			if c != 0 {
				gf256.MulAddSlice(c, work.Row(r)[col:], pivRow)
			}
		}
	}
	out := New(n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i), work.Row(i)[n:])
	}
	return out, nil
}

// String renders the matrix in hex, one row per line (for debugging).
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%02x", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SystematicVandermonde returns an n x k MDS generator whose first k
// rows are the identity, derived by right-multiplying a Vandermonde
// matrix by the inverse of its top k x k block. Encoding with it leaves
// the first k coded elements equal to the data elements, which keeps
// the common read path copy-free.
func SystematicVandermonde(n, k int) (*Matrix, error) {
	if k <= 0 || n < k {
		return nil, fmt.Errorf("matrix: invalid MDS shape n=%d k=%d", n, k)
	}
	v := Vandermonde(n, k)
	top := v.SubMatrix(seq(k))
	topInv, err := top.Invert()
	if err != nil {
		return nil, fmt.Errorf("matrix: Vandermonde top block singular: %w", err)
	}
	return v.Mul(topInv), nil
}

// EvalPoints returns the n evaluation points alpha_i = Generator^i used
// by Vandermonde and SystematicVandermonde: codeword position i of the
// RS-view code carries the value q(alpha_i). n must be at most 255 so
// the points are distinct and nonzero.
func EvalPoints(n int) []byte {
	if n > 255 {
		panic("matrix: at most 255 distinct nonzero evaluation points over GF(2^8)")
	}
	pts := make([]byte, n)
	for i := range pts {
		pts[i] = gf256.Exp(i)
	}
	return pts
}

// GRSDualMultipliers returns the column multipliers w_i of the dual of
// the evaluation code on the given (distinct) points:
//
//	w_i = 1 / prod_{j != i} (alpha_i + alpha_j).
//
// The dual of {(q(alpha_0), ..., q(alpha_{n-1})) : deg q < k} is the
// generalized Reed-Solomon code generated by the rows (w_i*alpha_i^t)
// for t = 0..n-k-1, which is what gives the code a BCH-style syndrome
// structure (see GRSParityCheck).
func GRSDualMultipliers(points []byte) []byte {
	w := make([]byte, len(points))
	for i, xi := range points {
		p := byte(1)
		for j, xj := range points {
			if j != i {
				p = gf256.Mul(p, xi^xj)
			}
		}
		w[i] = gf256.Inv(p)
	}
	return w
}

// GRSParityCheck returns the (n-k) x n parity-check matrix H of the
// RS-view evaluation code on EvalPoints(n), with
//
//	H[t][i] = w_i * alpha_i^t,
//
// so H*c = 0 exactly when c is a codeword of SystematicVandermonde(n, k).
// The weighted-power-sum rows are what make syndrome decoding
// (Berlekamp-Massey / Chien / Forney in gf256) applicable: the syndrome
// of an errata vector is a power-sum sequence in the errata locators.
func GRSParityCheck(n, k int) (*Matrix, error) {
	if k <= 0 || n < k || n > 255 {
		return nil, fmt.Errorf("matrix: invalid GRS shape n=%d k=%d (need 0 < k <= n <= 255)", n, k)
	}
	if n == k {
		return nil, fmt.Errorf("matrix: GRS parity check needs n > k")
	}
	points := EvalPoints(n)
	w := GRSDualMultipliers(points)
	h := New(n-k, n)
	for i := 0; i < n; i++ {
		v := w[i]
		for t := 0; t < n-k; t++ {
			h.Set(t, i, v)
			v = gf256.Mul(v, points[i])
		}
	}
	return h, nil
}

// SystematicCauchy returns an n x k systematic MDS generator built from
// an identity stacked over a Cauchy block.
func SystematicCauchy(n, k int) (*Matrix, error) {
	if k <= 0 || n < k {
		return nil, fmt.Errorf("matrix: invalid MDS shape n=%d k=%d", n, k)
	}
	if n > 256 {
		return nil, fmt.Errorf("matrix: Cauchy shape too large (n=%d)", n)
	}
	g := New(n, k)
	for i := 0; i < k; i++ {
		g.Set(i, i, 1)
	}
	if n > k {
		c := Cauchy(n-k, k)
		for i := 0; i < n-k; i++ {
			copy(g.Row(k+i), c.Row(i))
		}
	}
	return g, nil
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
