// sodademo drives an in-process n=5, k=3 SODA cluster through the
// paper's fault scenarios end to end:
//
//  1. A write, then a SODA_err read that is concurrent with a server
//     crash (the server dies right after its response leaves) while
//     another server serves silently corrupted elements: the read
//     returns the written value and names the corrupt server.
//  2. A follow-up write/read pair with the crashed server still down
//     and the corrupt server quarantined.
//  3. The same write/read round trip over real localhost TCP with the
//     length-prefixed wire protocol.
//  4. Kill-repair-rejoin: the crashed server restarts stale and the
//     corrupt server gets a clean disk; anti-entropy repair rebuilds
//     their elements from k live servers and readmits them, then a
//     fresh kill is healed by the background repair loop while a
//     membership-aware writer works around the hole.
//  5. Power-cut and recover: a durable cluster (per-server WAL +
//     snapshots) loses a node to a power cut mid-traffic; the node
//     comes back from its own disk — no donor repair — and is
//     readmitted directly.
//  6. Online reconfiguration: the cluster grows from [5,3] to [7,4]
//     while a read is in flight — the read parks on the sealed epoch
//     and completes under the new geometry — then shrinks back, with
//     the retired servers sealed forever and stale-epoch writers
//     NACKed to the current configuration.
//
// It exits nonzero if any scenario misbehaves, so it doubles as a
// smoke test: go run ./cmd/sodademo
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"slices"
	"time"

	"repro/internal/rs"
	"repro/internal/soda"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sodademo: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("\nsodademo: all scenarios passed")
}

func run(ctx context.Context) error {
	const n, k = 5, 3
	const key = "demo/register" // every scenario works one key of the namespace
	fmt.Printf("SODA demo — n=%d servers, [n,k]=[%d,%d] rs-view code, storage cost n/k = %.2f× the value\n\n", n, n, k, float64(n)/float64(k))

	codec, err := soda.NewCodec(n, k, rs.WithGenerator(rs.GeneratorRSView))
	if err != nil {
		return err
	}
	lb := soda.NewLoopback(n)

	// ---- scenario 1: write, then a read concurrent with a crash and a corrupt server
	fmt.Println("scenario 1: write, then a read with one crashed and one corrupt server")
	w, err := soda.NewWriter("w1", codec, lb.Conns())
	if err != nil {
		return err
	}
	v1 := []byte("SODA: one coded element per server, relayed to readers")
	tag1, err := w.Write(ctx, key, v1)
	if err != nil {
		return fmt.Errorf("write: %w", err)
	}
	fmt.Printf("  w1: get-tag -> put-data, wrote %d bytes under tag %v\n", len(v1), tag1)

	lb.Corrupt(4, soda.FlipByte(3))
	fmt.Println("  fault: server 4 storage rots (serves bit-flipped elements)")
	// Crash server 2 the instant its initial response reaches the
	// reader: the crash is concurrent with the read.
	lb.OnDeliver(func(server int, _, _ string, d soda.Delivery) {
		if server == 2 && d.Initial {
			lb.Crash(2)
			fmt.Println("  fault: server 2 crashes mid-read, just after answering get-data")
		}
	})
	r, err := soda.NewReader("r1", codec, lb.Conns(),
		soda.WithReaderFaults(0), soda.WithReadErrors(1))
	if err != nil {
		return err
	}
	res, err := r.Read(ctx, key)
	if err != nil {
		return fmt.Errorf("SODA_err read: %w", err)
	}
	lb.OnDeliver(nil)
	if !bytes.Equal(res.Value, v1) || res.Tag != tag1 {
		return fmt.Errorf("read returned tag %v value %q, want %v %q", res.Tag, res.Value, tag1, v1)
	}
	if !slices.Equal(res.Corrupt, []int{4}) {
		return fmt.Errorf("read located corrupt servers %v, want [4]", res.Corrupt)
	}
	fmt.Printf("  r1: %d responses, Verify mismatch -> DecodeErrors -> value %q\n", n, res.Value)
	fmt.Printf("  r1: corrupt server(s) located for quarantine: %v\n", res.Corrupt)
	if _, err := lb.Conns()[2].GetTag(ctx, key); err == nil {
		return fmt.Errorf("server 2 still answers after its crash")
	}
	fmt.Println("  check: server 2 is down, read completed anyway ✓")

	// ---- scenario 2: keep operating around the failures
	fmt.Println("\nscenario 2: write/read with server 2 down and server 4 quarantined")
	v2 := []byte("life goes on at quorum n-f")
	tag2, err := w.Write(ctx, key, v2) // 4 of 5 acks: n-f quorum
	if err != nil {
		return fmt.Errorf("write around the crash: %w", err)
	}
	fmt.Printf("  w1: wrote tag %v with a 4/5 ack quorum\n", tag2)
	rq, err := soda.NewReader("r2", codec, lb.Conns(),
		soda.WithReaderFaults(2), soda.WithQuarantine(res.Corrupt...))
	if err != nil {
		return err
	}
	res2, err := rq.Read(ctx, key)
	if err != nil {
		return fmt.Errorf("quarantined read: %w", err)
	}
	if !bytes.Equal(res2.Value, v2) || res2.Tag != tag2 {
		return fmt.Errorf("quarantined read = %v %q, want %v %q", res2.Tag, res2.Value, tag2, v2)
	}
	fmt.Printf("  r2: avoided server %v, read %q at tag %v ✓\n", res.Corrupt, res2.Value, res2.Tag)

	// ---- scenario 3: the same protocol over real TCP, multiplexed
	fmt.Println("\nscenario 3: write/read over localhost TCP (one mux connection per server)")
	addrs := make([]string, n)
	tsrvs := make([]*soda.Server, n)
	for i := 0; i < n; i++ {
		tsrvs[i] = soda.NewServer(i)
		ns, err := soda.ListenAndServe(tsrvs[i], "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ns.Close()
		addrs[i] = ns.Addr()
	}
	fmt.Printf("  servers: %v\n", addrs)
	tcodec, err := soda.NewCodec(n, k)
	if err != nil {
		return err
	}
	tconns := soda.TCPMuxConns(addrs)
	defer soda.CloseConns(tconns)
	tw, err := soda.NewWriter("w1", tcodec, tconns)
	if err != nil {
		return err
	}
	tr, err := soda.NewReader("r1", tcodec, tconns)
	if err != nil {
		return err
	}
	v3 := []byte("framed, pipelined, relayed")
	tag3, err := tw.Write(ctx, key, v3)
	if err != nil {
		return fmt.Errorf("tcp write: %w", err)
	}
	// A second key rides the same five connections: the namespace is
	// multiplexed, not dialed per key.
	if _, err := tw.Write(ctx, key+"/sibling", []byte("second key, same conns")); err != nil {
		return fmt.Errorf("tcp write sibling key: %w", err)
	}
	res3, err := tr.Read(ctx, key)
	if err != nil {
		return fmt.Errorf("tcp read: %w", err)
	}
	if !bytes.Equal(res3.Value, v3) || res3.Tag != tag3 {
		return fmt.Errorf("tcp read = %v %q, want %v %q", res3.Tag, res3.Value, tag3, v3)
	}
	fmt.Printf("  wrote and read %q at tag %v over the wire ✓\n", res3.Value, res3.Tag)
	var tms soda.MetricsSnapshot
	for _, s := range tsrvs {
		tms.Add(s.MetricsSnapshot())
	}
	fmt.Printf("  tcp cluster metrics: %d get-tags, %d put-datas, %d get-datas, %d relays, %d registers live\n",
		tms.GetTags, tms.PutDatas, tms.GetDatas, tms.Relays, tms.Registers)

	// ---- scenario 4: kill-repair-rejoin heals the loopback cluster
	fmt.Println("\nscenario 4: kill-repair-rejoin — anti-entropy repair heals the cluster")
	m := soda.NewMembership(n)
	m.MarkSuspect(2, fmt.Errorf("crashed during scenario 1"))
	m.MarkSuspect(4, fmt.Errorf("scenario 1 read located its element corrupt"))
	lb.Restart(2)      // rejoins with stale storage: it missed tag2
	lb.Corrupt(4, nil) // disk swap: server 4 stops serving rot
	fmt.Printf("  server 2 restarts stale (missed tag %v); server 4 gets a clean disk\n", tag2)
	rp, err := soda.NewRepairer(codec, lb.Conns(), m,
		soda.WithRepairInterval(50*time.Millisecond),
		soda.WithRepairBackoff(soda.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}))
	if err != nil {
		return err
	}
	for _, s := range []int{2, 4} {
		out, err := rp.RepairOnce(ctx, s)
		if err != nil {
			return fmt.Errorf("repair of server %d: %w", s, err)
		}
		fmt.Printf("  repair: server %d rebuilt from k=%d live elements -> %v, now %v\n", s, k, out, m.Health(s))
	}
	rz, err := soda.NewReader("r3", codec, lb.Conns(),
		soda.WithReaderFaults(0), soda.WithReadErrors(1), soda.WithReaderMembership(m))
	if err != nil {
		return err
	}
	res4, err := rz.Read(ctx, key)
	if err != nil {
		return fmt.Errorf("read after repair: %w", err)
	}
	if !bytes.Equal(res4.Value, v2) || res4.Tag != tag2 || len(res4.Corrupt) != 0 {
		return fmt.Errorf("read after repair = %v %q corrupt %v, want %v %q with none corrupt",
			res4.Tag, res4.Value, res4.Corrupt, tag2, v2)
	}
	fmt.Printf("  r3: all %d servers answer, nothing corrupt, value %q ✓\n", n, res4.Value)

	// A fresh kill, healed by the background repair loop this time,
	// while a membership-aware writer works around the hole.
	rpCtx, rpCancel := context.WithCancel(ctx)
	rpDone := make(chan struct{})
	go func() {
		defer close(rpDone)
		rp.Run(rpCtx)
	}()
	defer func() {
		rpCancel()
		<-rpDone
	}()
	lb.Crash(0)
	m.MarkSuspect(0, fmt.Errorf("killed for scenario 4"))
	fmt.Println("  fault: server 0 killed; repair loop running in the background")
	wm, err := soda.NewWriter("w2", codec, lb.Conns(), soda.WithWriterMembership(m))
	if err != nil {
		return err
	}
	v5 := []byte("written around the quarantined server")
	tag5, err := wm.Write(ctx, key, v5)
	if err != nil {
		return fmt.Errorf("write around the kill: %w", err)
	}
	fmt.Printf("  w2: excluded quarantined server 0, wrote tag %v on the live 4/5\n", tag5)
	lb.Restart(0)
	if err := m.AwaitLive(ctx, 0); err != nil {
		return fmt.Errorf("server 0 never repaired: %w", err)
	}
	fmt.Println("  repair loop: server 0 rebuilt, readmitted ->", m.Health(0))
	res5, err := rz.Read(ctx, key)
	if err != nil {
		return fmt.Errorf("read after rejoin: %w", err)
	}
	if !bytes.Equal(res5.Value, v5) || res5.Tag != tag5 || len(res5.Corrupt) != 0 {
		return fmt.Errorf("read after rejoin = %v %q corrupt %v, want %v %q",
			res5.Tag, res5.Value, res5.Corrupt, tag5, v5)
	}
	fmt.Printf("  r3: full-strength read after rejoin: %q at tag %v ✓\n", res5.Value, res5.Tag)

	var ms soda.MetricsSnapshot
	for i := 0; i < n; i++ {
		ms.Add(lb.Server(i).MetricsSnapshot())
	}
	fmt.Printf("\nloopback cluster metrics: %d get-tags, %d put-datas, %d get-datas, %d get-elems, %d repair-puts (%d installed), %d relays, %d registration GCs, %d registers live\n",
		ms.GetTags, ms.PutDatas, ms.GetDatas, ms.GetElems, ms.RepairPuts, ms.RepairInstalls, ms.Relays, ms.RegGCs, ms.Registers)

	// ---- scenario 5: power-cut and recover from the node's own WAL
	fmt.Println("\nscenario 5: power-cut + recover — durable nodes come back from their own disk")
	dir, err := os.MkdirTemp("", "sodademo-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dlb, err := soda.NewDurableLoopback(n, dir) // FsyncAlways: acked == on disk
	if err != nil {
		return err
	}
	defer dlb.CloseServers()
	dm := soda.NewMembership(n)
	dw, err := soda.NewWriter("w1", codec, dlb.Conns(), soda.WithWriterMembership(dm))
	if err != nil {
		return err
	}
	v6 := []byte("logged before the lights go out")
	tag6, err := dw.Write(ctx, key, v6)
	if err != nil {
		return fmt.Errorf("durable write: %w", err)
	}
	fmt.Printf("  w1: wrote tag %v; every server WAL-logged and fsynced its element\n", tag6)

	dlb.PowerCut(3)
	dm.MarkSuspect(3, fmt.Errorf("power cut"))
	fmt.Println("  fault: power cut on server 3 — process gone, unsynced bytes gone")
	v7 := []byte("written during the outage")
	tag7, err := dw.Write(ctx, key, v7)
	if err != nil {
		return fmt.Errorf("write during outage: %w", err)
	}
	fmt.Printf("  w1: cluster keeps going, wrote tag %v on the live 4/5\n", tag7)

	rec, err := dlb.Recover(3)
	if err != nil {
		return fmt.Errorf("recover server 3: %w", err)
	}
	rtag, _, _ := rec.Snapshot(key)
	if rtag != tag6 {
		return fmt.Errorf("server 3 recovered to tag %v, want its pre-cut %v", rtag, tag6)
	}
	if !dm.Readmit(3) {
		return fmt.Errorf("readmit of server 3 failed from health %v", dm.Health(3))
	}
	fmt.Printf("  recover: server 3 replayed snapshot+WAL to tag %v, readmitted (no donor repair) -> %v\n", rtag, dm.Health(3))

	dr, err := soda.NewReader("r1", codec, dlb.Conns(), soda.WithReaderMembership(dm))
	if err != nil {
		return err
	}
	res6, err := dr.Read(ctx, key)
	if err != nil {
		return fmt.Errorf("read after recovery: %w", err)
	}
	if !bytes.Equal(res6.Value, v7) || res6.Tag != tag7 {
		return fmt.Errorf("read after recovery = %v %q, want %v %q", res6.Tag, res6.Value, tag7, v7)
	}
	fmt.Printf("  r1: read %q at tag %v with the recovered node back in quorums ✓\n", res6.Value, res6.Tag)

	var dms soda.MetricsSnapshot
	for i := 0; i < n; i++ {
		dms.Add(dlb.Server(i).MetricsSnapshot())
	}
	fmt.Printf("  durable cluster metrics: %d WAL appends, %d recoveries, %d torn-record drops, %d WAL failures\n",
		dms.WALAppends, dms.Recoveries, dms.WALTornDrops, dms.WALFailures)

	// ---- scenario 6: online reconfiguration — grow live, read across the flip, shrink back
	fmt.Println("\nscenario 6: online reconfiguration — grow [5,3] -> [7,4] live, then shrink back")
	glb := soda.NewLoopback(7) // two standby nodes beyond the active five
	codec7, err := soda.NewCodec(7, 4)
	if err != nil {
		return err
	}
	cfg0 := &soda.Config{Epoch: 0, Codec: codec, Conns: glb.ConnsAt(soda.SeedEpoch, 5), F: -1}
	view, err := soda.NewConfigView(cfg0)
	if err != nil {
		return err
	}
	ew, err := soda.NewEpochWriter("w1", view)
	if err != nil {
		return err
	}
	er, err := soda.NewEpochReader("r1", view)
	if err != nil {
		return err
	}
	v8 := []byte("written under epoch 0, [5,3]")
	tag8, err := ew.Write(ctx, key, v8)
	if err != nil {
		return fmt.Errorf("epoch-0 write: %w", err)
	}
	fmt.Printf("  w1: wrote tag %v under epoch 0 (every frame carries the epoch)\n", tag8)

	// Seal the old members up front so the next read provably straddles
	// the flip: its epoch-0 frames bounce with "want epoch 1" and it
	// parks on the view. (The coordinator re-issues the seal — every
	// phase is idempotent.)
	for i := 0; i < 5; i++ {
		if _, err := glb.Server(i).Reconfig(soda.ReconfigSeal, 1, 7, 4); err != nil {
			return fmt.Errorf("seal server %d: %w", i, err)
		}
	}
	fmt.Println("  flip: epoch 0 sealed on the old members; client quorums pause")
	type readOut struct {
		res soda.ReadResult
		err error
	}
	readC := make(chan readOut, 1)
	go func() {
		res, err := er.Read(ctx, key)
		readC <- readOut{res, err}
	}()
	select {
	case out := <-readC:
		return fmt.Errorf("read finished against a sealed epoch: %v %v", out.res, out.err)
	case <-time.After(50 * time.Millisecond):
		fmt.Println("  r1: read in flight is parked on the sealed epoch (no cross-epoch quorum)")
	}

	cfg1 := &soda.Config{Epoch: 1, Codec: codec7, Conns: glb.ConnsAt(1, 7), F: -1}
	rc := soda.NewReconfigurator(view, soda.WithReconfigLogf(func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	}))
	if err := rc.Apply(ctx, cfg1); err != nil {
		return fmt.Errorf("grow to epoch 1: %w", err)
	}
	out := <-readC
	if out.err != nil {
		return fmt.Errorf("read across the flip: %w", out.err)
	}
	if !bytes.Equal(out.res.Value, v8) || out.res.Tag != tag8 {
		return fmt.Errorf("read across the flip = %v %q, want %v %q", out.res.Tag, out.res.Value, tag8, v8)
	}
	fmt.Printf("  r1: parked read completed under epoch 1: %q at tag %v ✓ (migration preserved it)\n", out.res.Value, out.res.Tag)

	// A writer still holding the retired geometry is refused with the
	// typed stale-epoch error naming the epoch to fetch.
	oldW, err := soda.NewWriter("w-stale", codec, glb.ConnsAt(soda.SeedEpoch, 5))
	if err != nil {
		return err
	}
	if _, err := oldW.Write(ctx, key, []byte("from the past")); !errors.Is(err, soda.ErrStaleEpoch) {
		return fmt.Errorf("epoch-0 writer got %v, want ErrStaleEpoch", err)
	}
	fmt.Println("  check: a writer still on epoch 0 is NACKed with ErrStaleEpoch ✓")

	v9 := []byte("written under epoch 1, [7,4]")
	tag9, err := ew.Write(ctx, key, v9)
	if err != nil {
		return fmt.Errorf("epoch-1 write: %w", err)
	}
	fmt.Printf("  w1: same EpochWriter wrote tag %v across all 7 servers\n", tag9)

	cfg2 := &soda.Config{Epoch: 2, Codec: codec, Conns: glb.ConnsAt(2, 5), F: -1}
	if err := rc.Apply(ctx, cfg2); err != nil {
		return fmt.Errorf("shrink to epoch 2: %w", err)
	}
	res9, err := er.Read(ctx, key)
	if err != nil {
		return fmt.Errorf("read after shrink: %w", err)
	}
	if !bytes.Equal(res9.Value, v9) || res9.Tag != tag9 {
		return fmt.Errorf("read after shrink = %v %q, want %v %q", res9.Tag, res9.Value, tag9, v9)
	}
	for i := 5; i < 7; i++ {
		st := glb.Server(i).EpochStatus()
		if !st.Sealed {
			return fmt.Errorf("retired server %d is not sealed: %+v", i, st)
		}
	}
	fmt.Printf("  r1: back on [5,3] at epoch 2, read %q at tag %v ✓; retired servers 5-6 stay sealed\n", res9.Value, res9.Tag)
	return nil
}
