// Command sodavet is the repo's project-invariant static analyzer: a
// stdlib-only go-vet-style driver that loads and typechecks every
// package in the module and runs the internal/lint analyzer suite
// (atomicmix, lockhold, errwrap, epochframe, poolsafe) over it.
//
// Usage:
//
//	sodavet [-json] [-rules atomicmix,errwrap] [-list] [packages...]
//
// Packages default to ./... relative to the module root (found by
// walking up from the working directory). Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
//
// Suppress a finding at one site with
//
//	//lint:ignore <rule> <reason>
//
// on the flagged line or the line above it. The reason is mandatory
// and the rule name must exist; malformed directives fail the run and
// cannot themselves be suppressed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All
	if *rules != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "sodavet: unknown rule %q (known: %s)\n", name, strings.Join(lint.Rules(), ", "))
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sodavet:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "sodavet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "sodavet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
