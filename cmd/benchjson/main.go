// Command benchjson reruns the benchmark suite and regenerates the
// repository's BENCH_rs.json in one deterministic format, so the perf
// trajectory file is produced by a tool instead of hand-edited.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_rs.json -- go test -run '^$' -bench ... ./...
//
// Everything after "--" is executed as the benchmark command; its
// combined output is parsed for "pkg:", "cpu:" and benchmark result
// lines and streamed through to stderr so progress stays visible. The
// narrative "notes" field of an existing output file is preserved
// (benchmarks change every run, the story around them does not), and a
// few derived ratios the trajectory tracks are recomputed when their
// inputs are present. Map keys are emitted sorted (encoding/json),
// which is what makes reruns diff cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchResult struct {
	NsOp     float64  `json:"ns_op"`
	MBs      *float64 `json:"mb_s,omitempty"`
	BOp      *int64   `json:"b_op,omitempty"`
	AllocsOp *int64   `json:"allocs_op,omitempty"`
}

type output struct {
	Date       string                 `json:"date"`
	CPU        string                 `json:"cpu,omitempty"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Go         string                 `json:"go"`
	Command    string                 `json:"command"`
	Notes      string                 `json:"notes,omitempty"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	Derived    map[string]float64     `json:"derived,omitempty"`
}

// benchLine matches "BenchmarkFoo/bar-8  123  456 ns/op  [789 MB/s]  [12 B/op]  [3 allocs/op]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_rs.json", "output file; an existing file's notes/cpu fields are preserved")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark command given (pass it after --)")
		os.Exit(2)
	}

	res := output{
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		Command:    strings.Join(args, " "),
		Benchmarks: map[string]benchResult{},
	}
	if old, err := os.ReadFile(*out); err == nil {
		var prev struct {
			Notes string `json:"notes"`
			CPU   string `json:"cpu"`
		}
		if json.Unmarshal(old, &prev) == nil {
			res.Notes, res.CPU = prev.Notes, prev.CPU
		}
	}

	cmd := exec.Command(args[0], args[1:]...)
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	pkg := ""
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			full := strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			pkg = full[strings.LastIndexByte(full, '/')+1:]
		case strings.HasPrefix(line, "cpu: "):
			res.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			name := strings.TrimPrefix(m[1], "Benchmark")
			if pkg != "" {
				name = pkg + "/" + name
			}
			var r benchResult
			r.NsOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				v, _ := strconv.ParseFloat(m[4], 64)
				r.MBs = &v
			}
			if m[5] != "" {
				v, _ := strconv.ParseInt(m[5], 10, 64)
				r.BOp = &v
			}
			if m[6] != "" {
				v, _ := strconv.ParseInt(m[6], 10, 64)
				r.AllocsOp = &v
			}
			res.Benchmarks[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("benchmark command: %w", err))
	}
	if len(res.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed from %q", res.Command))
	}

	res.Derived = derived(res.Benchmarks)
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(res.Benchmarks), *out)
}

// derived recomputes the ratio metrics the perf trajectory tracks,
// skipping any whose inputs are missing from this run.
func derived(b map[string]benchResult) map[string]float64 {
	d := map[string]float64{}
	ratio := func(key, slow, fast string) {
		s, okS := b[slow]
		f, okF := b[fast]
		if okS && okF && f.NsOp > 0 {
			d[key] = round2(s.NsOp / f.NsOp)
		}
	}
	ratio("decode_errors_syndrome_vs_brute_n14k10e2_64KiB",
		"rs/DecodeErrors/brute/n14k10e2/64KiB", "rs/DecodeErrors/syndrome/n14k10e2/64KiB")
	ratio("fused_vs_unfused_k10_64KiB",
		"gf256/MulAddMultiUnfused/k10/64KiB", "gf256/MulAddMulti/k10/64KiB")
	ratio("gfni_vs_avx2_64KiB",
		"gf256/MulAddMultiKernels/avx2", "gf256/MulAddMultiKernels/gfni")
	if len(d) == 0 {
		return nil
	}
	return d
}

func round2(v float64) float64 {
	return math.Round(v*100) / 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
