// Command sodaload is an open-loop load harness for the SODA multi-key
// register namespace: arrivals are scheduled on a constant-rate clock
// (T_i = start + i/rate) regardless of completions, so a slow system
// shows up as queueing delay and shed arrivals instead of the
// closed-loop trap of the generator politely slowing down with it.
// Latency is measured from an operation's SCHEDULED arrival to its
// completion — queue wait included — and arrivals that find the
// bounded in-flight window full are counted as shed, never silently
// dropped.
//
// Single-run mode drives one transport/key-count/rate/mix combination
// and prints goodput, latency percentiles, and the cluster-wide server
// metric counters:
//
//	go run ./cmd/sodaload -transport loopback -keys 10000 -rate 100000 -duration 3s
//	go run ./cmd/sodaload -transport tcp-mux -keys 64 -rate 400 -read-frac 0
//
// Suite mode (-suite) runs the repository's benchmark set — loopback
// throughput across the full keyspace, then write latency over
// dial-per-op TCP vs the persistent multiplexed transport at the same
// offered load — and regenerates BENCH_soda.json deterministically
// (sorted keys, tool-computed derived ratios, narrative notes
// preserved). -compare-schema A B checks two such files have the same
// shape, which is how CI pins regeneration determinism without pinning
// machine-dependent numbers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/soda"
)

type runConfig struct {
	transport string // loopback | tcp-mux | tcp-dial
	n, k      int
	keys      int
	rate      float64 // offered arrivals per second
	duration  time.Duration
	readFrac  float64
	vsize     int
	inflight  int // bounded in-flight window (worker count + queue)
	prewrite  bool
	seed      int64
	// kill enables the fault-injection mode: the cluster is durable
	// (per-node WAL), and a kill loop power-cuts one server at a time
	// mid-load, recovers it from its disk, and heals it through the
	// quarantine → donor-repair path while the generator keeps
	// offering. Healing lag (power cut → back Live) is reported as
	// percentiles. Loopback transport only.
	kill bool
}

// runResult is one load run's outcome; the field set is the JSON
// schema the determinism check pins, so nothing here is omitempty.
type runResult struct {
	Transport    string  `json:"transport"`
	N            int     `json:"n"`
	K            int     `json:"k"`
	Keys         int     `json:"keys"`
	OfferedOpsS  float64 `json:"offered_rate_ops_s"`
	DurationS    float64 `json:"duration_s"`
	ReadFrac     float64 `json:"read_frac"`
	ValueBytes   int     `json:"value_bytes"`
	Inflight     int     `json:"inflight"`
	Arrivals     int64   `json:"arrivals"`
	Completed    int64   `json:"completed_ops"`
	Shed         int64   `json:"shed_arrivals"`
	Errors       int64   `json:"errors"`
	GoodputOpsS  float64 `json:"goodput_ops_s"`
	ReadP50Us    float64 `json:"read_p50_us"`
	ReadP99Us    float64 `json:"read_p99_us"`
	WriteP50Us   float64 `json:"write_p50_us"`
	WriteP99Us   float64 `json:"write_p99_us"`
	ServerRelays uint64  `json:"server_relays"`
	ServerRegGCs uint64  `json:"server_reg_gcs"`
	// Namespace-hygiene gauges/counters: registrations still held at
	// the end of the run (should be ~0 once readers tear down) and
	// empty registers collected during it.
	ServerRegistrations uint64 `json:"server_registrations"`
	ServerRegisterGCs   uint64 `json:"server_register_gcs"`
	// Fault-injection accounting, populated by -kill runs and present
	// (zero) in every run so the schema never shifts: servers killed,
	// healing lag from power cut to readmission, and the cluster-wide
	// quarantine/repair counters behind it.
	Kills                int64   `json:"kills"`
	HealP50Ms            float64 `json:"heal_p50_ms"`
	HealP99Ms            float64 `json:"heal_p99_ms"`
	ServerQuarantines    uint64  `json:"server_quarantines"`
	ServerRepairPuts     uint64  `json:"server_repair_puts"`
	ServerRepairInstalls uint64  `json:"server_repair_installs"`
	ServerRecoveries     uint64  `json:"server_recoveries"`
}

type suiteOutput struct {
	Date       string               `json:"date"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	Go         string               `json:"go"`
	Notes      string               `json:"notes,omitempty"`
	Runs       map[string]runResult `json:"runs"`
	Derived    map[string]float64   `json:"derived"`
}

func main() {
	var (
		transport = flag.String("transport", "loopback", "loopback | tcp-mux | tcp-dial")
		n         = flag.Int("n", 5, "cluster size")
		k         = flag.Int("k", 3, "code dimension (data shards)")
		keys      = flag.Int("keys", 10000, "distinct register keys to spread traffic across")
		rate      = flag.Float64("rate", 100000, "offered arrival rate, ops/s (open loop)")
		duration  = flag.Duration("duration", 3*time.Second, "generation window")
		readFrac  = flag.Float64("read-frac", 0.5, "fraction of arrivals that are reads")
		vsize     = flag.Int("vsize", 128, "value size in bytes")
		inflight  = flag.Int("inflight", 256, "bounded in-flight window; arrivals beyond it are shed")
		kill      = flag.Bool("kill", false, "power-cut/recover/repair servers mid-run (loopback only; durable nodes)")
		seed      = flag.Int64("seed", 1, "op-mix RNG seed")
		suite     = flag.Bool("suite", false, "run the benchmark suite and write -out")
		out       = flag.String("out", "BENCH_soda.json", "suite output file")
		cmpSchema = flag.Bool("compare-schema", false, "compare the JSON schema of two files given as args")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the load run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile of the load run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	if *cmpSchema {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare-schema needs exactly two files, got %d", flag.NArg()))
		}
		if err := compareSchema(flag.Arg(0), flag.Arg(1)); err != nil {
			fatal(err)
		}
		fmt.Printf("sodaload: %s and %s have identical schemas\n", flag.Arg(0), flag.Arg(1))
		return
	}

	cfg := runConfig{
		transport: *transport, n: *n, k: *k, keys: *keys, rate: *rate,
		duration: *duration, readFrac: *readFrac, vsize: *vsize,
		inflight: *inflight, prewrite: *readFrac > 0, seed: *seed, kill: *kill,
	}
	if *suite {
		if err := runSuite(cfg, *out); err != nil {
			fatal(err)
		}
		return
	}
	res, err := runLoad(cfg)
	if err != nil {
		fatal(err)
	}
	printResult(res)
}

// runSuite executes the repository benchmark set and regenerates the
// output file: the loopback namespace throughput run at the full key
// count, then the transport comparison — the same write-only offered
// load over dial-per-op TCP (the before) and multiplexed TCP (the
// after).
func runSuite(base runConfig, outPath string) error {
	tcpDur := min(base.duration, 2*time.Second)
	tcpKeys := min(base.keys, 64)
	tcpRate := math.Min(base.rate, 400)
	runs := []struct {
		name string
		cfg  runConfig
	}{
		{"loopback/namespace", runConfig{
			transport: "loopback", n: base.n, k: base.k, keys: base.keys,
			rate: base.rate, duration: base.duration, readFrac: base.readFrac,
			vsize: base.vsize, inflight: base.inflight, prewrite: true, seed: base.seed,
		}},
		{"tcp-dial/write-lat", runConfig{
			transport: "tcp-dial", n: base.n, k: base.k, keys: tcpKeys,
			rate: tcpRate, duration: tcpDur, readFrac: 0,
			vsize: base.vsize, inflight: 64, seed: base.seed,
		}},
		{"tcp-mux/write-lat", runConfig{
			transport: "tcp-mux", n: base.n, k: base.k, keys: tcpKeys,
			rate: tcpRate, duration: tcpDur, readFrac: 0,
			vsize: base.vsize, inflight: 64, seed: base.seed,
		}},
		// The survival run: durable loopback nodes at a modest rate with
		// the kill loop power-cutting and donor-repairing servers
		// mid-load. Goodput through the holes and healing lag are the
		// numbers; the quarantine/repair counters prove the heal path
		// actually ran.
		{"loopback/kill-repair", runConfig{
			transport: "loopback", n: base.n, k: base.k, keys: tcpKeys,
			rate: math.Min(base.rate, 2000), duration: base.duration,
			readFrac: base.readFrac, vsize: base.vsize, inflight: 128,
			prewrite: base.readFrac > 0, seed: base.seed, kill: true,
		}},
	}

	res := suiteOutput{
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		Runs:       map[string]runResult{},
		Derived:    map[string]float64{},
	}
	if old, err := os.ReadFile(outPath); err == nil {
		var prev struct {
			Notes string `json:"notes"`
		}
		if json.Unmarshal(old, &prev) == nil {
			res.Notes = prev.Notes
		}
	}
	for _, r := range runs {
		fmt.Fprintf(os.Stderr, "== %s ==\n", r.name)
		rr, err := runLoad(r.cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		printResult(rr)
		res.Runs[r.name] = rr
	}

	dial, mux := res.Runs["tcp-dial/write-lat"], res.Runs["tcp-mux/write-lat"]
	res.Derived["dial_over_mux_write_p50"] = round2(ratio(dial.WriteP50Us, mux.WriteP50Us))
	res.Derived["dial_over_mux_write_p99"] = round2(ratio(dial.WriteP99Us, mux.WriteP99Us))
	res.Derived["loopback_goodput_kops_s"] = round2(res.Runs["loopback/namespace"].GoodputOpsS / 1000)
	res.Derived["kill_heal_p99_ms"] = res.Runs["loopback/kill-repair"].HealP99Ms

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sodaload: wrote %d runs to %s\n", len(res.Runs), outPath)
	return nil
}

// cluster is a running server set behind a []Conn, whatever the
// transport. Kill-mode clusters also carry the loopback (for
// PowerCut/Recover) and the shared membership.
type cluster struct {
	conns   []soda.Conn
	servers []*soda.Server
	lb      *soda.Loopback
	m       *soda.Membership
	close   func()
}

// metrics sums the cluster-wide counters. Read through the loopback
// when there is one: Recover swaps fresh state machines in, and the
// startup slice would keep counting the dead ones.
func (c *cluster) metrics() soda.MetricsSnapshot {
	var ms soda.MetricsSnapshot
	if c.lb != nil {
		for i := 0; i < c.lb.Size(); i++ {
			ms.Add(c.lb.Server(i).MetricsSnapshot())
		}
		return ms
	}
	for _, s := range c.servers {
		ms.Add(s.MetricsSnapshot())
	}
	return ms
}

func startCluster(cfg runConfig) (*cluster, error) {
	switch cfg.transport {
	case "loopback":
		if cfg.kill {
			// Durable nodes (interval fsync keeps the generator honest
			// about protocol cost, not disk cost) so a power-cut node has
			// a disk to come back from.
			dir, err := os.MkdirTemp("", "sodaload-kill-")
			if err != nil {
				return nil, err
			}
			lb, err := soda.NewDurableLoopback(cfg.n, dir, soda.WithFsyncEvery(5*time.Millisecond))
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			return &cluster{conns: lb.Conns(), lb: lb, m: soda.NewMembership(cfg.n), close: func() {
				lb.CloseServers()
				os.RemoveAll(dir)
			}}, nil
		}
		lb := soda.NewLoopback(cfg.n)
		servers := make([]*soda.Server, cfg.n)
		for i := range servers {
			servers[i] = lb.Server(i)
		}
		return &cluster{conns: lb.Conns(), servers: servers, lb: lb, close: func() {}}, nil
	case "tcp-mux", "tcp-dial":
		if cfg.kill {
			return nil, fmt.Errorf("-kill needs the loopback transport (PowerCut/Recover are in-process faults)")
		}
		servers := make([]*soda.Server, cfg.n)
		nets := make([]*soda.NetServer, cfg.n)
		addrs := make([]string, cfg.n)
		for i := 0; i < cfg.n; i++ {
			servers[i] = soda.NewServer(i)
			ns, err := soda.ListenAndServe(servers[i], "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			nets[i] = ns
			addrs[i] = ns.Addr()
		}
		var conns []soda.Conn
		if cfg.transport == "tcp-mux" {
			conns = soda.TCPMuxConns(addrs)
		} else {
			conns = soda.TCPConns(addrs)
		}
		return &cluster{conns: conns, servers: servers, close: func() {
			soda.CloseConns(conns)
			for _, ns := range nets {
				ns.Close()
			}
		}}, nil
	default:
		return nil, fmt.Errorf("unknown transport %q", cfg.transport)
	}
}

type workerStats struct {
	readLat, writeLat []int64 // ns, from scheduled arrival to completion
	errs              int64
}

func runLoad(cfg runConfig) (runResult, error) {
	cl, err := startCluster(cfg)
	if err != nil {
		return runResult{}, err
	}
	defer cl.close()
	codec, err := soda.NewCodec(cfg.n, cfg.k)
	if err != nil {
		return runResult{}, err
	}
	var wopts []soda.WriterOption
	var ropts []soda.ReaderOption
	if cl.m != nil {
		// Kill mode: membership-aware clients treat the quarantined
		// server as already failed instead of waiting out its timeout.
		wopts = append(wopts, soda.WithWriterMembership(cl.m))
		ropts = append(ropts, soda.WithReaderMembership(cl.m))
	}
	w, err := soda.NewWriter("load-w", codec, cl.conns, wopts...)
	if err != nil {
		return runResult{}, err
	}
	r, err := soda.NewReader("load-r", codec, cl.conns, ropts...)
	if err != nil {
		return runResult{}, err
	}

	keys := make([]string, cfg.keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("load/%06d", i)
	}
	value := make([]byte, cfg.vsize)
	for i := range value {
		value[i] = byte(i * 31)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration+60*time.Second)
	defer cancel()

	// Prewrite so reads hit written registers from the first arrival
	// (untimed: it is setup, not load).
	if cfg.prewrite {
		var pwg sync.WaitGroup
		sem := make(chan struct{}, 16)
		var perr atomic.Value
		for _, key := range keys {
			sem <- struct{}{}
			pwg.Add(1)
			go func(key string) {
				defer pwg.Done()
				defer func() { <-sem }()
				if _, err := w.Write(ctx, key, value); err != nil {
					perr.Store(err)
				}
			}(key)
		}
		pwg.Wait()
		if err, _ := perr.Load().(error); err != nil {
			return runResult{}, fmt.Errorf("prewrite: %w", err)
		}
	}

	// The bounded in-flight window: cfg.inflight workers behind an
	// unbuffered channel, so an arrival either hands off to an idle
	// worker immediately or is shed. Queue wait still exists inside the
	// window (a worker may be finishing its previous op) and is part of
	// the measured latency because the clock starts at the SCHEDULED
	// arrival time.
	type job struct {
		sched time.Time
		write bool
		key   string
	}
	jobs := make(chan job, cfg.inflight)
	stats := make([]workerStats, cfg.inflight)
	var wwg sync.WaitGroup
	for wi := 0; wi < cfg.inflight; wi++ {
		wwg.Add(1)
		go func(ws *workerStats) {
			defer wwg.Done()
			for j := range jobs {
				var err error
				if j.write {
					_, err = w.Write(ctx, j.key, value)
				} else {
					_, err = r.Read(ctx, j.key)
				}
				lat := time.Since(j.sched).Nanoseconds()
				if err != nil {
					ws.errs++
					continue
				}
				if j.write {
					ws.writeLat = append(ws.writeLat, lat)
				} else {
					ws.readLat = append(ws.readLat, lat)
				}
			}
		}(&stats[wi])
	}

	start := time.Now()
	deadline := start.Add(cfg.duration)

	// The kill loop, when enabled: rotate through victims, power-cut
	// each mid-load, recover it from its own disk, and heal it through
	// quarantine → donor repair while the generator keeps offering.
	// Healing lag is the operator-visible window: power cut to back
	// Live.
	var (
		kills    int64
		healLags []int64 // ns
		kwg      sync.WaitGroup
	)
	if cfg.kill {
		rp, err := soda.NewRepairer(codec, cl.conns, cl.m,
			soda.WithRepairBackoff(soda.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}))
		if err != nil {
			return runResult{}, err
		}
		pause := cfg.duration / 4
		downFor := min(cfg.duration/10, 150*time.Millisecond)
		kwg.Add(1)
		go func() {
			defer kwg.Done()
			victim := 1
			for {
				time.Sleep(pause)
				// A cycle started too close to the deadline would measure
				// healing of an idle cluster; stop instead.
				if time.Now().Add(pause).After(deadline) || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				cl.lb.PowerCut(victim)
				cl.m.MarkSuspect(victim, soda.ErrServerDown)
				time.Sleep(downFor)
				if _, err := cl.lb.Recover(victim); err != nil {
					fmt.Fprintf(os.Stderr, "sodaload: kill loop: recover server %d: %v\n", victim, err)
					return
				}
				for ctx.Err() == nil {
					if _, err := rp.RepairOnce(ctx, victim); err == nil {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if !cl.m.IsLive(victim) {
					return
				}
				kills++
				healLags = append(healLags, time.Since(t0).Nanoseconds())
				victim = victim%(cfg.n-1) + 1 // rotate 1..n-1; index 0 stays up
			}
		}()
	}

	// The open loop: arrival i is due at start + i/rate, whether or not
	// anything has completed. Sleeps only when ahead; when behind, it
	// dispatches the backlog as fast as the shed check allows.
	rng := rand.New(rand.NewSource(cfg.seed))
	interval := time.Duration(float64(time.Second) / cfg.rate)
	var arrivals, shed int64
	for i := int64(0); ; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if sched.After(deadline) {
			break
		}
		if d := time.Until(sched); d > 50*time.Microsecond {
			time.Sleep(d)
		}
		arrivals++
		j := job{
			sched: sched,
			write: rng.Float64() >= cfg.readFrac,
			key:   keys[rng.Intn(len(keys))],
		}
		select {
		case jobs <- j:
		default:
			shed++ // in-flight window full: honest accounting, no blocking
		}
	}
	close(jobs)
	wwg.Wait()
	kwg.Wait()
	elapsed := time.Since(start)

	var readLat, writeLat []int64
	var errs int64
	for i := range stats {
		readLat = append(readLat, stats[i].readLat...)
		writeLat = append(writeLat, stats[i].writeLat...)
		errs += stats[i].errs
	}
	sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
	sort.Slice(writeLat, func(i, j int) bool { return writeLat[i] < writeLat[j] })
	completed := int64(len(readLat) + len(writeLat))

	sort.Slice(healLags, func(i, j int) bool { return healLags[i] < healLags[j] })
	var quarantines uint64
	if cl.m != nil {
		quarantines = cl.m.Quarantines()
	}
	ms := cl.metrics()
	return runResult{
		Transport:           cfg.transport,
		N:                   cfg.n,
		K:                   cfg.k,
		Keys:                cfg.keys,
		OfferedOpsS:         cfg.rate,
		DurationS:           round2(cfg.duration.Seconds()),
		ReadFrac:            cfg.readFrac,
		ValueBytes:          cfg.vsize,
		Inflight:            cfg.inflight,
		Arrivals:            arrivals,
		Completed:           completed,
		Shed:                shed,
		Errors:              errs,
		GoodputOpsS:         round2(float64(completed) / elapsed.Seconds()),
		ReadP50Us:           pctileUs(readLat, 50),
		ReadP99Us:           pctileUs(readLat, 99),
		WriteP50Us:          pctileUs(writeLat, 50),
		WriteP99Us:          pctileUs(writeLat, 99),
		ServerRelays:        ms.Relays,
		ServerRegGCs:        ms.RegGCs,
		ServerRegistrations: ms.Registrations,
		ServerRegisterGCs:   ms.RegisterGCs,

		Kills:                kills,
		HealP50Ms:            pctileMs(healLags, 50),
		HealP99Ms:            pctileMs(healLags, 99),
		ServerQuarantines:    quarantines,
		ServerRepairPuts:     ms.RepairPuts,
		ServerRepairInstalls: ms.RepairInstalls,
		ServerRecoveries:     ms.Recoveries,
	}, nil
}

func printResult(r runResult) {
	fmt.Printf("%s n=%d k=%d keys=%d offered=%.0f/s for %.2gs (read-frac %.2g, %dB values, inflight %d)\n",
		r.Transport, r.N, r.K, r.Keys, r.OfferedOpsS, r.DurationS, r.ReadFrac, r.ValueBytes, r.Inflight)
	fmt.Printf("  arrivals %d  completed %d  shed %d  errors %d  goodput %.0f ops/s\n",
		r.Arrivals, r.Completed, r.Shed, r.Errors, r.GoodputOpsS)
	fmt.Printf("  read  p50 %8.1fµs  p99 %8.1fµs\n", r.ReadP50Us, r.ReadP99Us)
	fmt.Printf("  write p50 %8.1fµs  p99 %8.1fµs\n", r.WriteP50Us, r.WriteP99Us)
	fmt.Printf("  servers: %d relays, %d registration GCs, %d registrations held, %d registers collected\n",
		r.ServerRelays, r.ServerRegGCs, r.ServerRegistrations, r.ServerRegisterGCs)
	if r.Kills > 0 {
		fmt.Printf("  kills %d  heal p50 %.1fms  p99 %.1fms  (%d quarantines, %d repair-puts, %d installed, %d recoveries)\n",
			r.Kills, r.HealP50Ms, r.HealP99Ms, r.ServerQuarantines, r.ServerRepairPuts, r.ServerRepairInstalls, r.ServerRecoveries)
	}
}

// pctileUs returns the p-th percentile of sorted ns latencies in µs
// (0 when the class saw no ops — write-only runs keep the read fields
// present but zero so the JSON schema never shifts).
func pctileUs(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return round2(float64(sorted[idx]) / 1000)
}

// pctileMs is pctileUs for coarser (healing-lag) durations: the p-th
// percentile of sorted ns values in ms.
func pctileMs(sorted []int64, p float64) float64 {
	return round2(pctileUs(sorted, p) / 1000)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// compareSchema verifies two JSON files have the same key structure —
// same nested field paths, value types ignored for numbers vs numbers.
// This is the determinism contract for BENCH_soda.json: regeneration
// on a different machine changes numbers, never shape.
func compareSchema(aPath, bPath string) error {
	a, err := schemaPaths(aPath)
	if err != nil {
		return err
	}
	b, err := schemaPaths(bPath)
	if err != nil {
		return err
	}
	var diffs []string
	for p := range a {
		if !b[p] {
			diffs = append(diffs, fmt.Sprintf("  only in %s: %s", aPath, p))
		}
	}
	for p := range b {
		if !a[p] {
			diffs = append(diffs, fmt.Sprintf("  only in %s: %s", bPath, p))
		}
	}
	if len(diffs) > 0 {
		sort.Strings(diffs)
		return fmt.Errorf("schemas differ:\n%s", strings.Join(diffs, "\n"))
	}
	return nil
}

func schemaPaths(path string) (map[string]bool, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(buf, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]bool{}
	walkSchema(v, "$", out)
	return out, nil
}

func walkSchema(v any, path string, out map[string]bool) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			walkSchema(sub, path+"."+k, out)
		}
	case []any:
		out[path+"[]"] = true
		if len(t) > 0 {
			walkSchema(t[0], path+"[]", out)
		}
	default:
		out[fmt.Sprintf("%s:%T", path, v)] = true
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sodaload:", err)
	os.Exit(1)
}
