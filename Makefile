GO ?= go

# The benchmark selection shared by `make bench` and `make bench-json`.
BENCH_PATTERN := MulAddSlice|MulSlice|MulAddMulti|Encode|Reconstruct|Verify|DecodeErrors

.PHONY: all build build-cross test test-durability test-reconfig vet lint bench bench-smoke bench-json bench-soda-json bench-soda-smoke race fuzz

all: vet lint build test race

build:
	$(GO) build ./...

# build-cross keeps the portable (noasm) kernel path buildable: a
# non-amd64 cross-compile plus the purego tag on the host arch.
build-cross:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=darwin GOARCH=arm64 $(GO) build ./...
	$(GO) build -tags purego ./...
	GOOS=linux GOARCH=arm64 $(GO) vet ./...

test:
	$(GO) test ./...

# test-durability is the fault-injection lane: the WAL/snapshot/
# recovery battery (power cuts at every byte offset, torn records,
# fsync-mode loss semantics, the kill-recover-rejoin soak) under the
# race detector.
test-durability:
	$(GO) test -race -run 'WAL|Snapshot|Recover|PowerCut|Fsync|Torn|Durable' ./internal/soda/

# test-reconfig is the online-reconfiguration lane: epoch admission,
# cross-epoch quorum rejection, live grow/shrink migration, the WAL'd
# epoch state surviving power cuts, and the grow-then-shrink soak with
# concurrent epoch-following writers/readers — under the race detector.
test-reconfig:
	$(GO) test -race -run 'Reconfig|Epoch' ./internal/soda/

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	$(GO) vet -tags purego ./...

# lint runs sodavet — the project's own stdlib-only analyzer suite
# (atomicmix, lockhold, errwrap, epochframe, poolsafe) — over every
# package, then the analyzers' golden-fixture tests. Suppress a
# finding with `//lint:ignore <rule> <reason>`; the reason is
# mandatory and reviewed like code.
lint:
	$(GO) run ./cmd/sodavet ./...
	$(GO) test ./internal/lint/

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem ./internal/gf256/ ./internal/rs/

# bench-smoke compiles and runs every benchmark a fixed 10 iterations on
# both the SIMD and purego kernel ladders: a CI-friendly check that the
# benchmark suite itself stays healthy, with no performance gating.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=10x ./internal/gf256/ ./internal/rs/
	$(GO) test -tags purego -run '^$$' -bench . -benchtime=10x ./internal/gf256/ ./internal/rs/

# bench-json reruns the bench suite and regenerates BENCH_rs.json in one
# deterministic format (sorted keys, tool-computed derived ratios), so
# perf-trajectory entries are produced, not hand-edited. The narrative
# "notes" field of the existing file is preserved.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_rs.json -- \
		$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 300ms -benchmem ./internal/gf256/ ./internal/rs/

# bench-soda-json reruns the open-loop load suite and regenerates
# BENCH_soda.json deterministically (sorted keys, fixed schema,
# tool-computed derived ratios; the "notes" field of the existing file
# is preserved). Numbers are machine-dependent; the schema is not.
bench-soda-json:
	$(GO) run ./cmd/sodaload -suite -out BENCH_soda.json

# bench-soda-smoke runs the suite twice at a tiny rate/duration and
# checks both regenerations produce the committed BENCH_soda.json
# schema: a CI-friendly determinism check on the harness and its
# output shape, with no performance gating.
bench-soda-smoke:
	$(GO) run ./cmd/sodaload -suite -rate 2000 -duration 300ms -keys 256 -out /tmp/bench_soda_a.json
	$(GO) run ./cmd/sodaload -suite -rate 2000 -duration 300ms -keys 256 -seed 2 -out /tmp/bench_soda_b.json
	$(GO) run ./cmd/sodaload -compare-schema /tmp/bench_soda_a.json /tmp/bench_soda_b.json
	$(GO) run ./cmd/sodaload -compare-schema /tmp/bench_soda_a.json BENCH_soda.json

# fuzz runs each fuzz target briefly; lengthen with FUZZTIME=5m etc.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/rs/ -fuzz FuzzDecodeErrors -fuzztime $(FUZZTIME)
