GO ?= go

.PHONY: all build test vet bench bench-smoke race

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench 'MulAddSlice|MulSlice|MulAddMulti|Encode|Reconstruct|Verify' -benchmem ./internal/gf256/ ./internal/rs/

# bench-smoke compiles and runs every benchmark a fixed 10 iterations on
# both the SIMD and purego kernel ladders: a CI-friendly check that the
# benchmark suite itself stays healthy, with no performance gating.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=10x ./internal/gf256/ ./internal/rs/
	$(GO) test -tags purego -run '^$$' -bench . -benchtime=10x ./internal/gf256/ ./internal/rs/
