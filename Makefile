GO ?= go

.PHONY: all build test vet bench race

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench 'MulAddSlice|MulSlice|Encode|Reconstruct|Verify' -benchmem ./internal/gf256/ ./internal/rs/
